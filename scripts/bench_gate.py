#!/usr/bin/env python
"""Run the hot-path benches and gate them against the committed baseline.

Usage (from the repo root, with ``PYTHONPATH=src:.``)::

    python scripts/bench_gate.py                   # run + gate vs baseline
    python scripts/bench_gate.py --update-baseline # re-pin the baseline
    python scripts/bench_gate.py --tiny --rounds 2 # quick smoke
    python scripts/bench_gate.py --absolute        # also gate absolute times

Speedup ratios are gated by default (machine-portable); absolute times
only with ``--absolute`` since they don't transfer across machines.
Exit codes: 0 pass/bootstrap, 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys

# Allow running as `python scripts/bench_gate.py` from the repo root.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_hotpaths import collect_results, print_results  # noqa: E402
from benchmarks.common import write_bench_json  # noqa: E402
from benchmarks.gate import DEFAULT_THRESHOLD, EXIT_USAGE, run_gate  # noqa: E402

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "BENCH_hotpaths.json",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, help="baseline JSON to gate against"
    )
    parser.add_argument(
        "--out", default=None, help="also write the current run's JSON here"
    )
    parser.add_argument("--rounds", type=int, default=5, help="timed rounds per arm")
    parser.add_argument("--warmup", type=int, default=1, help="discarded warmup rounds")
    parser.add_argument(
        "--tiny", action="store_true", help="shrunken workloads (smoke/CI)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="tolerated fractional regression (default 0.25)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="gate absolute times too (same-machine runs only)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the baseline with this run and pass",
    )
    args = parser.parse_args(argv)
    if args.rounds < 1 or not 0 < args.threshold < 1:
        parser.print_usage(sys.stderr)
        return EXIT_USAGE

    results = collect_results(rounds=args.rounds, warmup=args.warmup, tiny=args.tiny)
    print_results(results)
    meta = {
        "bench": "hotpaths",
        "rounds": args.rounds,
        "warmup": args.warmup,
        "tiny": args.tiny,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    if args.out:
        write_bench_json(args.out, results, meta=meta)
    return run_gate(
        results,
        args.baseline,
        threshold=args.threshold,
        absolute=args.absolute,
        update_baseline=args.update_baseline,
        meta=meta,
    )


if __name__ == "__main__":
    raise SystemExit(main())
