#!/usr/bin/env python
"""Run the performance benches and gate them against committed baselines.

Usage (from the repo root, with ``PYTHONPATH=src:.``)::

    python scripts/bench_gate.py                   # run + gate all suites
    python scripts/bench_gate.py --suite sharding  # one suite only
    python scripts/bench_gate.py --update-baseline # re-pin the baselines
    python scripts/bench_gate.py --tiny --rounds 2 # quick smoke
    python scripts/bench_gate.py --absolute        # also gate absolute times

Suites: ``hotpaths`` (fused kernels + caching, vs
``benchmarks/BENCH_hotpaths.json``), ``sharding`` (ZeRO bucketed comm,
vs ``benchmarks/BENCH_sharding.json``), ``serving`` (micro-batched
goodput at a fixed SLO, vs ``benchmarks/BENCH_serving.json``),
``resilience`` (replicated-pool availability under seeded chaos, vs
``benchmarks/BENCH_resilience.json``), ``compile`` (tape-compiler
plan replay vs the eager step, vs ``benchmarks/BENCH_compile.json``),
``screening`` (batched vs one-at-a-time candidate throughput, vs
``benchmarks/BENCH_screening.json``), and ``table1`` (the 4-encoder x
4-dataset pretrained-vs-scratch sweep, vs ``benchmarks/BENCH_table1.json``).

Speedup ratios are gated by default (machine-portable); absolute times
only with ``--absolute`` since they don't transfer across machines.
Exit codes: 0 pass/bootstrap, 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys

# Allow running as `python scripts/bench_gate.py` from the repo root.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks import (  # noqa: E402
    bench_compile,
    bench_hotpaths,
    bench_resilience,
    bench_screening,
    bench_serving,
    bench_sharding,
    bench_table1_multitask,
)
from benchmarks.common import write_bench_json  # noqa: E402
from benchmarks.gate import DEFAULT_THRESHOLD, EXIT_USAGE, run_gate  # noqa: E402

_BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)

#: suite name -> (module with collect_results/print_results, baseline JSON)
SUITES = {
    "hotpaths": (bench_hotpaths, os.path.join(_BENCH_DIR, "BENCH_hotpaths.json")),
    "sharding": (bench_sharding, os.path.join(_BENCH_DIR, "BENCH_sharding.json")),
    "serving": (bench_serving, os.path.join(_BENCH_DIR, "BENCH_serving.json")),
    "resilience": (
        bench_resilience,
        os.path.join(_BENCH_DIR, "BENCH_resilience.json"),
    ),
    "compile": (bench_compile, os.path.join(_BENCH_DIR, "BENCH_compile.json")),
    "screening": (
        bench_screening,
        os.path.join(_BENCH_DIR, "BENCH_screening.json"),
    ),
    "table1": (
        bench_table1_multitask,
        os.path.join(_BENCH_DIR, "BENCH_table1.json"),
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        default="all",
        choices=["all", *SUITES],
        help="which bench suite to run and gate (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON override (single-suite runs only)",
    )
    parser.add_argument(
        "--out", default=None, help="also write the current run's JSON here"
    )
    parser.add_argument("--rounds", type=int, default=5, help="timed rounds per arm")
    parser.add_argument("--warmup", type=int, default=1, help="discarded warmup rounds")
    parser.add_argument(
        "--tiny", action="store_true", help="shrunken workloads (smoke/CI)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="tolerated fractional regression (default 0.25)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="gate absolute times too (same-machine runs only)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the baselines with this run and pass",
    )
    args = parser.parse_args(argv)
    if args.rounds < 1 or not 0 < args.threshold < 1:
        parser.print_usage(sys.stderr)
        return EXIT_USAGE

    suites = list(SUITES) if args.suite == "all" else [args.suite]
    if args.baseline is not None and len(suites) != 1:
        print("--baseline requires a single --suite", file=sys.stderr)
        return EXIT_USAGE
    if args.out is not None and len(suites) != 1:
        print("--out requires a single --suite", file=sys.stderr)
        return EXIT_USAGE

    worst = 0
    for name in suites:
        module, baseline = SUITES[name]
        if args.baseline is not None:
            baseline = args.baseline
        results = module.collect_results(
            rounds=args.rounds, warmup=args.warmup, tiny=args.tiny
        )
        module.print_results(results)
        meta = {
            "bench": name,
            "rounds": args.rounds,
            "warmup": args.warmup,
            "tiny": args.tiny,
            "python": platform.python_version(),
            "machine": platform.machine(),
        }
        if args.out:
            write_bench_json(args.out, results, meta=meta)
        code = run_gate(
            results,
            baseline,
            threshold=args.threshold,
            absolute=args.absolute,
            update_baseline=args.update_baseline,
            meta=meta,
        )
        worst = max(worst, code)
    return worst


if __name__ == "__main__":
    raise SystemExit(main())
