#!/usr/bin/env bash
# Fast test lane plus an observability smoke check.
#
# Lanes:
#   default            everything except slow scenario suites
#   SMOKE_LANE=profile only the observability suite (-m profile)
#   SMOKE_LANE=bench   bench-marked tests, then the hot-path regression gate
#   SMOKE_LANE=shard   ZeRO sharding suite (-m shard) plus a --zero CLI smoke
#   SMOKE_LANE=serve   serving suite (-m serve) plus a predict/serve CLI smoke
#   SMOKE_LANE=chaos   resilience suite (-m chaos) plus a replicated-serve
#                      CLI smoke under a seeded chaos profile
#   SMOKE_LANE=compile tape-compiler suite (-m compile) plus a --compile
#                      CLI smoke and the compiler bench gate
#   SMOKE_LANE=screen  screening suite (-m screen) plus a repro-screen CLI
#                      smoke and the screening bench gate
#   SMOKE_LANE=megnet  MEGNet suite (-m megnet) plus a --encoder megnet
#                      finetune CLI smoke and the Table-1 bench gate
#   SMOKE_LANE=full    the whole suite, markers included
#
# Scenario suites run on demand: -m fault / -m stability / -m profile.
set -euo pipefail
cd "$(dirname "$0")/.."

LANE="${SMOKE_LANE:-default}"
case "$LANE" in
default)
    PYTHONPATH=src python -m pytest -x -q \
        -m "not fault and not stability and not slow" "$@"
    ;;
profile)
    PYTHONPATH=src python -m pytest -x -q -m profile "$@"
    ;;
bench)
    PYTHONPATH=src python -m pytest -x -q -m bench "$@"
    # Gate both suites against the committed baselines (speedup ratios,
    # machine-portable); exits 1 on a >25% regression.
    PYTHONPATH=src:. python scripts/bench_gate.py
    exit 0
    ;;
shard)
    PYTHONPATH=src python -m pytest -x -q -m shard "$@"
    # End-to-end: the --zero CLI path must run and report the bucket knob.
    ZERO_OUT="$(PYTHONPATH=src python -m repro.cli pretrain \
        --steps 3 --samples 16 --world-size 2 --hidden-dim 16 --layers 2 \
        --epochs 1 --zero --bucket-mb 0.25)"
    grep -q "zero sharding" <<<"$ZERO_OUT"
    echo "zero sharding smoke ok"
    # Gate the sharding bench against its committed baseline.
    PYTHONPATH=src:. python scripts/bench_gate.py --suite sharding
    exit 0
    ;;
serve)
    PYTHONPATH=src python -m pytest -x -q -m serve "$@"
    # End to end: bootstrap-train the demo servable into a scratch registry,
    # answer offline queries, then run a simulated micro-batched serving
    # session over open-loop traffic.
    REGISTRY="$(mktemp -d /tmp/smoke-registry.XXXXXX)"
    trap 'rm -rf "$REGISTRY"' EXIT
    PYTHONPATH=src python -m repro.cli predict \
        --registry "$REGISTRY" --bootstrap --samples 2 >/dev/null
    SERVE_OUT="$(PYTHONPATH=src python -m repro.cli serve \
        --registry "$REGISTRY" --requests 32 --rate 400)"
    grep -q "req/s" <<<"$SERVE_OUT"
    echo "serving smoke ok"
    # Gate the serving bench against its committed baseline.
    PYTHONPATH=src:. python scripts/bench_gate.py --suite serving
    exit 0
    ;;
chaos)
    PYTHONPATH=src python -m pytest -x -q -m chaos "$@"
    # End to end: a 3-replica pool must survive a seeded chaos profile on
    # the CLI path and report per-replica / breaker / hedge metrics.
    REGISTRY="$(mktemp -d /tmp/smoke-registry.XXXXXX)"
    trap 'rm -rf "$REGISTRY"' EXIT
    PYTHONPATH=src python -m repro.cli predict \
        --registry "$REGISTRY" --bootstrap --samples 2 >/dev/null
    CHAOS_OUT="$(PYTHONPATH=src python -m repro.cli serve \
        --registry "$REGISTRY" --requests 48 --rate 600 --replicas 3 \
        --chaos-profile replica_crash:1,replica_slow:1 --hedge-ms 4)"
    grep -q "replica pool: 3 replicas" <<<"$CHAOS_OUT"
    grep -q "chaos events" <<<"$CHAOS_OUT"
    PYTHONPATH=src python -m repro.cli registry verify \
        --registry "$REGISTRY" | grep -q "servables verified ok"
    echo "chaos smoke ok"
    # Gate the resilience bench against its committed baseline.
    PYTHONPATH=src:. python scripts/bench_gate.py --suite resilience
    exit 0
    ;;
compile)
    PYTHONPATH=src python -m pytest -x -q -m compile "$@"
    # End to end: the --compile CLI path must trace, validate, and replay,
    # and report the plan-cache counters when the run finishes.
    COMPILE_OUT="$(PYTHONPATH=src python -m repro.cli pretrain \
        --steps 3 --samples 16 --world-size 2 --hidden-dim 16 --layers 2 \
        --epochs 2 --compile)"
    grep -q "tape compiler: on" <<<"$COMPILE_OUT"
    grep -q "tape compiler: hits=" <<<"$COMPILE_OUT"
    echo "compile smoke ok"
    # Gate the compiler bench against its committed baseline.
    PYTHONPATH=src:. python scripts/bench_gate.py --suite compile
    exit 0
    ;;
screen)
    PYTHONPATH=src python -m pytest -x -q -m screen "$@"
    # End to end: bootstrap-train the demo servable, then screen a small
    # candidate stream through it — sharded and with a relaxation step —
    # and check the ranked report comes out.
    REGISTRY="$(mktemp -d /tmp/smoke-registry.XXXXXX)"
    trap 'rm -rf "$REGISTRY"' EXIT
    PYTHONPATH=src python -m repro.cli predict \
        --registry "$REGISTRY" --bootstrap --samples 2 >/dev/null
    SCREEN_OUT="$(PYTHONPATH=src python -m repro.cli screen \
        --registry "$REGISTRY" --n-candidates 32 --top-k 4 \
        --batch-size 8 --shards 2 --relax-steps 1 --base-samples 8)"
    grep -q "screened 32 candidates" <<<"$SCREEN_OUT"
    grep -q "top-4:" <<<"$SCREEN_OUT"
    echo "screening smoke ok"
    # Gate the screening bench against its committed baseline.
    PYTHONPATH=src:. python scripts/bench_gate.py --suite screening
    exit 0
    ;;
megnet)
    PYTHONPATH=src python -m pytest -x -q -m megnet "$@"
    # End to end: the fourth encoder family must pretrain and finetune
    # from the CLI (finetune on a non-default dataset, reporting its
    # dataset/target line).
    PRETRAIN_OUT="$(PYTHONPATH=src python -m repro.cli pretrain \
        --encoder megnet --steps 3 --samples 16 --world-size 2 \
        --hidden-dim 12 --layers 2 --epochs 1)"
    grep -q "val" <<<"$PRETRAIN_OUT"
    MEGNET_OUT="$(PYTHONPATH=src python -m repro.cli finetune \
        --encoder megnet --dataset carolina --target formation_energy \
        --samples 24 --hidden-dim 12 --layers 2 --epochs 1)"
    grep -q "dataset: carolina" <<<"$MEGNET_OUT"
    grep -q "val MAE" <<<"$MEGNET_OUT"
    grep -q "final " <<<"$MEGNET_OUT"
    echo "megnet smoke ok"
    # Gate the 4-encoder Table-1 sweep against its committed baseline.
    PYTHONPATH=src:. python scripts/bench_gate.py --suite table1
    exit 0
    ;;
full)
    PYTHONPATH=src python -m pytest -x -q "$@"
    ;;
*)
    echo "unknown SMOKE_LANE: $LANE (expected default|profile|bench|shard|serve|chaos|compile|screen|megnet|full)" >&2
    exit 2
    ;;
esac

# Profiler smoke: the CLI must produce a loadable Chrome trace and a phase
# table end to end, not just pass unit tests.
TRACE="$(mktemp /tmp/smoke-trace.XXXXXX.json)"
trap 'rm -f "$TRACE"' EXIT
PYTHONPATH=src python -m repro.cli pretrain \
    --steps 3 --samples 16 --world-size 2 --hidden-dim 16 --layers 2 \
    --epochs 1 --profile --trace-out "$TRACE" >/dev/null
python -c "
import json, sys
events = json.load(open('$TRACE'))['traceEvents']
assert any(e.get('ph') == 'X' for e in events), 'no span events in trace'
print(f'profiler smoke ok: {sum(e.get(\"ph\") == \"X\" for e in events)} spans')
"
