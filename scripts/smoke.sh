#!/usr/bin/env bash
# Fast test lane: everything except the slow fault-injection and
# stability-guard scenario suites (run those with -m fault / -m stability).
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH=src python -m pytest -x -q -m "not fault and not stability" "$@"
