"""Figure 4 — UMAP dataset exploration with the pretrained encoder.

The paper embeds 10k structures from each supported dataset with the
symmetry-pretrained E(n)-GNN, projects with UMAP (n_neighbors 200,
min_dist 0.05, euclidean) and reads off three qualitative facts:

1. datasets share structural motifs (inter-dataset neighbour overlap);
2. OC20 and OC22 overlap heavily with each other;
3. LiPS — trajectories of a single composition — forms a clear isolated
   cluster, and the Materials Project shows the broadest structural variety.

The reproduction runs the same pipeline at CPU scale (40 structures per
dataset, n_neighbors scaled accordingly, min_dist 0.05 as in the paper) and
asserts each observation as a number: LiPS has the highest silhouette,
OC20<->OC22 is the most-overlapping dataset pair, and MP has the largest
within-cluster spread among the bulk-crystal datasets.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import encoder_config, pretrained_state, print_header
from repro.core import explore_datasets
from repro.core.pipeline import build_encoder_from_config

SAMPLES_PER_DATASET = 40


def run_fig4():
    encoder = build_encoder_from_config(encoder_config(), rng=np.random.default_rng(0))
    encoder.load_state_dict(pretrained_state())
    result = explore_datasets(
        encoder,
        samples_per_dataset=SAMPLES_PER_DATASET,
        seed=17,
        umap_neighbors=15,
        umap_min_dist=0.05,  # the paper's setting
        umap_epochs=150,
    )

    print_header(
        "Figure 4 — UMAP of all datasets embedded by the pretrained E(n)-GNN "
        f"({SAMPLES_PER_DATASET} structures/dataset, min_dist=0.05)"
    )
    names = result.names
    sil = result.by_name(result.silhouettes)
    spread = result.by_name(result.spreads)
    print(f"{'dataset':>18} {'silhouette':>11} {'spread':>8}")
    for name in names:
        print(f"{name:>18} {sil[name]:>11.3f} {spread[name]:>8.3f}")

    print("\nneighbour-overlap matrix (row: fraction of kNN in column's dataset):")
    print(" " * 18 + "".join(f"{n:>10}" for n in names))
    for i, name in enumerate(names):
        print(f"{name:>18}" + "".join(f"{result.overlap[i, j]:>10.3f}" for j in range(len(names))))

    # Most-overlapping distinct pair by symmetrized off-diagonal mass.
    n = len(names)
    sym = (result.overlap + result.overlap.T) / 2
    best_pair, best_val = None, -1.0
    for i in range(n):
        for j in range(i + 1, n):
            if sym[i, j] > best_val:
                best_pair, best_val = (names[i], names[j]), sym[i, j]
    print(f"\nmost-overlapping pair: {best_pair} ({best_val:.3f})")
    print("paper shape: LiPS isolated; OC20/OC22 overlap; MP broadest variety")
    return result, sil, spread, best_pair


class TestFig4Exploration:
    def test_fig4_dataset_exploration(self, benchmark):
        result, sil, spread, best_pair = benchmark.pedantic(
            run_fig4, rounds=1, iterations=1
        )
        names = result.names
        idx = {n: i for i, n in enumerate(names)}
        # (1) LiPS — one composition under thermal jitter — forms the
        # clearest independent cluster: highest self-cohesion of any dataset
        # (its points' nearest neighbours are almost exclusively LiPS) and a
        # strongly positive silhouette.
        diag = np.diag(result.overlap)
        assert diag[idx["lips"]] == diag.max()
        assert diag[idx["lips"]] > 0.8
        assert sil["lips"] > 0.3
        # (2) The OCP datasets overlap: OC20's nearest foreign neighbours are
        # overwhelmingly OC22 (shared slab+adsorbate motifs).
        oc20_row = result.overlap[idx["oc20"]].copy()
        oc20_row[idx["oc20"]] = -1.0
        assert names[int(oc20_row.argmax())] == "oc22"
        # (3) MP offers the broadest structural variety among the
        # bulk-crystal datasets: larger spread and a less compact cluster
        # than the cubic-only Carolina surrogate.
        assert spread["materials_project"] > spread["carolina"]
        assert sil["materials_project"] < sil["carolina"]
        # Sanity: overlap rows are distributions.
        assert np.allclose(result.overlap.sum(axis=1), 1.0)
