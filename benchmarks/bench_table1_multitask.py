"""Table 1 — multi-task, multi-dataset fine-tuning: pretrained vs scratch.

The paper's joint task trains one shared encoder against five objectives —
Materials Project band gap, Fermi energy (zeta), formation energy and
stability classification, plus Carolina formation energy — and finds that
pretraining wins decisively on the three MP regression targets while the
two remaining metrics stay comparable (from-scratch slightly ahead):

    metric                paper pretrained   paper scratch
    band gap (eV)              1.27               4.80
    zeta (eV)                  0.76               3.86
    E_form MP (eV/atom)        0.83               3.54
    stability (BCE)            0.42               0.40
    E_form CMD (eV/atom)       0.14               0.10

The reproduction runs the same composition (dataset-scoped heads, shared
encoder, six-block-capacity heads scaled down, the DDP lr-scaling rule, raw
physical-unit losses) and asserts the winner pattern and rough factors.
"""

from __future__ import annotations

from benchmarks.common import PAPER_TABLE1, print_header, table1_runs
from repro.core.workflows import TABLE1_METRICS

LABELS = {
    "band_gap_mae": "Band gap (eV)",
    "fermi_mae": "zeta (eV)",
    "mp_eform_mae": "E_form MP (eV/atom)",
    "stability_bce": "Stability (BCE)",
    "cmd_eform_mae": "E_form CMD (eV/atom)",
}


def run_table1():
    pretrained, scratch = table1_runs()
    print_header("Table 1 — multi-task multi-dataset fine-tuning")
    print(
        f"{'metric':<22} {'pre (ours)':>10} {'scr (ours)':>10}"
        f" {'pre (paper)':>12} {'scr (paper)':>12}"
    )
    for key in TABLE1_METRICS:
        p_ours = pretrained.final_metrics[key]
        s_ours = scratch.final_metrics[key]
        p_pap, s_pap = PAPER_TABLE1[key]
        print(
            f"{LABELS[key]:<22} {p_ours:>10.3f} {s_ours:>10.3f}"
            f" {p_pap:>12.2f} {s_pap:>12.2f}"
        )
    print(
        "\npaper shape: pretraining wins the three MP regression targets by "
        "large factors; stability and CMD E_form comparable (scratch ahead)"
    )
    return pretrained, scratch


class TestTable1MultiTask:
    def test_table1_multitask_winner_pattern(self, benchmark):
        pretrained, scratch = benchmark.pedantic(run_table1, rounds=1, iterations=1)
        pre, scr = pretrained.final_metrics, scratch.final_metrics

        # Pretraining wins all three MP regression targets ...
        for key in ("band_gap_mae", "fermi_mae", "mp_eform_mae"):
            assert pre[key] < scr[key], key
        # ... and band gap by a large factor, as in the paper (3.8x there).
        assert scr["band_gap_mae"] / pre["band_gap_mae"] > 1.5
        # The scratch model is not merely behind — it fails to learn the MP
        # regressions (band-gap error worse than a mean predictor ~1 eV).
        assert scr["band_gap_mae"] > 1.0

        # The two remaining metrics: comparable, from-scratch slightly ahead.
        assert scr["stability_bce"] < pre["stability_bce"]
        assert scr["cmd_eform_mae"] < pre["cmd_eform_mae"]
        # "Comparable in magnitude": within a factor ~2, not the 2-4x gaps
        # of the regression columns.
        assert pre["stability_bce"] / scr["stability_bce"] < 2.5
        assert pre["cmd_eform_mae"] / scr["cmd_eform_mae"] < 2.5

        # CMD stays easy for both arms (the narrow-distribution dataset):
        # both errors sit far below every MP regression error.
        assert pre["cmd_eform_mae"] < 0.5
        assert scr["cmd_eform_mae"] < 0.5
