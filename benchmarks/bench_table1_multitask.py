"""Table 1 — multi-task, multi-dataset fine-tuning: pretrained vs scratch.

The paper's joint task trains one shared encoder against five objectives —
Materials Project band gap, Fermi energy (zeta), formation energy and
stability classification, plus Carolina formation energy — and finds that
pretraining wins decisively on the three MP regression targets while the
two remaining metrics stay comparable (from-scratch slightly ahead):

    metric                paper pretrained   paper scratch
    band gap (eV)              1.27               4.80
    zeta (eV)                  0.76               3.86
    E_form MP (eV/atom)        0.83               3.54
    stability (BCE)            0.42               0.40
    E_form CMD (eV/atom)       0.14               0.10

The reproduction runs the same composition (dataset-scoped heads, shared
encoder, six-block-capacity heads scaled down, the DDP lr-scaling rule, raw
physical-unit losses) and asserts the winner pattern and rough factors.

This module also hosts the gated *encoder sweep* suite (``bench_gate.py
--suite table1``): every registered encoder family (egnn, schnet, gaanet,
megnet) fine-tuned on four dataset/property cells — MP band gap, Carolina
formation energy, LiPS energy, OC20 energy — pretrained vs from-scratch,
against the committed ``benchmarks/BENCH_table1.json``.  Training is
seeded and single-threaded, so the gated pretrain-gain ratios are
deterministic; the suite ignores ``rounds``/``tiny`` (the workload is
already CPU-tiny and shrinking it would shift the gated values).
"""

from __future__ import annotations

import functools
from typing import Dict, List

import numpy as np

from benchmarks.common import (
    PAPER_TABLE1,
    bench_result,
    print_header,
    table1_runs,
)
from repro.core import (
    EncoderConfig,
    FinetuneConfig,
    OptimizerConfig,
    PretrainConfig,
    pretrain_symmetry,
    train_property,
)
from repro.core.workflows import TABLE1_METRICS

LABELS = {
    "band_gap_mae": "Band gap (eV)",
    "fermi_mae": "zeta (eV)",
    "mp_eform_mae": "E_form MP (eV/atom)",
    "stability_bce": "Stability (BCE)",
    "cmd_eform_mae": "E_form CMD (eV/atom)",
}


def run_table1():
    pretrained, scratch = table1_runs()
    print_header("Table 1 — multi-task multi-dataset fine-tuning")
    print(
        f"{'metric':<22} {'pre (ours)':>10} {'scr (ours)':>10}"
        f" {'pre (paper)':>12} {'scr (paper)':>12}"
    )
    for key in TABLE1_METRICS:
        p_ours = pretrained.final_metrics[key]
        s_ours = scratch.final_metrics[key]
        p_pap, s_pap = PAPER_TABLE1[key]
        print(
            f"{LABELS[key]:<22} {p_ours:>10.3f} {s_ours:>10.3f}"
            f" {p_pap:>12.2f} {s_pap:>12.2f}"
        )
    print(
        "\npaper shape: pretraining wins the three MP regression targets by "
        "large factors; stability and CMD E_form comparable (scratch ahead)"
    )
    return pretrained, scratch


class TestTable1MultiTask:
    def test_table1_multitask_winner_pattern(self, benchmark):
        pretrained, scratch = benchmark.pedantic(run_table1, rounds=1, iterations=1)
        pre, scr = pretrained.final_metrics, scratch.final_metrics

        # Pretraining wins all three MP regression targets ...
        for key in ("band_gap_mae", "fermi_mae", "mp_eform_mae"):
            assert pre[key] < scr[key], key
        # ... and band gap by a large factor, as in the paper (3.8x there).
        assert scr["band_gap_mae"] / pre["band_gap_mae"] > 1.5
        # The scratch model is not merely behind — it fails to learn the MP
        # regressions (band-gap error worse than a mean predictor ~1 eV).
        assert scr["band_gap_mae"] > 1.0

        # The two remaining metrics: comparable, from-scratch slightly ahead.
        assert scr["stability_bce"] < pre["stability_bce"]
        assert scr["cmd_eform_mae"] < pre["cmd_eform_mae"]
        # "Comparable in magnitude": within a factor ~2, not the 2-4x gaps
        # of the regression columns.
        assert pre["stability_bce"] / scr["stability_bce"] < 2.5
        assert pre["cmd_eform_mae"] / scr["cmd_eform_mae"] < 2.5

        # CMD stays easy for both arms (the narrow-distribution dataset):
        # both errors sit far below every MP regression error.
        assert pre["cmd_eform_mae"] < 0.5
        assert scr["cmd_eform_mae"] < 0.5


# --------------------------------------------------------------------------- #
# Encoder sweep: 4 encoders x 4 dataset/property cells, pretrained vs scratch
# --------------------------------------------------------------------------- #
#: Every registered encoder family.
SWEEP_ENCODERS = ("egnn", "schnet", "gaanet", "megnet")

#: (dataset, target) cells — one per surrogate family the toolkit ships.
SWEEP_CELLS = (
    ("materials_project", "band_gap"),
    ("carolina", "formation_energy"),
    ("lips", "energy"),
    ("oc20", "energy"),
)

#: Shared tiny geometry: every arm of every cell uses the same encoder
#: size and seeds, so only the encoder family and the init differ.
SWEEP_HIDDEN, SWEEP_LAYERS, SWEEP_SEED = 16, 2, 31


def _sweep_encoder_config(name: str) -> EncoderConfig:
    return EncoderConfig(
        name=name,
        hidden_dim=SWEEP_HIDDEN,
        num_layers=SWEEP_LAYERS,
        position_dim=6,
    )


@functools.lru_cache(maxsize=None)
def _sweep_pretrained_state(name: str):
    """Symmetry-pretrain one tiny encoder of the given family (memoized)."""
    config = PretrainConfig(
        encoder=_sweep_encoder_config(name),
        optimizer=OptimizerConfig(
            base_lr=3e-3, warmup_epochs=1, gamma=0.95, weight_decay=1e-4
        ),
        train_samples=96,
        val_samples=24,
        world_size=1,
        batch_per_worker=16,
        max_epochs=3,
        head_hidden_dim=SWEEP_HIDDEN,
        head_blocks=2,
        seed=SWEEP_SEED,
        radius_range=(1.5, 4.0),
        max_points=16,
    )
    return pretrain_symmetry(config).task.encoder_state()


def _sweep_finetune_config(name: str, dataset: str, target: str) -> FinetuneConfig:
    return FinetuneConfig(
        encoder=_sweep_encoder_config(name),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=1, gamma=0.9),
        dataset=dataset,
        target=target,
        train_samples=48,
        val_samples=16,
        batch_size=8,
        max_epochs=3,
        world_size=4,
        head_hidden_dim=SWEEP_HIDDEN,
        head_blocks=2,
        seed=11,
    )


def collect_results(rounds: int = 5, warmup: int = 1, tiny: bool = False) -> List[Dict]:
    """The 4x4 pretrained-vs-scratch table as gateable results.

    ``rounds``/``warmup``/``tiny`` are accepted for gate-driver parity but
    deliberately unused: every cell is one seeded, deterministic training
    run, and resizing it under ``--tiny`` would shift the gated ratios
    away from the committed baseline.
    """
    del rounds, warmup, tiny
    results: List[Dict] = []
    for name in SWEEP_ENCODERS:
        state = _sweep_pretrained_state(name)
        ratios = []
        for dataset, target in SWEEP_CELLS:
            cfg = _sweep_finetune_config(name, dataset, target)
            scratch = train_property(cfg).final_mae
            pretrained = train_property(cfg, pretrained_state=state).final_mae
            ratios.append(scratch / max(pretrained, 1e-9))
            cell = f"table1.{name}.{dataset}"
            detail = f"{target} MAE, {name} on {dataset}"
            results.append(
                bench_result(
                    f"{cell}.pretrained_mae", "metric", pretrained, "eV",
                    detail=f"{detail} (pretrained)",
                )
            )
            results.append(
                bench_result(
                    f"{cell}.scratch_mae", "metric", scratch, "eV",
                    detail=f"{detail} (from scratch)",
                )
            )
        # Geometric mean of the per-cell scratch/pretrained MAE ratios:
        # the one number per encoder the gate holds steady (deterministic
        # seeded training, so regressions here are real behaviour changes,
        # not machine noise).
        gain = float(np.prod(ratios) ** (1.0 / len(ratios)))
        results.append(
            bench_result(
                f"table1.{name}.pretrain_gain", "speedup", gain, "x",
                detail=f"geomean scratch/pretrained MAE over {len(ratios)} cells",
            )
        )
    return results


def print_results(results: List[Dict]) -> None:
    by_name = {r["name"]: r for r in results}
    print_header(
        "Table 1 sweep: 4 encoders x 4 datasets, pretrained vs from-scratch MAE"
    )
    header = f"{'encoder':<8}" + "".join(
        f" {dataset:>22}" for dataset, _ in SWEEP_CELLS
    ) + f" {'gain':>6}"
    print(header)
    for name in SWEEP_ENCODERS:
        cells = []
        for dataset, _ in SWEEP_CELLS:
            pre = by_name[f"table1.{name}.{dataset}.pretrained_mae"]["value"]
            scr = by_name[f"table1.{name}.{dataset}.scratch_mae"]["value"]
            cells.append(f" {pre:>10.3f}/{scr:<11.3f}")
        gain = by_name[f"table1.{name}.pretrain_gain"]["value"]
        print(f"{name:<8}" + "".join(cells) + f" {gain:>5.2f}x")
    print("\ncells are pretrained/scratch validation MAE; gain is the geomean "
          "scratch/pretrained ratio per encoder")
