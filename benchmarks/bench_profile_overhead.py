"""Observability overhead — the tracer must be ~free when disabled.

Every instrumentation site in the trainer/strategy/communicator goes
through ``maybe_span(tracer, ...)`` (or the trainer's ``_span`` helper),
so an un-observed run pays one ``None`` check and a shared null context
per site.  This bench drives a no-op training loop — the trainer's span
sites (data / step / forward / backward / comm / optim) around a
deliberately tiny numpy "model" — and asserts the disabled-
instrumentation path costs < 5% over a bare loop with no call sites at
all.  The real model is ~100x more work per step, so this bound is
conservative.  The cost of an *active* tracer is reported alongside for
context (it is allowed to be higher: recording a span is real work).

Timing noise: both variants run interleaved over several rounds and the
best round of each is compared — the standard way to bound jitter
without statistical machinery.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from benchmarks.common import bench_result, time_callable, write_bench_json
from repro.observability import Tracer, maybe_span

STEPS = 500
ROUNDS = 5
#: Acceptance bound on the disabled-path overhead.
MAX_DISABLED_OVERHEAD = 0.05

#: Tiny stand-in model: two 128x128 matmuls per "step" (~100 us), still
#: ~30x below a real training step on this codebase, so the bound holds
#: with a wide margin on real runs.
_W = np.random.default_rng(0).standard_normal((128, 128))


def _forward(x: np.ndarray) -> np.ndarray:
    return np.tanh(x @ _W)


def _backward(x: np.ndarray) -> np.ndarray:
    return (x @ _W.T) * 0.5


def loop_bare(steps: int = STEPS) -> float:
    """The loop with no instrumentation sites at all."""
    x = np.ones((32, 128))
    for _ in range(steps):
        batch = x + 0.0  # "data"
        h = _forward(batch)  # "forward"
        g = _backward(h)  # "backward"
        g *= 0.5  # "comm"
        x = x - 1e-3 * g  # "optim"
    return float(x.sum())


def loop_instrumented(tracer, steps: int = STEPS) -> float:
    """The same loop through the trainer's per-step span sites."""
    x = np.ones((32, 128))
    for step in range(steps):
        with maybe_span(tracer, "data"):
            batch = x + 0.0
        with maybe_span(tracer, "step", step=step):
            with maybe_span(tracer, "forward"):
                h = _forward(batch)
            with maybe_span(tracer, "backward"):
                g = _backward(h)
            with maybe_span(tracer, "comm.allreduce"):
                g *= 0.5
            with maybe_span(tracer, "optim"):
                x = x - 1e-3 * g
    return float(x.sum())


def _best_time(fn, rounds: int = ROUNDS) -> float:
    return time_callable(fn, rounds=rounds, warmup=1, reduce="min")


def run_overhead(out_json: Optional[str] = None):
    bare = _best_time(loop_bare)
    disabled = _best_time(lambda: loop_instrumented(None))
    active_tracer = Tracer()
    active = _best_time(lambda: loop_instrumented(active_tracer))

    disabled_overhead = disabled / bare - 1.0
    active_overhead = active / bare - 1.0
    sites_per_step = 6
    print(f"bare loop        {bare * 1e3:9.2f} ms")
    print(
        f"tracer disabled  {disabled * 1e3:9.2f} ms "
        f"({disabled_overhead * 100:+.2f}%, "
        f"{(disabled - bare) * 1e9 / (STEPS * sites_per_step):.0f} ns/site)"
    )
    print(
        f"tracer active    {active * 1e3:9.2f} ms "
        f"({active_overhead * 100:+.2f}%, "
        f"{(active - bare) * 1e9 / (STEPS * sites_per_step):.0f} ns/span)"
    )
    if out_json:
        write_bench_json(
            out_json,
            [
                bench_result("profile.bare_loop", "time", bare, "s"),
                bench_result(
                    "profile.disabled_overhead", "metric", disabled_overhead, "frac"
                ),
                bench_result(
                    "profile.active_overhead", "metric", active_overhead, "frac"
                ),
            ],
            meta={"bench": "profile_overhead", "steps": STEPS, "rounds": ROUNDS},
        )
    return disabled_overhead, active_overhead


class TestProfileOverhead:
    def test_disabled_instrumentation_is_free(self, benchmark):
        disabled_overhead, _ = benchmark.pedantic(
            run_overhead, rounds=1, iterations=1
        )
        assert disabled_overhead < MAX_DISABLED_OVERHEAD
