"""Figure 3 — early pretraining dynamics vs DDP worker count at two base lrs.

Paper observations (Sec. 5.2):

* top frame, eta_base = 1e-3: learning stagnates early at large validation
  error for *every* scale-out configuration;
* bottom frame, eta_base = 1e-5: the single-node (16-rank) run converges,
  albeit slowly; the early convergence rate increases with worker count;
  instability (loss spikes / non-recovery) also grows with worker count.

The reproduction runs the same grid under simulated DDP (exact gradient
equivalence) with the lr = eta_base * N scaling rule and a fixed step
budget, evaluating the validation cross-entropy every few steps.  At CPU
scale the instability expresses most violently in the high-lr arm (the
effective rates reach eta_base * 512), which is asserted as
divergence-without-recovery growing with N; the low-lr arm shows the
paper's convergence-rate ordering and its bumpiness concentrating in the
largest run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from benchmarks.common import print_header
from repro.core import EncoderConfig, OptimizerConfig, PretrainConfig, pretrain_symmetry

GROUPS = ["C1", "Ci", "C2v", "C4", "D2h", "Td", "Oh", "C6"]
WORLD_SIZES = [16, 64, 256, 512]
STEPS = 24
EVAL_EVERY = 3


@dataclass
class DynamicsRun:
    base_lr: float
    world_size: int
    ce: List[float]
    spike_count: int
    recovered: bool

    @property
    def final(self) -> float:
        return self.ce[-1]

    @property
    def best(self) -> float:
        return min(self.ce)

    def bump_count(self, factor: float = 1.15, warmup: int = 2) -> int:
        """Evaluations exceeding the best-so-far by ``factor`` (relaxed spikes)."""
        best = np.inf
        bumps = 0
        for i, v in enumerate(self.ce):
            if v < best:
                best = v
            elif i >= warmup and v > factor * best:
                bumps += 1
        return bumps


def run_one(base_lr: float, world_size: int) -> DynamicsRun:
    cfg = PretrainConfig(
        encoder=EncoderConfig(hidden_dim=24, num_layers=2, position_dim=8),
        optimizer=OptimizerConfig(base_lr=base_lr, warmup_epochs=8, gamma=0.8),
        group_names=GROUPS,
        train_samples=max(world_size, 128),
        val_samples=64,
        max_points=16,
        world_size=world_size,
        batch_per_worker=1,
        max_epochs=10_000,
        max_steps=STEPS,
        val_every_n_steps=EVAL_EVERY,
        head_hidden_dim=24,
        head_blocks=2,
        seed=4,
    )
    result = pretrain_symmetry(cfg)
    return DynamicsRun(
        base_lr=base_lr,
        world_size=world_size,
        ce=result.history.series("val", "ce")[1],
        spike_count=result.spikes.spike_count,
        recovered=result.spikes.recovered,
    )


def run_fig3() -> Dict[float, List[DynamicsRun]]:
    out: Dict[float, List[DynamicsRun]] = {}
    for base_lr in (1e-3, 1e-5):
        out[base_lr] = [run_one(base_lr, n) for n in WORLD_SIZES]
    print_header(
        f"Figure 3 — early training dynamics ({STEPS} steps, validation CE "
        f"every {EVAL_EVERY} steps, lr = eta_base * N)"
    )
    for base_lr, runs in out.items():
        frame = "top" if base_lr == 1e-3 else "bottom"
        print(f"\neta_base = {base_lr:g} ({frame} frame):")
        for r in runs:
            curve = " ".join(
                f"{v:9.2f}" if v < 1e4 else f"{v:9.1e}" for v in r.ce
            )
            print(
                f"  N={r.world_size:4d} spikes={r.spike_count} "
                f"recovered={str(r.recovered):5s} ce: {curve}"
            )
    print(
        "\npaper shape: high lr stagnates at every N; low lr converges "
        "(slowly at N=16), early rate grows with N, instability grows with N"
    )
    return out


class TestFig3Dynamics:
    def test_fig3_training_dynamics(self, benchmark):
        results = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
        high, low = results[1e-3], results[1e-5]
        chance_ce = np.log(len(GROUPS))  # ~2.08 for 8 classes

        # --- top frame: eta_base = 1e-3 --------------------------------- #
        # Learning stagnates early at large validation error for all N:
        # no run ends meaningfully below the chance-level error.
        for r in high:
            assert r.final > 0.75 * chance_ce, f"N={r.world_size} converged at high lr"
        # Instability grows with scale: the larger runs blow up outright
        # (orders of magnitude above chance) and register spike events.
        assert max(r.best for r in high[1:]) > 3 * chance_ce
        assert all(r.spike_count >= 1 for r in high)

        # --- bottom frame: eta_base = 1e-5 ------------------------------ #
        # Single node converges, albeit slowly: strictly improving, but
        # still far from done within the step budget.
        n16 = low[0]
        assert n16.final < n16.ce[0]
        assert n16.final > min(r.best for r in low[1:])
        # Early convergence rate increases with the number of workers.
        second_eval = [r.ce[1] for r in low]
        assert all(a >= b for a, b in zip(second_eval, second_eval[1:])), second_eval
        # The bumpiness (relaxed spike count) concentrates in the largest
        # configuration.
        bumps = [r.bump_count() for r in low]
        assert bumps[-1] == max(bumps)
        assert bumps[-1] >= 1
        assert bumps[0] == 0
