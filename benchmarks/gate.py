"""Benchmark-regression gate: compare a bench run against a committed baseline.

The gate reads two ``repro-bench-v1`` JSON files (see
:mod:`benchmarks.common`) and fails when a tracked entry regresses by more
than ``threshold`` (default 25%) relative to the baseline:

* ``speedup`` entries regress when the current ratio drops below
  ``baseline * (1 - threshold)``.  Ratios are machine-portable — the two
  arms run on the same machine in the same process — so these are compared
  by default.
* ``time`` entries regress when the current time exceeds
  ``baseline * (1 + threshold)``.  Absolute times only transfer between
  runs on the same machine, so they are compared only when
  ``absolute=True`` (the ``--absolute`` CLI flag).
* ``metric`` entries are informational and never gated.

A missing baseline file is not an error: the gate bootstraps by writing
the current results as the new baseline and passing — that is how
``benchmarks/BENCH_hotpaths.json`` was first created.

Exit codes (mirrored by :func:`main`): 0 pass/bootstrap, 1 regression,
2 usage error (bad schema, unreadable file).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from benchmarks.common import load_bench_json, write_bench_json

#: Default tolerated slowdown before the gate fails.
DEFAULT_THRESHOLD = 0.25

EXIT_PASS = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2


def _index(results: Sequence[Dict]) -> Dict[str, Dict]:
    return {r["name"]: r for r in results}


def compare_results(
    current: Sequence[Dict],
    baseline: Sequence[Dict],
    threshold: float = DEFAULT_THRESHOLD,
    absolute: bool = False,
) -> List[Dict]:
    """Per-entry verdicts for every gated entry present in both runs.

    Returns a list of ``{name, kind, current, baseline, ratio, regressed,
    limit}`` dicts.  Entries present only on one side are skipped — new
    benches enter the baseline on the next ``--update-baseline``; removed
    benches silently retire.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    base = _index(baseline)
    verdicts: List[Dict] = []
    for entry in current:
        ref = base.get(entry["name"])
        if ref is None or ref["kind"] != entry["kind"]:
            continue
        kind = entry["kind"]
        if kind == "metric":
            continue
        if kind == "time" and not absolute:
            continue
        cur_v, base_v = float(entry["value"]), float(ref["value"])
        if kind == "speedup":
            limit = base_v * (1.0 - threshold)
            regressed = cur_v < limit
        else:  # time
            limit = base_v * (1.0 + threshold)
            regressed = cur_v > limit
        verdicts.append(
            {
                "name": entry["name"],
                "kind": kind,
                "current": cur_v,
                "baseline": base_v,
                "ratio": cur_v / base_v if base_v else float("inf"),
                "limit": limit,
                "regressed": regressed,
            }
        )
    return verdicts


def format_verdicts(verdicts: Sequence[Dict]) -> str:
    """Human-readable gate report, one line per compared entry."""
    lines = [f"{'name':<34} {'kind':<8} {'baseline':>10} {'current':>10} {'status':>10}"]
    for v in verdicts:
        status = "REGRESSED" if v["regressed"] else "ok"
        lines.append(
            f"{v['name']:<34} {v['kind']:<8} {v['baseline']:>10.4f} "
            f"{v['current']:>10.4f} {status:>10}"
        )
    return "\n".join(lines)


def run_gate(
    results: Sequence[Dict],
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    absolute: bool = False,
    update_baseline: bool = False,
    meta: Optional[Dict] = None,
) -> int:
    """Gate ``results`` against ``baseline_path``; returns an exit code.

    Bootstraps (writes the baseline and passes) when the baseline file does
    not exist; rewrites it when ``update_baseline`` is set.
    """
    if update_baseline or not os.path.exists(baseline_path):
        write_bench_json(baseline_path, results, meta=meta)
        action = "updated" if update_baseline else "bootstrapped"
        print(f"gate: {action} baseline at {baseline_path}")
        return EXIT_PASS
    try:
        payload = load_bench_json(baseline_path)
    except (ValueError, OSError) as exc:
        print(f"gate: cannot read baseline: {exc}")
        return EXIT_USAGE
    verdicts = compare_results(
        results, payload["results"], threshold=threshold, absolute=absolute
    )
    print(format_verdicts(verdicts))
    regressions = [v for v in verdicts if v["regressed"]]
    if regressions:
        print(
            f"gate: FAIL — {len(regressions)} entr{'y' if len(regressions) == 1 else 'ies'} "
            f"regressed beyond {threshold:.0%}"
        )
        return EXIT_REGRESSION
    print(f"gate: pass — {len(verdicts)} entries within {threshold:.0%} of baseline")
    return EXIT_PASS
