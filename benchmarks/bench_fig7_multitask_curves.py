"""Figure 7 — per-metric validation curves for the Table-1 runs.

Appendix B shows the validation trajectory of every Table-1 metric for
both initializations: on the three metrics where pretraining wins, the
from-scratch model struggles throughout training while the pretrained
model's inductive bias keeps it on a better baseline; the CMD formation-
energy panel additionally shows the scratch run spiking to abnormal levels
before recovering.

This bench reuses the Table-1 training runs (shared in-session cache) and
prints/asserts the curve-level claims rather than just the endpoints.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import print_header, table1_runs
from repro.core.workflows import TABLE1_METRICS


def run_fig7():
    pretrained, scratch = table1_runs()
    curves = {}
    for key in TABLE1_METRICS:
        _, pre_curve = pretrained.history.series("val", key)
        _, scr_curve = scratch.history.series("val", key)
        curves[key] = (np.asarray(pre_curve), np.asarray(scr_curve))

    print_header("Figure 7 — multi-task validation curves (pre | scratch)")
    for key, (pre, scr) in curves.items():
        print(f"\n{key}:")
        print("  pre:     " + " ".join(f"{v:8.3f}" for v in pre))
        print("  scratch: " + " ".join(f"{v:8.3f}" for v in scr))
    print(
        "\npaper shape: scratch struggles throughout on the three winning "
        "metrics; CMD E_form scratch spikes then recovers"
    )
    return curves


class TestFig7MultiTaskCurves:
    def test_fig7_curve_shapes(self, benchmark):
        curves = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

        # On the three metrics pretraining wins, the pretrained curve sits
        # below the scratch curve for (at least) the entire second half of
        # training — the paper's "better baseline throughout".
        for key in ("band_gap_mae", "fermi_mae", "mp_eform_mae"):
            pre, scr = curves[key]
            half = len(pre) // 2
            assert np.all(pre[half:] < scr[half:]), key

        # The scratch model "generally struggles to learn": its final error
        # on those metrics improves little (or not at all) over its first
        # evaluation.
        for key in ("band_gap_mae", "mp_eform_mae"):
            pre, scr = curves[key]
            assert scr[-1] > 0.5 * scr[0], key

        # CMD E_form: the scratch run passes through abnormal levels
        # relative to where it ends (the Fig. 7 spike) and recovers.
        _, scr_cmd = curves["cmd_eform_mae"]
        assert scr_cmd.max() > 2.0 * scr_cmd[-1]
        assert scr_cmd[-1] <= 1.5 * scr_cmd.min()

        # The pretrained arm converges on CMD as well.
        pre_cmd, _ = curves["cmd_eform_mae"]
        assert pre_cmd[-1] < pre_cmd[0]
