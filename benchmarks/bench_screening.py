"""Screening benchmark: batched vs one-at-a-time candidate throughput.

The screening pipeline's performance case is the same one the serving
layer made for micro-batching: the per-forward Python/dispatch overhead
dominates at batch size 1, and coalescing candidates into one
disjoint-union graph batch amortizes it.  Because predictions run under
batch-invariant kernels, the batch size is a *pure throughput knob* —
both arms produce the same bits — so the gated ratio

    screen.throughput.gain = cand/s (batched) / cand/s (batch=1)

is a clean speedup with no accuracy trade to argue about.

Bit-identity is asserted in-bench, not just in tests: the batched arm,
the unbatched arm, and a 4-shard arm must produce identical (score,
fingerprint, index) rankings, or collect_results raises.  The committed
baseline lives in ``benchmarks/BENCH_screening.json``, gated by
``scripts/bench_gate.py --suite screening`` (acceptance bar: >2x).
"""

from __future__ import annotations

import atexit
import functools
import shutil
import tempfile
from typing import Dict, List

from benchmarks.common import bench_result, print_header, time_callable
from repro.screening import CandidateGenerator, ScreenConfig, run_screening
from repro.serving.demo import ensure_demo_servable

TOP_K = 8
BATCHED_SIZE = 16
NUM_SHARDS = 4
SCREEN_SEED = 23
BASE_SAMPLES = 16


@functools.lru_cache(maxsize=1)
def _servable():
    """Train (or reuse) the demo servable in a bench-lifetime registry."""
    root = tempfile.mkdtemp(prefix="repro-bench-screening-")
    atexit.register(shutil.rmtree, root, ignore_errors=True)
    return ensure_demo_servable(root)


@functools.lru_cache(maxsize=1)
def _generator() -> CandidateGenerator:
    """One warm generator shared by every arm and round.

    A screening service loads its parent pool once and then streams
    candidates indefinitely, so the steady-state cost under measurement
    is mutation + prediction — not the one-time pool synthesis.  Both
    arms read the same memoized parents, keeping the comparison fair.
    """
    return CandidateGenerator(seed=SCREEN_SEED, base_samples=BASE_SAMPLES)


def _config(n_candidates: int, batch_size: int, num_shards: int = 1) -> ScreenConfig:
    return ScreenConfig(
        n_candidates=n_candidates,
        top_k=TOP_K,
        batch_size=batch_size,
        num_shards=num_shards,
        seed=SCREEN_SEED,
        base_samples=BASE_SAMPLES,
    )


def _keys(result) -> List[tuple]:
    return [entry.key for entry in result.ranked]


def collect_results(rounds: int = 5, warmup: int = 1, tiny: bool = False) -> List[Dict]:
    servable = _servable()
    count = 48 if tiny else 160

    batched_cfg = _config(count, BATCHED_SIZE)
    single_cfg = _config(count, 1)
    sharded_cfg = _config(count, BATCHED_SIZE, num_shards=NUM_SHARDS)

    generator = _generator()

    # Exactness first: all three execution layouts must agree bit for bit
    # before any of their timings mean anything.
    batched = run_screening(servable, batched_cfg, generator=generator)
    single = run_screening(servable, single_cfg, generator=generator)
    sharded = run_screening(servable, sharded_cfg, generator=generator)
    if _keys(batched) != _keys(single):
        raise AssertionError(
            "batched screening diverged from one-at-a-time screening: "
            f"{_keys(batched)} != {_keys(single)}"
        )
    if _keys(sharded) != _keys(batched):
        raise AssertionError(
            f"{NUM_SHARDS}-shard screening diverged from single-shard: "
            f"{_keys(sharded)} != {_keys(batched)}"
        )

    time_batched = time_callable(
        lambda: run_screening(servable, batched_cfg, generator=generator),
        rounds=rounds, warmup=warmup,
    )
    time_single = time_callable(
        lambda: run_screening(servable, single_cfg, generator=generator),
        rounds=rounds, warmup=warmup,
    )
    cps_batched = count / time_batched
    cps_single = count / time_single
    gain = cps_batched / cps_single if cps_single > 0 else float("inf")

    return [
        bench_result(
            "screen.throughput.gain", "speedup", gain, "x",
            detail=f"candidates/sec, batch {BATCHED_SIZE} vs 1, "
                   f"{count} candidates",
        ),
        bench_result("screen.step.batched", "time", time_batched, "s"),
        bench_result("screen.step.single", "time", time_single, "s"),
        bench_result("screen.cand_per_sec.batched", "metric", cps_batched, "cand/s"),
        bench_result("screen.cand_per_sec.single", "metric", cps_single, "cand/s"),
        # 1.0 iff batched == single == sharded, bit for bit; the checks
        # above raise otherwise, so a written JSON always carries 1.0 —
        # committed as evidence alongside the test-suite assertions.
        bench_result("screen.bit_identical", "metric", 1.0, "bool"),
        bench_result("screen.topk.best_score", "metric", batched.ranked[0].score, "eV"),
        bench_result("screen.topk.size", "metric", len(batched.ranked), "items"),
    ]


def print_results(results: List[Dict]) -> None:
    print_header("Screening: batched vs one-at-a-time candidate throughput")
    by_name = {r["name"]: r for r in results}
    print(
        f"candidates/sec: batched {by_name['screen.cand_per_sec.batched']['value']:.1f} "
        f"vs single {by_name['screen.cand_per_sec.single']['value']:.1f} "
        f"-> gain {by_name['screen.throughput.gain']['value']:.2f}x"
    )
    print(
        f"bit-identity across layouts (batch {BATCHED_SIZE}, batch 1, "
        f"{NUM_SHARDS} shards): "
        f"{'ok' if by_name['screen.bit_identical']['value'] == 1.0 else 'FAILED'}"
    )
    print(
        f"top-{by_name['screen.topk.size']['value']:.0f} best score "
        f"{by_name['screen.topk.best_score']['value']:+.4f}"
    )
