"""Hot-path benchmarks: fused kernels, pipeline caching, end-to-end step.

Every measurement is a *speedup ratio* — optimized path vs the reference
composition run in the same process — so the committed baseline
(``benchmarks/BENCH_hotpaths.json``) is machine-portable: a ratio holds
across CPUs where absolute milliseconds do not.  Absolute times of the
optimized paths are recorded alongside for local (same-machine) gating
with ``scripts/bench_gate.py --absolute``.

All workloads are seeded and sized so the full suite runs in seconds;
``tiny=True`` shrinks them further for the gate's unit tests.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from benchmarks.common import bench_result, compare_callables, print_header
from repro.autograd import Tensor
from repro.data import CollateBuffers, collate_graphs
from repro.data.cache import LRUByteCache
from repro.data.structures import GraphSample
from repro.data.transforms import StructureToGraph
from repro.datasets import SymmetryPointCloudDataset
from repro.kernels import dispatch as K
from repro.kernels import use_fused
from repro.models import EGNN
from repro.nn import Linear
from repro.optim import AdamW
from repro.tasks import MultiClassClassificationTask


def _fwd_bwd(make_out, *leaves):
    """One forward + backward over fresh leaf tensors (grads cleared)."""
    for leaf in leaves:
        leaf.grad = None
    make_out().sum().backward()


# --------------------------------------------------------------------------- #
# Micro kernels: fused vs reference forward+backward
# --------------------------------------------------------------------------- #
def _micro_cases(tiny: bool) -> List[Dict]:
    rng = np.random.default_rng(7)
    n, d = (64, 32) if tiny else (512, 128)
    x = Tensor(rng.normal(size=(n, d)), requires_grad=True)
    w = Tensor(rng.normal(size=(d, d)), requires_grad=True)
    b = Tensor(rng.normal(size=(d,)), requires_grad=True)
    logits = Tensor(rng.normal(size=(n, 8)), requires_grad=True)
    targets = rng.integers(0, 8, size=n)
    e = n * 16
    edges_a = Tensor(rng.normal(size=(e, d)), requires_grad=True)
    edges_b = Tensor(rng.normal(size=(e, d)), requires_grad=True)
    seg = np.sort(rng.integers(0, n, size=e))
    return [
        dict(
            name="linear_act_silu",
            fn=lambda: _fwd_bwd(lambda: K.linear_act(x, w, b, act="silu"), x, w, b),
        ),
        dict(
            name="rms_norm",
            fn=lambda: _fwd_bwd(lambda: K.rms_norm(x, b, 1e-6), x, b),
        ),
        dict(
            name="layer_norm",
            fn=lambda: _fwd_bwd(lambda: K.layer_norm(x, b, b, 1e-6), x, b),
        ),
        dict(
            name="softmax_cross_entropy",
            fn=lambda: _fwd_bwd(
                lambda: K.softmax_cross_entropy(logits, targets), logits
            ),
        ),
        dict(
            name="mul_segment_sum",
            fn=lambda: _fwd_bwd(
                lambda: K.mul_segment_sum(edges_a, edges_b, seg, n), edges_a, edges_b
            ),
        ),
    ]


def bench_micro_kernels(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """Fused-vs-reference speedups for each micro kernel."""
    results = []
    for case in _micro_cases(tiny):
        def fused_arm(fn=case["fn"]):
            with use_fused(True):
                fn()

        def ref_arm(fn=case["fn"]):
            with use_fused(False):
                fn()

        fused_t, ref_t = compare_callables(
            fused_arm, ref_arm, rounds=rounds, warmup=warmup
        )
        results.append(
            bench_result(
                f"kernel.{case['name']}", "speedup", ref_t / fused_t, "x",
                fused_seconds=fused_t, reference_seconds=ref_t,
            )
        )
        results.append(
            bench_result(f"kernel.{case['name']}.time", "time", fused_t, "s")
        )
    return results


# --------------------------------------------------------------------------- #
# Optimizer: fused single-pass Adam vs reference loop
# --------------------------------------------------------------------------- #
def bench_adam(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """Speedup of the fused in-place Adam update."""
    rng = np.random.default_rng(11)
    sizes = [(32, 32)] * 4 if tiny else [(256, 256)] * 8
    params = [Tensor(rng.normal(size=s), requires_grad=True) for s in sizes]
    for p in params:
        p.grad = rng.normal(size=p.shape)
    opt = AdamW(params, lr=1e-3, weight_decay=1e-2)

    def step():
        opt.step()

    def fused_arm():
        with use_fused(True):
            step()

    def ref_arm():
        with use_fused(False):
            step()

    fused_t, ref_t = compare_callables(fused_arm, ref_arm, rounds=rounds, warmup=warmup)
    return [
        bench_result(
            "optim.adam_step", "speedup", ref_t / fused_t, "x",
            fused_seconds=fused_t, reference_seconds=ref_t,
        ),
        bench_result("optim.adam_step.time", "time", fused_t, "s"),
    ]


# --------------------------------------------------------------------------- #
# Data pipeline: neighbor cache and collate buffers
# --------------------------------------------------------------------------- #
def _structures(tiny: bool):
    count = 8 if tiny else 32
    ds = SymmetryPointCloudDataset(count, seed=5, group_names=["C2", "C4", "D2", "Oh"])
    return [ds[i] for i in range(count)]


def bench_cache(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """Cold (kd-tree every sample) vs warm (memoized) transform epochs."""
    structs = _structures(tiny)
    cold_tf = StructureToGraph(cutoff=2.5)
    cache = LRUByteCache(max_bytes=32 * 1024 * 1024, name="bench")
    warm_tf = StructureToGraph(cutoff=2.5, cache=cache)

    def epoch(tf):
        for s in structs:
            tf(s)

    epoch(warm_tf)  # populate
    warm_t, cold_t = compare_callables(
        lambda: epoch(warm_tf), lambda: epoch(cold_tf), rounds=rounds, warmup=warmup
    )
    return [
        bench_result(
            "data.neighbor_cache", "speedup", cold_t / warm_t, "x",
            cold_seconds=cold_t, warm_seconds=warm_t,
            hit_rate=cache.stats()["hit_rate"],
        ),
        bench_result("data.neighbor_cache.time", "time", warm_t, "s"),
    ]


def bench_collate(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """Fresh-allocation vs buffered collation of a fixed batch list.

    Samples are synthetic graphs at crystal scale (~500 nodes, ~8000
    edges) — buffer reuse pays once arrays outgrow the allocator's
    small-block reuse, so the toy symmetry clouds would only measure
    Python dispatch overhead.
    """
    rng = np.random.default_rng(17)
    count, nodes, edges = (4, 100, 800) if tiny else (16, 500, 8000)
    samples = [
        GraphSample(
            positions=rng.normal(size=(nodes, 3)),
            species=rng.integers(0, 4, size=nodes),
            edge_src=rng.integers(0, nodes, size=edges).astype(np.int64),
            edge_dst=rng.integers(0, nodes, size=edges).astype(np.int64),
            targets={"y": 1.0},
        )
        for _ in range(count)
    ]
    buffers = CollateBuffers()
    # Several collates per timed round: single calls sit near the jitter
    # floor of a shared host.
    iters = 10

    def buffered_arm():
        for _ in range(iters):
            collate_graphs(samples, buffers=buffers)

    def plain_arm():
        for _ in range(iters):
            collate_graphs(samples)

    buffered_t, plain_t = compare_callables(
        buffered_arm, plain_arm, rounds=rounds, warmup=warmup
    )
    buffered_t, plain_t = buffered_t / iters, plain_t / iters
    return [
        bench_result(
            "data.collate_buffers", "speedup", plain_t / buffered_t, "x",
            plain_seconds=plain_t, buffered_seconds=buffered_t,
        ),
        bench_result("data.collate_buffers.time", "time", buffered_t, "s"),
    ]


# --------------------------------------------------------------------------- #
# End to end: one pretraining step, optimized vs reference
# --------------------------------------------------------------------------- #
def _training_setup(tiny: bool):
    rng = np.random.default_rng(3)
    count = 8 if tiny else 16
    hidden = 16 if tiny else 32
    ds = SymmetryPointCloudDataset(count, seed=5, group_names=["C2", "C4", "D2", "Oh"])
    structs = [ds[i] for i in range(count)]
    enc = EGNN(hidden_dim=hidden, num_layers=3, position_dim=12, num_species=4, rng=rng)
    task = MultiClassClassificationTask(
        enc, num_classes=4, hidden_dim=hidden, num_blocks=2, rng=rng
    )
    opt = AdamW(task.parameters(), lr=1e-3)
    return structs, task, opt


def bench_pretrain_step(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """The acceptance measurement: data + forward + backward + optimizer.

    Optimized = fused kernels + neighbor cache + collate buffers;
    reference = ``REPRO_FUSED=0`` with cold transforms and fresh
    allocations — the pre-PR hot path.
    """
    structs, task, opt = _training_setup(tiny)
    cold_tf = StructureToGraph(cutoff=2.5)
    cache = LRUByteCache(max_bytes=32 * 1024 * 1024, name="bench-e2e")
    warm_tf = StructureToGraph(cutoff=2.5, cache=cache)
    buffers = CollateBuffers()

    def step(tf, bufs):
        batch = collate_graphs([tf(s) for s in structs], buffers=bufs)
        opt.zero_grad()
        loss, _ = task.training_step(batch)
        loss.backward()
        opt.step()
        return float(loss.data)

    def optimized_arm():
        with use_fused(True):
            step(warm_tf, buffers)

    def reference_arm():
        with use_fused(False):
            step(cold_tf, None)

    opt_t, ref_t = compare_callables(
        optimized_arm, reference_arm, rounds=rounds, warmup=warmup
    )
    return [
        bench_result(
            "e2e.pretrain_step", "speedup", ref_t / opt_t, "x",
            optimized_seconds=opt_t, reference_seconds=ref_t,
        ),
        bench_result("e2e.pretrain_step.time", "time", opt_t, "s"),
    ]


# --------------------------------------------------------------------------- #
def collect_results(
    rounds: int = 5, warmup: int = 1, tiny: bool = False
) -> List[Dict]:
    """Run the full hot-path suite; returns schema entries for the gate."""
    results: List[Dict] = []
    results += bench_micro_kernels(rounds, warmup, tiny)
    results += bench_adam(rounds, warmup, tiny)
    results += bench_cache(rounds, warmup, tiny)
    results += bench_collate(rounds, warmup, tiny)
    results += bench_pretrain_step(rounds, warmup, tiny)
    return results


def print_results(results: List[Dict]) -> None:
    """Human-readable table of the collected measurements."""
    print_header("Hot-path benchmarks (fused kernels + caching)")
    print(f"{'name':<32} {'kind':<8} {'value':>10}")
    for r in results:
        unit = r["unit"] if r["kind"] != "time" else "s"
        value = f"{r['value']:.3f}{unit}" if r["kind"] == "speedup" else f"{r['value'] * 1e3:.2f} ms"
        print(f"{r['name']:<32} {r['kind']:<8} {value:>12}")


class TestHotPaths:
    """pytest-benchmark entry point (one pedantic round, like the figures)."""

    def test_hotpath_speedups(self, benchmark):
        results = benchmark.pedantic(
            lambda: collect_results(rounds=3, warmup=1), rounds=1, iterations=1
        )
        print_results(results)
        by_name = {r["name"]: r["value"] for r in results}
        # The acceptance floor from the performance pass: the end-to-end
        # pretraining step must be >= 1.5x faster with fused + caching.
        assert by_name["e2e.pretrain_step"] >= 1.5
        # Every fused micro kernel must at least break even.
        for r in results:
            if r["kind"] == "speedup" and r["name"].startswith("kernel."):
                assert r["value"] > 0.8, r


if __name__ == "__main__":
    print_results(collect_results())
