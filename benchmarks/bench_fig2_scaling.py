"""Figure 2 — pretraining throughput vs DDP worker count.

The paper measures aggregate samples/second from 16 to 512 ranks on the
Endeavour cluster and finds linear scaling (negligible allreduce overhead),
annotating each point with the time per epoch over the 2M-sample dataset.

The reproduction measures the *single-worker* training rate live (forward +
backward + AdamW step on the symmetry task), then projects scale-out
through the calibrated cluster performance model (HDR200 ring allreduce,
16 workers per dual-socket node — Sec. 4.1's configuration).  Asserted
shape: linear growth (R^2 > 0.99 against a straight line), sub-5% deviation
from ideal scaling at 512 ranks, and minutes-scale epochs at the top end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from benchmarks.common import bench_result, encoder_config, print_header, write_bench_json
from repro.core import OptimizerConfig, PretrainConfig, pretrain_symmetry
from repro.distributed import ENDEAVOUR, ThroughputModel
from repro.distributed.perf_model import linear_fit_r2
from repro.utils import human_count

PAPER_DATASET_SIZE = 2_000_000
WORLD_SIZES = [16, 32, 64, 128, 256, 512]
BATCH_PER_WORKER = 32  # the paper's per-rank batch


def measure_single_worker_rate():
    """Live samples/s of one training worker on the symmetry task.

    The run is traced (span layer only — no per-op profiling, which would
    distort the measured rate) so the bench can report where a single
    worker's wall time actually goes before the model projects scale-out.
    """
    cfg = PretrainConfig(
        encoder=encoder_config(),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=2),
        train_samples=128,
        val_samples=16,
        world_size=1,
        batch_per_worker=16,
        max_epochs=3,
        head_hidden_dim=32,
        head_blocks=2,
        seed=2,
        trace_out="/dev/null",  # spans on, per-op profiling off
    )
    result = pretrain_symmetry(cfg)
    params = result.task.num_parameters()
    return result.throughput.samples_per_second, params, result.observer


def run_fig2(out_json: Optional[str] = None):
    rate, params, observer = measure_single_worker_rate()
    gradient_bytes = params * 8  # float64 gradients
    model = ThroughputModel(
        per_worker_samples_per_s=rate,
        batch_per_worker=BATCH_PER_WORKER,
        gradient_bytes=gradient_bytes,
        cluster=ENDEAVOUR,
    )
    rows = model.sweep(WORLD_SIZES, PAPER_DATASET_SIZE)

    print_header(
        "Figure 2 — throughput scaling (measured single-worker rate "
        f"{rate:.1f} samples/s, {human_count(params)} params -> "
        f"{gradient_bytes / 1e6:.1f} MB gradient payload)"
    )
    print(f"{'workers':>8} {'nodes':>6} {'samples/s':>12} {'epoch (min)':>12} {'efficiency':>11}")
    for r in rows:
        print(
            f"{r['workers']:>8d} {r['nodes']:>6d} {r['samples_per_s']:>12.0f} "
            f"{r['epoch_minutes']:>12.2f} {r['efficiency']:>11.4f}"
        )
    rates = [r["samples_per_s"] for r in rows]
    r2 = linear_fit_r2(WORLD_SIZES, rates)
    print(f"\nlinear fit R^2 = {r2:.6f} (paper overlays a linear fit)")
    print("paper shape: linear scaling 16 -> 512 ranks, minutes-scale epochs")
    print("\nsingle-worker step-phase breakdown (measured run):")
    print(observer.phase_table())
    if out_json:
        results = [
            bench_result("fig2.single_worker_rate", "metric", rate, "samples/s"),
            bench_result("fig2.linear_fit_r2", "metric", r2, "r2"),
        ] + [
            bench_result(
                f"fig2.samples_per_s.w{r['workers']}",
                "metric",
                r["samples_per_s"],
                "samples/s",
            )
            for r in rows
        ]
        write_bench_json(out_json, results, meta={"bench": "fig2_scaling"})
    return rows, r2, model, observer


class TestFig2Scaling:
    def test_fig2_throughput_scaling(self, benchmark):
        rows, r2, model, observer = benchmark.pedantic(
            run_fig2, rounds=1, iterations=1
        )

        # Linear growth, as in the paper's fit.
        assert r2 > 0.99
        # Communication overhead negligible on HDR200 (paper: "negligible").
        assert model.scaling_efficiency(512) > 0.95
        # Monotone increase in aggregate throughput.
        rates = [r["samples_per_s"] for r in rows]
        assert all(a < b for a, b in zip(rates, rates[1:]))
        # The right ordinate of Fig. 2: full 2M-sample epochs complete in
        # minutes at scale.
        assert rows[-1]["epoch_minutes"] < 60.0
        assert rows[-1]["epoch_minutes"] < rows[0]["epoch_minutes"] / 16
        # The measured run is traced: the canonical phases must explain
        # nearly all of the single worker's wall time.
        assert observer.tracer.phase_coverage() >= 0.90
