"""Tape-compiler benchmark: cached plan replay vs the eager training step.

The compiler's payoff case is a *recurring* batch: the first step traces,
optimizes, memory-plans, and bitwise-validates a plan; every later step
with the same batch bytes replays the flat instruction list straight from
the cache, skipping module traversal and tape bookkeeping.  Both arms run
with fused kernels on — the baseline here is the post-PR-4 hot path, so
the gated ratio is the compiler's speedup *on top of* the 1.52x e2e gain
already pinned in ``BENCH_hotpaths.json``.

Gated entries (speedup kind):

* ``compile.train_step`` — replayed step vs eager step, same task, same
  batch, interleaved rounds.

Ungated context (metric kind): one-time trace cost relative to a steady
step, plan/arena accounting, and the cache hit rate over the run.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (  # noqa: E402
    bench_result,
    compare_callables,
    print_header,
    time_callable,
)
from repro.compiler import (  # noqa: E402
    compiled_training_step,
    get_plan_cache,
    reset_plan_cache,
    trace_function,
)
from repro.data.batching import collate_graphs  # noqa: E402
from repro.data.transforms import StructureToGraph  # noqa: E402
from repro.datasets import SymmetryPointCloudDataset  # noqa: E402
from repro.kernels.dispatch import use_fused  # noqa: E402
from repro.models import EGNN  # noqa: E402
from repro.tasks import MultiClassClassificationTask  # noqa: E402


def _training_setup(tiny: bool):
    """One fixed (task, batch): the recurring-batch scenario."""
    rng = np.random.default_rng(7)
    count = 8 if tiny else 16
    hidden = 16 if tiny else 32
    ds = SymmetryPointCloudDataset(count, seed=5, group_names=["C2", "C4", "D2", "Oh"])
    tf = StructureToGraph(cutoff=2.5)
    batch = collate_graphs([tf(ds[i]) for i in range(count)])
    enc = EGNN(hidden_dim=hidden, num_layers=3, position_dim=12, num_species=4, rng=rng)
    task = MultiClassClassificationTask(
        enc, num_classes=4, hidden_dim=hidden, num_blocks=2, rng=rng
    )
    return batch, task


def bench_compiled_step(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """The acceptance measurement: cached replay vs the eager fused step.

    Both arms cover exactly what the compiler replaces — forward plus
    backward on the live parameters; the optimizer update is identical
    code either way, so timing it would only dilute the ratio.  The gain
    is modest by construction: the eager arm already runs fused kernels,
    so the replay's edge is the extra pattern rewrites and dead nodes the
    passes strip plus the skipped module traversal.  Warmup absorbs the
    one-time trace + validate; every timed compiled round is a cache hit
    (asserted via the stats).
    """
    batch, task = _training_setup(tiny)
    reset_plan_cache()

    def compiled_arm():
        task.zero_grad()
        with use_fused(True):
            loss, _ = compiled_training_step(task, batch)
        return float(loss.data)

    def eager_arm():
        task.zero_grad()
        with use_fused(True):
            loss, _ = task.training_step(batch)
            loss.backward()
        return float(loss.data)

    compiled_t, eager_t = compare_callables(
        compiled_arm, eager_arm, rounds=rounds, warmup=max(warmup, 1)
    )
    stats = get_plan_cache().stats()
    if stats["validation_failures"] or stats["fallbacks"]:
        raise RuntimeError(f"compiled arm did not stay on the plan path: {stats}")
    return [
        bench_result(
            "compile.train_step", "speedup", eager_t / compiled_t, "x",
            compiled_seconds=compiled_t, eager_seconds=eager_t,
        ),
        bench_result("compile.train_step.time", "time", compiled_t, "s"),
        bench_result("compile.cache.hit_rate", "metric", stats["hit_rate"], "ratio"),
    ]


def bench_trace_overhead(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """One-time compile cost and the plan's memory accounting, as context.

    Neither entry is gated: the trace ratio says how many replayed steps
    amortize a compile, the peak ratio says how much of the eager live-set
    the static arena plan needs.  Both are properties of the graph, not of
    machine speed, but they drift with planner changes — worth printing.
    """
    batch, task = _training_setup(tiny)

    def fn():
        loss, _, outputs = task.training_step_traced(batch)
        return loss, outputs

    with use_fused(True):
        trace_t = time_callable(
            lambda: trace_function(fn, rewrite=True), rounds=rounds, warmup=warmup
        )
        result = trace_function(fn, rewrite=True)

        def eager_fwd_bwd():
            loss, _ = task.training_step(batch)
            loss.backward()
            task.zero_grad()

        eager_t = time_callable(eager_fwd_bwd, rounds=rounds, warmup=warmup)
    memory = result.plan.memory
    return [
        bench_result(
            "compile.trace_overhead", "metric", trace_t / eager_t, "x",
            trace_seconds=trace_t, eager_seconds=eager_t,
        ),
        bench_result(
            "compile.plan.peak_ratio", "metric",
            memory.plan_peak / memory.eager_peak, "ratio",
            plan_peak_bytes=memory.plan_peak,
            eager_peak_bytes=memory.eager_peak,
            arena_bytes=memory.arena_bytes,
        ),
    ]


# --------------------------------------------------------------------------- #
def collect_results(
    rounds: int = 5, warmup: int = 1, tiny: bool = False
) -> List[Dict]:
    """Run the compiler suite; returns schema entries for the gate."""
    results: List[Dict] = []
    results += bench_compiled_step(rounds, warmup, tiny)
    results += bench_trace_overhead(rounds, warmup, tiny)
    return results


def print_results(results: List[Dict]) -> None:
    """Human-readable table of the collected measurements."""
    print_header("Tape-compiler benchmarks (plan replay vs eager)")
    print(f"{'name':<32} {'kind':<8} {'value':>12}")
    for r in results:
        if r["kind"] == "time":
            value = f"{r['value'] * 1e3:.2f} ms"
        else:
            value = f"{r['value']:.3f}{r['unit']}"
        print(f"{r['name']:<32} {r['kind']:<8} {value:>12}")
