"""Figure 5 — band-gap fine-tuning: pretrained vs random initialization.

Paper observation: on the single-target Materials Project band-gap task,
the pretrained model converges to lower error *more quickly* in the early
stages ("may see benefits with early stopping algorithms with a fixed
compute budget") but then falls into a local minimum, while the model
trained from scratch converges more slowly and ends at a comparable-or-
better level.

Both arms are identical except for the encoder initialization and the
fine-tuning rule: the transplanted encoder trains at base_lr / 10 (the
paper's anti-forgetting rule, applied to the parameters that can forget —
see EXPERIMENTS.md) while everything else — data order, head init at the
same seed, warmup + exponential decay, the lr = eta_base * N DDP scaling —
is shared.  Seeds are averaged because single runs at this scale are noisy;
the asserted shape is the averaged early-phase advantage of pretraining and
the late-phase plateau/convergence pattern.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from benchmarks.common import FIG5_SEEDS, fig5_config, pretrained_state, print_header
from repro.core import train_band_gap

#: Early-phase window (validation epochs 2..6): late enough that both heads
#: have produced non-degenerate predictions, early enough that the scratch
#: encoder has not yet learned the chemistry.
EARLY_WINDOW = slice(1, 6)


def run_fig5() -> Dict[str, List]:
    state = pretrained_state()
    scratch_runs, pretrained_runs = [], []
    for seed in FIG5_SEEDS:
        cfg = fig5_config(seed)
        scratch_runs.append(train_band_gap(cfg))
        pretrained_runs.append(train_band_gap(cfg, pretrained_state=state))

    def mean_curve(runs):
        length = min(len(r.curve_mae) for r in runs)
        return np.mean([r.curve_mae[:length] for r in runs], axis=0)

    scratch_curve = mean_curve(scratch_runs)
    pretrained_curve = mean_curve(pretrained_runs)

    print_header(
        f"Figure 5 — band-gap validation MAE (eV), mean over seeds {FIG5_SEEDS}"
    )
    print("epoch    scratch  pretrained")
    early_epochs = set(range(EARLY_WINDOW.start + 1, EARLY_WINDOW.stop + 1))
    for i, (s, p) in enumerate(zip(scratch_curve, pretrained_curve), start=1):
        marker = "  <- early window" if i in early_epochs else ""
        print(f"{i:5d} {s:10.3f} {p:11.3f}{marker}")
    print(
        f"\nearly window mean: scratch "
        f"{scratch_curve[EARLY_WINDOW].mean():.3f} vs pretrained "
        f"{pretrained_curve[EARLY_WINDOW].mean():.3f}"
    )
    print(
        f"final: scratch {scratch_curve[-1]:.3f} vs pretrained {pretrained_curve[-1]:.3f}"
    )
    print(
        "paper shape: pretrained converges faster early, then plateaus "
        "(local minimum); scratch slower but competitive-or-better by the end"
    )
    return {
        "scratch": scratch_curve,
        "pretrained": pretrained_curve,
        "scratch_runs": scratch_runs,
        "pretrained_runs": pretrained_runs,
    }


class TestFig5BandGap:
    def test_fig5_pretrained_vs_scratch(self, benchmark):
        out = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
        scratch, pretrained = out["scratch"], out["pretrained"]
        n = len(scratch)

        # Early-phase advantage of pretraining (the paper's headline for
        # this figure): averaged over seeds, the pretrained arm sits below
        # the scratch arm through the early window.
        assert pretrained[EARLY_WINDOW].mean() < scratch[EARLY_WINDOW].mean()

        # The pretrained arm then falls into a local minimum: its second
        # half improves only marginally over its first-half best.
        first_half_best = pretrained[: n // 2].min()
        assert pretrained[-1] > first_half_best - 0.08

        # The from-scratch model converges more slowly but to the better
        # final model — the paper's closing observation for this figure.
        assert scratch[-1] < pretrained[-1]
        assert scratch[-1] < scratch[EARLY_WINDOW].mean()

        # Both arms end convergent (no run-away divergence in the means).
        assert scratch[-1] < 1.5 * scratch.min()
        assert pretrained[-1] < 1.5 * pretrained.min()
