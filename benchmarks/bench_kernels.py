"""Micro-kernel benchmarks for the substrate's hot paths.

These are classic pytest-benchmark measurements (many rounds) of the
operations that dominate training time: the sparse segment reductions that
replace DGL's kernels, radius-graph construction, and the E(n)-GNN
forward/backward.  They exist to catch performance regressions in the
kernels the Fig. 2 throughput measurement rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.data import collate_graphs
from repro.data.transforms import StructureToGraph, radius_graph
from repro.datasets import SymmetryPointCloudDataset
from repro.models import EGNN
from repro.optim import AdamW
from repro.tasks import MultiClassClassificationTask


@pytest.fixture(scope="module")
def edge_data():
    rng = np.random.default_rng(0)
    n_nodes, n_edges, dim = 2_000, 20_000, 64
    return {
        "x": rng.normal(size=(n_edges, dim)),
        "seg": rng.integers(0, n_nodes, size=n_edges),
        "n": n_nodes,
    }


class TestSegmentKernels:
    def test_segment_sum_forward(self, benchmark, edge_data):
        x = Tensor(edge_data["x"])
        out = benchmark(lambda: F.segment_sum(x, edge_data["seg"], edge_data["n"]))
        assert out.shape == (edge_data["n"], 64)

    def test_segment_sum_backward(self, benchmark, edge_data):
        def step():
            x = Tensor(edge_data["x"], requires_grad=True)
            F.segment_sum(x, edge_data["seg"], edge_data["n"]).sum().backward()
            return x.grad

        grad = benchmark(step)
        assert grad.shape == edge_data["x"].shape

    def test_segment_softmax(self, benchmark, edge_data):
        x = Tensor(edge_data["x"][:, 0])
        out = benchmark(lambda: F.segment_softmax(x, edge_data["seg"], edge_data["n"]))
        assert out.shape == (len(edge_data["seg"]),)

    def test_index_select(self, benchmark, edge_data):
        table = Tensor(np.random.default_rng(1).normal(size=(edge_data["n"], 64)))
        out = benchmark(lambda: F.index_select(table, edge_data["seg"]))
        assert out.shape == (len(edge_data["seg"]), 64)


class TestGraphConstruction:
    def test_radius_graph_1000_points(self, benchmark):
        points = np.random.default_rng(2).normal(size=(1_000, 3)) * 5
        src, dst = benchmark(lambda: radius_graph(points, cutoff=2.0))
        assert len(src) == len(dst)


def _make_training_step():
    rng = np.random.default_rng(3)
    ds = SymmetryPointCloudDataset(16, seed=5, group_names=["C2", "C4", "D2", "Oh"])
    tf = StructureToGraph(cutoff=2.5)
    batch = collate_graphs([tf(ds[i]) for i in range(16)])
    enc = EGNN(hidden_dim=32, num_layers=3, position_dim=12, num_species=4, rng=rng)
    task = MultiClassClassificationTask(enc, num_classes=4, hidden_dim=32, num_blocks=2, rng=rng)
    opt = AdamW(task.parameters(), lr=1e-3)
    return task, batch, opt


class TestModelThroughput:
    def test_egnn_forward(self, benchmark):
        task, batch, _ = _make_training_step()
        out = benchmark(lambda: task.encoder(batch).graph_embedding)
        assert out.shape[0] == batch.num_graphs

    def test_egnn_training_step(self, benchmark):
        task, batch, opt = _make_training_step()

        def step():
            opt.zero_grad()
            loss, _ = task.training_step(batch)
            loss.backward()
            opt.step()
            return float(loss.data)

        value = benchmark(step)
        assert np.isfinite(value)

    def test_adamw_step_only(self, benchmark):
        task, batch, opt = _make_training_step()
        loss, _ = task.training_step(batch)
        loss.backward()
        benchmark(opt.step)
