"""Figure 6 — the final pretraining run's learning curve with its lr trace.

The paper's Appendix B shows the 20-epoch pretraining curve used for all
downstream experiments: multiclass cross-entropy with early spikes that
stabilize as the exponentially decaying learning rate comes down, overlaid
with the lr schedule (linear ramp over five epochs to eta_base * N with
eta_base = 1e-5 and N = 512, then gamma = 0.8 decay).

The reproduction runs the same schedule under simulated DDP at a reduced
worker count and asserts the schedule's shape (ramp to exactly
eta_base * N, then strict decay), overall convergence, and the
late-training stabilization the paper describes (the last quarter of
training is dramatically calmer than the first).
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import print_header
from repro.core import EncoderConfig, OptimizerConfig, PretrainConfig, pretrain_symmetry

GROUPS = ["C1", "Ci", "C2v", "C4", "D2h", "Td", "Oh", "C6"]
BASE_LR = 1e-5
WORLD_SIZE = 256
WARMUP_EPOCHS = 5
GAMMA = 0.8
EPOCHS = 16


def run_fig6():
    cfg = PretrainConfig(
        encoder=EncoderConfig(hidden_dim=24, num_layers=2, position_dim=8),
        optimizer=OptimizerConfig(
            base_lr=BASE_LR, warmup_epochs=WARMUP_EPOCHS, gamma=GAMMA
        ),
        group_names=GROUPS,
        train_samples=512,
        val_samples=64,
        max_points=16,
        world_size=WORLD_SIZE,
        batch_per_worker=1,
        max_epochs=EPOCHS,
        val_every_n_steps=2,
        head_hidden_dim=24,
        head_blocks=2,
        seed=4,
    )
    result = pretrain_symmetry(cfg)
    _, train_ce = result.history.series("val", "ce")
    lr_trace = [lr for _, lr in result.lr_trace]

    print_header(
        f"Figure 6 — pretraining learning curve (eta_base={BASE_LR:g}, "
        f"N={WORLD_SIZE}, warmup {WARMUP_EPOCHS} epochs, gamma={GAMMA})"
    )
    print("CE every 2 steps:")
    print("  " + " ".join(f"{v:7.2f}" for v in train_ce))
    print("lr per epoch (dashed curve in the paper):")
    print("  " + " ".join(f"{v:.2e}" for v in lr_trace))
    print(
        "\npaper shape: ramp to eta_base*N then exponential decay; early "
        "spikes stabilize as the lr comes down, learning plateaus"
    )
    return result, train_ce, lr_trace


class TestFig6PretrainCurve:
    def test_fig6_learning_curve_and_schedule(self, benchmark):
        result, train_ce, lr_trace = benchmark.pedantic(
            run_fig6, rounds=1, iterations=1
        )
        target = BASE_LR * WORLD_SIZE
        # The schedule peaks at exactly eta_base * N ...
        assert np.isclose(max(lr_trace), target, rtol=1e-9)
        # ... after the linear ramp (the first logged epoch is mid-warmup,
        # below the peak), and decays strictly afterwards.
        peak_epoch = int(np.argmax(lr_trace))
        tail = lr_trace[peak_epoch:]
        assert all(a > b for a, b in zip(tail, tail[1:]))
        assert np.isclose(tail[1] / tail[0], GAMMA, rtol=1e-6)

        # Learning converges overall: last-quarter mean CE well below the
        # first-quarter mean.
        q = max(len(train_ce) // 4, 2)
        assert np.mean(train_ce[-q:]) < 0.7 * np.mean(train_ce[:q])
        # Stabilization as the lr decays: the last quarter of the curve is
        # far calmer than the first (relative variation collapses).
        early_var = np.std(train_ce[:q]) / np.mean(train_ce[:q])
        late_var = np.std(train_ce[-q:]) / np.mean(train_ce[-q:])
        assert late_var < early_var
        # And the curve ends at (or near) its best level — the plateau.
        assert train_ce[-1] < 1.1 * min(train_ce)
