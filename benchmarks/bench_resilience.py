"""Resilience benchmark: replicated serving vs a bare replica under chaos.

The experiment the resilience layer exists for: the same seeded fault
schedule — one replica crash, one latency spike, one corrupt servable —
is driven into two arms serving identical seeded-Poisson traffic on the
simulated clock:

* **pool** — a 3-replica :class:`~repro.serving.ReplicaPool` with the
  full failure story (health checks, circuit breakers, hedged requests,
  failover retries, brownout degradation);
* **baseline** — a single replica with every resilience mechanism off,
  hit by the *same* schedule (same seed, same slot draws; all faults
  land on the only replica there is).

The headline, gated entries are availabilities::

    resilience.availability.pool   >= 0.95   (the pool rides out the chaos)
    resilience.availability.gain   = pool / baseline

with the baseline arm collapsing below 0.75 — the delta is what
replication + failover buys.  A third, fault-free arm provides the
reference answers: every response the chaotic pool delivers must be
bit-identical (``np.array_equal``) to the fault-free value for the same
request, because replicas share one servable, all forwards run under
batch-invariant kernels, and faults only ever fail loudly.  The bench
*asserts* all three properties, so a regression fails the run itself,
not just the gate.

Everything runs on the fixed reference service model (1 ms + 0.25
ms/sample), so the simulation — and every gated entry — is
bit-reproducible on any machine.  Baseline lives in
``benchmarks/BENCH_resilience.json``, gated by ``scripts/bench_gate.py
--suite resilience``.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional

import numpy as np

from benchmarks.common import bench_result, print_header
from repro.distributed.events import SimClock
from repro.distributed.faults import RetryPolicy
from repro.observability import Observer
from repro.serving import (
    AdmissionPolicy,
    AffineServiceModel,
    BatchPolicy,
    ReplicaPool,
    Servable,
    ServableSpec,
    chaos_schedule,
    make_requests,
    poisson_arrivals,
)
from repro.serving.demo import demo_request_samples

TRAFFIC_SEED = 17
#: Pinned so the schedule spreads the three fault kinds across all three
#: replicas (crash -> r2, slow -> r1, corrupt -> r0): every resilience
#: mechanism is exercised in one run.
CHAOS_SEED = 2
CHAOS_PROFILE = "replica_crash:1,replica_slow:1,servable_corrupt:1"
NUM_REPLICAS = 3
QUEUE_DEPTH = 16
BATCHED_SIZE = 8

#: Fixed reference service model (same shape as the serving bench): the
#: whole simulation is bit-reproducible across machines, so a drift in
#: any gated entry means the resilience logic changed, not the host.
REFERENCE_SERVICE = AffineServiceModel(base=1.0e-3, per_sample=0.25e-3)


@functools.lru_cache(maxsize=1)
def _servable() -> tuple:
    """An untrained, seeded servable: real forwards, bench-fast setup.

    The bit-identity property under test is a property of the serving
    path (shared servable + batch-invariant kernels + loud-failure
    faults), not of the weights, so the bench skips the demo training
    run the serving suite pays.
    """
    spec = ServableSpec(
        target="band_gap",
        encoder_name="egnn",
        hidden_dim=12,
        num_layers=2,
        position_dim=4,
        head_hidden_dim=12,
        head_blocks=1,
        cutoff=4.5,
        normalizer=[0.25, 1.5],
    )
    servable = Servable(spec.build_task(), spec)
    samples = demo_request_samples(8)
    return servable, samples


def _requests(samples, rate: float, count: int):
    return make_requests(
        samples, poisson_arrivals(rate, count, seed=TRAFFIC_SEED)
    )


def _run_pool(
    servable,
    samples,
    rate: float,
    count: int,
    resilient: bool,
    chaos_seed: Optional[int],
):
    clock = SimClock()
    observer = Observer(clock=clock)
    requests = _requests(samples, rate, count)
    duration = max(r.arrival for r in requests)
    num = NUM_REPLICAS if resilient else 1
    chaos = (
        chaos_schedule(CHAOS_PROFILE, num, duration, seed=chaos_seed)
        if chaos_seed is not None
        else None
    )
    kwargs = (
        {}
        if resilient
        else {
            "hedge": None,
            "breaker": None,
            "health": None,
            "degradation": None,
            "retry": RetryPolicy(max_retries=0),
        }
    )
    pool = ReplicaPool(
        servable.predict,
        num_replicas=num,
        batch=BatchPolicy(max_batch_size=BATCHED_SIZE, max_wait=0.004),
        admission=AdmissionPolicy(max_queue_depth=QUEUE_DEPTH, deadline=0.25),
        service_model=REFERENCE_SERVICE,
        chaos=chaos,
        clock=clock,
        observer=observer,
        seed=0,
        **kwargs,
    )
    return pool, pool.serve(requests)


def collect_results(rounds: int = 5, warmup: int = 1, tiny: bool = False) -> List[Dict]:
    servable, samples = _servable()
    count = 120 if tiny else 400
    # Offered load at ~60% of one replica's batched capacity: two healthy
    # replicas absorb it with room to spare, one bare replica is fine
    # until the schedule takes it out.
    rate = 0.6 * REFERENCE_SERVICE.capacity(BATCHED_SIZE)

    pool, chaotic = _run_pool(servable, samples, rate, count, True, CHAOS_SEED)
    _, baseline = _run_pool(servable, samples, rate, count, False, CHAOS_SEED)
    _, fault_free = _run_pool(servable, samples, rate, count, False, None)

    # Bit-identity under failover: every delivered value equals the
    # fault-free single-replica answer for the same request.
    reference = {r.request_id: r.value for r in fault_free.responses if r.ok}
    delivered = [r for r in chaotic.responses if r.ok]
    mismatches = sum(
        1 for r in delivered if not np.array_equal(r.value, reference[r.request_id])
    )
    if mismatches:
        raise RuntimeError(
            f"failover broke bit-identity: {mismatches}/{len(delivered)} "
            f"delivered responses differ from the fault-free reference"
        )
    if chaotic.availability < 0.95:
        raise RuntimeError(
            f"resilient pool availability {chaotic.availability:.3f} < 0.95 "
            f"under {CHAOS_PROFILE!r} (seed {CHAOS_SEED})"
        )
    if baseline.availability >= 0.75:
        raise RuntimeError(
            f"bare-replica baseline availability {baseline.availability:.3f} "
            f">= 0.75 — the chaos schedule is not stressful enough"
        )
    gain = (
        chaotic.availability / baseline.availability
        if baseline.availability > 0
        else float("inf")
    )
    events = pool.events.summary()
    metrics = chaotic.metrics

    def counter(name: str) -> float:
        return metrics.get(name, {}).get("value", 0.0)

    return [
        bench_result(
            "resilience.availability.pool", "speedup", chaotic.availability, "x",
            detail=f"{NUM_REPLICAS} replicas under {CHAOS_PROFILE}",
        ),
        bench_result(
            "resilience.availability.gain", "speedup", gain, "x",
            detail="pool availability / bare-replica availability, same schedule",
        ),
        bench_result(
            "resilience.availability.baseline", "metric",
            baseline.availability, "fraction",
        ),
        bench_result("resilience.latency.p99.pool", "time", chaotic.p99_latency, "s"),
        bench_result(
            "resilience.latency.p99.fault_free", "time", fault_free.p99_latency, "s"
        ),
        bench_result("resilience.delivered", "metric", float(chaotic.ok), "req"),
        bench_result(
            "resilience.failovers", "metric",
            float(events.get("failover", 0)), "count",
        ),
        bench_result(
            "resilience.hedges.launched", "metric",
            counter("serve.hedge.launched"), "count",
        ),
        bench_result(
            "resilience.hedges.won", "metric", counter("serve.hedge.won"), "count",
        ),
        bench_result(
            "resilience.breaker.opens", "metric",
            float(events.get("breaker_open", 0)), "count",
        ),
        bench_result(
            "resilience.bit_identical", "metric", 1.0, "bool",
            detail=f"{len(delivered)} delivered responses vs fault-free reference",
        ),
    ]


def print_results(results: List[Dict]) -> None:
    print_header("Resilience: 3-replica pool vs bare replica under seeded chaos")
    by_name = {r["name"]: r for r in results}
    print(
        f"chaos: {CHAOS_PROFILE} (seed {CHAOS_SEED}), reference service "
        f"{REFERENCE_SERVICE.base * 1e3:.3f} ms + "
        f"{REFERENCE_SERVICE.per_sample * 1e3:.3f} ms/sample"
    )
    print(
        f"availability: pool {by_name['resilience.availability.pool']['value']:.3f} "
        f"vs bare {by_name['resilience.availability.baseline']['value']:.3f} "
        f"-> gain {by_name['resilience.availability.gain']['value']:.2f}x"
    )
    print(
        f"p99 latency: pool {by_name['resilience.latency.p99.pool']['value'] * 1e3:.2f} ms "
        f"(fault-free "
        f"{by_name['resilience.latency.p99.fault_free']['value'] * 1e3:.2f} ms)"
    )
    print(
        f"recovery traffic: {by_name['resilience.failovers']['value']:.0f} failovers, "
        f"{by_name['resilience.hedges.launched']['value']:.0f} hedges "
        f"({by_name['resilience.hedges.won']['value']:.0f} won), "
        f"{by_name['resilience.breaker.opens']['value']:.0f} breaker opens"
    )
    print(
        f"bit-identity vs fault-free reference: "
        f"{'PASS' if by_name['resilience.bit_identical']['value'] == 1.0 else 'FAIL'} "
        f"({by_name['resilience.bit_identical']['detail']})"
    )
