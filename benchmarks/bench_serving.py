"""Serving benchmark: micro-batching vs one-at-a-time under open-loop load.

The experiment the serving layer exists for: a trained demo servable
(full train -> checkpoint -> registry path) answers seeded-Poisson
traffic twice on the simulated clock — once serving requests one at a
time (``max_batch_size=1``), once micro-batched — under the same
admission policy and the same p99 SLO as the per-request deadline.  Both
arms run saturated (arrival rate above the batched arm's capacity), so
each arm's goodput converges to its capacity and the gated ratio

    serve.goodput.gain = goodput(batched) / goodput(single)

measures what batching buys at a fixed SLO: roughly
``B * s(1) / s(B)`` for affine service time ``s(n) = a + b n``, i.e. how
often the per-dispatch overhead ``a`` is amortized.

The gated arms use a *fixed reference* service model (the paper-cluster
shape: 1 ms dispatch overhead + 0.25 ms/sample), which makes the whole
simulation — and therefore the gated ratio and latency entries —
bit-reproducible on any machine; a drift means the queueing logic
changed, not the host.  The affine model is *also* calibrated from real
timed forwards on this machine and reported alongside: its base/slope
land as ``time`` entries (same-machine gating via ``--absolute``) and its
implied capacity gain as an ungated ``metric``, anchoring the reference
shape to measured compute.  The baseline lives in
``benchmarks/BENCH_serving.json``, gated by
``scripts/bench_gate.py --suite serving``.
"""

from __future__ import annotations

import atexit
import functools
import shutil
import tempfile
from typing import Dict, List

from benchmarks.common import bench_result, print_header
from repro.distributed.events import SimClock
from repro.observability import Observer
from repro.serving import (
    AdmissionPolicy,
    AffineServiceModel,
    BatchPolicy,
    InferenceServer,
    calibrate_service_model,
    make_requests,
    poisson_arrivals,
)
from repro.serving.demo import demo_request_samples, ensure_demo_servable

TRAFFIC_SEED = 17
QUEUE_DEPTH = 16
BATCHED_SIZE = 8

#: Fixed reference service model for the gated arms (1 ms dispatch
#: overhead + 0.25 ms/sample).  Keeping this constant makes the gated
#: entries bit-reproducible across machines: a regression can only come
#: from a change in the batching/admission logic itself.
REFERENCE_SERVICE = AffineServiceModel(base=1.0e-3, per_sample=0.25e-3)


@functools.lru_cache(maxsize=1)
def _demo() -> tuple:
    """Train (or reuse) the demo servable in a bench-lifetime registry."""
    root = tempfile.mkdtemp(prefix="repro-bench-serving-")
    atexit.register(shutil.rmtree, root, ignore_errors=True)
    servable = ensure_demo_servable(root)
    samples = demo_request_samples(8)
    return servable, samples


def _run_arm(
    servable, samples, max_batch: int, max_wait: float, service_model, rate: float,
    count: int, slo: float,
):
    clock = SimClock()
    observer = Observer(clock=clock)
    server = InferenceServer(
        servable,
        batch=BatchPolicy(max_batch_size=max_batch, max_wait=max_wait),
        admission=AdmissionPolicy(max_queue_depth=QUEUE_DEPTH, deadline=slo),
        service_model=service_model,
        observer=observer,
        clock=clock,
    )
    requests = make_requests(
        samples, poisson_arrivals(rate, count, seed=TRAFFIC_SEED)
    )
    return server.serve(requests)


def collect_results(rounds: int = 5, warmup: int = 1, tiny: bool = False) -> List[Dict]:
    servable, samples = _demo()
    measured = calibrate_service_model(
        servable, samples, max_batch_size=BATCHED_SIZE, rounds=max(rounds, 2)
    )
    count = 80 if tiny else 400
    # Saturate both arms: arrivals beyond even the batched capacity, so each
    # arm's goodput converges to its capacity and the ratio measures the
    # amortization of the per-dispatch overhead.  The reference model keeps
    # the simulation bit-reproducible across machines.
    service_model = REFERENCE_SERVICE
    rate = 1.3 * service_model.capacity(BATCHED_SIZE)
    slo = 3.0 * service_model(BATCHED_SIZE)

    batched = _run_arm(
        servable, samples, BATCHED_SIZE, service_model(1), service_model,
        rate, count, slo,
    )
    single = _run_arm(
        servable, samples, 1, 0.0, service_model, rate, count, slo,
    )

    goodput_b = batched.goodput(slo)
    goodput_s = single.goodput(slo)
    gain = goodput_b / goodput_s if goodput_s > 0 else float("inf")
    # Measured capacity gain B*s(1)/s(B) for the calibrated model:
    # informational (two-point fits are noise-sensitive), not gated.
    measured_gain = (
        BATCHED_SIZE * measured(1) / measured(BATCHED_SIZE)
        if measured(BATCHED_SIZE) > 0
        else float("inf")
    )
    return [
        bench_result(
            "serve.goodput.gain", "speedup", gain, "x",
            detail=f"goodput at p99 SLO {slo * 1e3:.2f} ms, batch {BATCHED_SIZE} vs 1",
        ),
        bench_result("serve.latency.p99.batched", "time", batched.p99_latency, "s"),
        bench_result("serve.latency.p99.single", "time", single.p99_latency, "s"),
        bench_result("serve.measured.base", "time", measured.base, "s"),
        bench_result("serve.measured.per_sample", "time", measured.per_sample, "s"),
        bench_result("serve.measured.gain", "metric", measured_gain, "x"),
        bench_result("serve.goodput.batched", "metric", goodput_b, "req/s"),
        bench_result("serve.goodput.single", "metric", goodput_s, "req/s"),
        bench_result("serve.batch.mean_size", "metric", batched.mean_batch_size, "req"),
        bench_result(
            "serve.rejected.single", "metric",
            (single.shed + single.timeout) / single.total, "fraction",
        ),
        bench_result(
            "serve.rejected.batched", "metric",
            (batched.shed + batched.timeout) / batched.total, "fraction",
        ),
    ]


def print_results(results: List[Dict]) -> None:
    print_header("Serving: micro-batched vs single-request goodput at fixed SLO")
    by_name = {r["name"]: r for r in results}
    print(
        f"reference service model: {REFERENCE_SERVICE.base * 1e3:.3f} ms + "
        f"{REFERENCE_SERVICE.per_sample * 1e3:.3f} ms/sample"
    )
    base = by_name["serve.measured.base"]["value"] * 1e3
    per = by_name["serve.measured.per_sample"]["value"] * 1e3
    print(
        f"measured service model: {base:.3f} ms + {per:.3f} ms/sample "
        f"(implied gain {by_name['serve.measured.gain']['value']:.2f}x, not gated)"
    )
    print(
        f"goodput: batched {by_name['serve.goodput.batched']['value']:.1f} req/s "
        f"vs single {by_name['serve.goodput.single']['value']:.1f} req/s "
        f"-> gain {by_name['serve.goodput.gain']['value']:.2f}x"
    )
    print(
        f"p99 latency: batched {by_name['serve.latency.p99.batched']['value'] * 1e3:.2f} ms, "
        f"single {by_name['serve.latency.p99.single']['value'] * 1e3:.2f} ms"
    )
    print(
        f"mean dispatch size {by_name['serve.batch.mean_size']['value']:.2f}; "
        f"rejected fraction batched "
        f"{by_name['serve.rejected.batched']['value']:.2f} vs single "
        f"{by_name['serve.rejected.single']['value']:.2f}"
    )
