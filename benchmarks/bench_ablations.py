"""Ablations of the design choices the paper calls out.

Three decisions from Appendix A / Sec. 4.2 are exercised head-to-head:

* **RMSNorm vs BatchNorm in the output heads** — the paper chose RMSNorm
  because BatchNorm's running statistics misbehave under the irregular
  batches of multi-task, multi-dataset training (including near-singleton
  per-head sub-batches).
* **The lr = eta_base * N scaling rule (Goyal et al.)** — without it, more
  workers mean proportionally fewer, equally-sized steps and visibly slower
  convergence per wall-clock-equivalent step budget.
* **Gradient clipping as an instability mitigation** — clipping tames the
  large-batch high-lr divergence the Fig. 3 bench reproduces.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import print_header
from repro.core import EncoderConfig, OptimizerConfig, PretrainConfig, pretrain_symmetry
from repro.data import collate_graphs
from repro.data.structures import GraphSample
from repro.models import EGNN
from repro.nn import OutputHead
from repro.autograd import Tensor

GROUPS = ["C1", "Ci", "C2v", "C4", "D2h", "Td", "Oh", "C6"]


# --------------------------------------------------------------------------- #
# RMSNorm vs BatchNorm under irregular batches
# --------------------------------------------------------------------------- #
def run_norm_ablation():
    """Train two heads on a toy regression with batch sizes from 1 to 16."""
    rng = np.random.default_rng(0)
    dim = 16
    # Toy targets: a fixed random linear map of the inputs.
    w_true = rng.normal(size=(dim,))
    from repro.optim import AdamW
    from repro.autograd import functional as F

    results = {}
    for norm in ("rmsnorm", "batchnorm"):
        head = OutputHead(
            dim, hidden_dim=16, num_blocks=2, norm=norm, dropout=0.0,
            rng=np.random.default_rng(1),
        )
        opt = AdamW(head.parameters(), lr=3e-3, weight_decay=0.0)
        data_rng = np.random.default_rng(2)
        losses = []
        for step in range(300):
            # Irregular batch sizes, exactly the multi-task failure mode:
            # a head only sees the samples that carry its target.
            b = int(data_rng.integers(1, 17))
            x = data_rng.normal(size=(b, dim))
            y = x @ w_true
            pred = head(Tensor(x)).squeeze(-1)
            loss = F.mse_loss(pred, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        # Evaluation-mode error on a held-out batch (this is where
        # BatchNorm's corrupted running stats bite).
        head.eval()
        x = np.random.default_rng(3).normal(size=(64, dim))
        pred = head(Tensor(x)).squeeze(-1)
        results[norm] = float(np.abs(pred.data - x @ w_true).mean())
    return results


# --------------------------------------------------------------------------- #
# lr scaling rule on/off
# --------------------------------------------------------------------------- #
def run_lr_scaling_ablation():
    """N=64 pretraining with and without the Goyal scaling rule."""
    outcomes = {}
    for scaled in (True, False):
        cfg = PretrainConfig(
            encoder=EncoderConfig(hidden_dim=24, num_layers=2, position_dim=8),
            optimizer=OptimizerConfig(base_lr=1e-4, warmup_epochs=2, gamma=0.95),
            group_names=GROUPS,
            train_samples=128,
            val_samples=64,
            max_points=16,
            world_size=64 if scaled else 1,
            batch_per_worker=1 if scaled else 64,
            max_epochs=1000,
            max_steps=16,
            val_every_n_steps=4,
            head_hidden_dim=24,
            head_blocks=2,
            seed=6,
        )
        # Same B_eff = 64 in both arms; only the lr differs (1e-4 * 64 vs
        # 1e-4 * 1), isolating the scaling rule.
        result = pretrain_symmetry(cfg)
        outcomes["scaled" if scaled else "unscaled"] = result.history.series(
            "val", "ce"
        )[1]
    return outcomes


# --------------------------------------------------------------------------- #
# Adam epsilon vs the large-batch instability (Molybog et al.)
# --------------------------------------------------------------------------- #
def run_epsilon_ablation():
    """The instability mechanism the paper cites, demonstrated directly.

    Molybog et al. attribute Adam divergence to gradients decaying to the
    order of ``eps``: the preconditioner 1/(sqrt(v)+eps) then amplifies
    noise and layer dynamics decouple.  Raising eps damps the adaptive
    preconditioner and removes the pathology; gradient clipping — the
    classic SGD mitigation — does not, because Adam's update magnitude is
    lr-bounded regardless of the raw gradient norm.
    """
    outcomes = {}
    for name, eps, clip in (
        ("eps=1e-8", 1e-8, None),
        ("eps=1e-2", 1e-2, None),
        ("eps=1e-8 + clip", 1e-8, 0.25),
    ):
        cfg = PretrainConfig(
            encoder=EncoderConfig(hidden_dim=24, num_layers=2, position_dim=8),
            optimizer=OptimizerConfig(
                base_lr=1e-3, warmup_epochs=8, gamma=0.8, eps=eps, grad_clip_norm=clip
            ),
            group_names=GROUPS,
            train_samples=128,
            val_samples=64,
            max_points=16,
            world_size=64,
            batch_per_worker=1,
            max_epochs=1000,
            max_steps=24,
            val_every_n_steps=3,
            head_hidden_dim=24,
            head_blocks=2,
            seed=4,
        )
        result = pretrain_symmetry(cfg)
        outcomes[name] = result.history.series("val", "ce")[1]
    return outcomes


# --------------------------------------------------------------------------- #
# Stability guard vs the large-batch divergence
# --------------------------------------------------------------------------- #
def _divergence_config(**overrides):
    """The Fig. 3-style setting where default-eps Adam reliably diverges."""
    cfg = PretrainConfig(
        encoder=EncoderConfig(hidden_dim=24, num_layers=2, position_dim=8),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=8, gamma=0.8),
        group_names=GROUPS,
        train_samples=128,
        val_samples=64,
        max_points=16,
        world_size=64,
        batch_per_worker=1,
        max_epochs=1000,
        max_steps=24,
        val_every_n_steps=3,
        head_hidden_dim=24,
        head_blocks=2,
        seed=4,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def run_guard_ablation():
    """Spike frequency and final loss with and without the stability guard.

    Four arms of the same diverging run: unguarded baseline, the guard with
    ``lr_backoff`` and with ``rollback`` recovery, and the StableAdamW-style
    update-clipped optimizer (a *preventive* mitigation, no guard).  The
    guarded arms must finish with finite losses; the unguarded arm blows
    past 10x chance, reproducing the paper's never-recovers trace.
    """
    outcomes = {}
    arms = (
        ("unguarded", {}),
        ("guard:lr_backoff", {"stability_guard": True, "on_spike": "lr_backoff"}),
        ("guard:rollback", {"stability_guard": True, "on_spike": "rollback"}),
        # Adam's update RMS is ~1-bounded by construction, so the clip must
        # sit well below that to bind in the eps-floor regime.
        (
            "stable-adamw",
            {"optimizer": OptimizerConfig(
                base_lr=1e-3, warmup_epochs=8, gamma=0.8, update_clip=0.1
            )},
        ),
    )
    for name, overrides in arms:
        result = pretrain_symmetry(_divergence_config(**overrides))
        curve = result.history.series("val", "ce")[1]
        guard = result.guard
        outcomes[name] = {
            "curve": curve,
            "spikes": guard.summary()["spikes"] if guard is not None else None,
            "interventions": guard.interventions if guard is not None else None,
            "events": result.events.summary() if result.events is not None else {},
        }
    return outcomes


class TestGuardAblation:
    def test_guard_recovers_the_diverging_run(self, benchmark):
        outcomes = benchmark.pedantic(run_guard_ablation, rounds=1, iterations=1)
        print_header("Ablation — stability guard at N=64, eta_base=1e-3")
        for name, out in outcomes.items():
            curve = out["curve"]
            shown = " ".join(f"{v:9.2f}" if v < 1e4 else f"{v:9.1e}" for v in curve)
            extra = (
                f"  spikes={out['spikes']} interventions={out['interventions']}"
                if out["spikes"] is not None
                else ""
            )
            print(f"  {name:16s}: {shown}{extra}")
        chance = np.log(len(GROUPS))
        # The unguarded run reproduces the Fig. 3 divergence ...
        assert max(outcomes["unguarded"]["curve"]) > 10 * chance
        # ... while every guarded arm completes with finite losses, having
        # actually intervened, and ends far below the divergence peak.
        for name in ("guard:lr_backoff", "guard:rollback"):
            out = outcomes[name]
            assert np.isfinite(out["curve"]).all()
            assert out["interventions"] > 0
            assert out["events"].get("spike", 0) > 0
            assert out["curve"][-1] < max(outcomes["unguarded"]["curve"])
        assert outcomes["guard:rollback"]["events"].get("rollback", 0) > 0
        assert outcomes["guard:lr_backoff"]["events"].get("lr_backoff", 0) > 0
        # The update-clipped optimizer prevents the blow-up outright.
        assert np.isfinite(outcomes["stable-adamw"]["curve"]).all()
        assert max(outcomes["stable-adamw"]["curve"]) < 10 * chance


class TestNormAblation:
    def test_rmsnorm_survives_irregular_batches(self, benchmark):
        results = benchmark.pedantic(run_norm_ablation, rounds=1, iterations=1)
        print_header("Ablation — head normalization under irregular batches")
        for norm, err in results.items():
            print(f"  {norm:10s} eval-mode MAE: {err:.3f}")
        # The paper's stated reason for RMSNorm: reliable behaviour where
        # BatchNorm degrades.
        assert results["rmsnorm"] < results["batchnorm"]


class TestLRScalingAblation:
    def test_scaling_rule_speeds_convergence(self, benchmark):
        outcomes = benchmark.pedantic(run_lr_scaling_ablation, rounds=1, iterations=1)
        print_header("Ablation — Goyal et al. lr scaling at N=64 (same B_eff)")
        for name, curve in outcomes.items():
            print(f"  {name:9s}: " + " ".join(f"{v:.2f}" for v in curve))
        # Without scaling, the large-batch run crawls: its final CE stays
        # near chance while the scaled run makes real progress.
        assert outcomes["scaled"][-1] < outcomes["unscaled"][-1]

    def test_unscaled_large_batch_barely_moves(self, benchmark):
        outcomes = benchmark.pedantic(run_lr_scaling_ablation, rounds=1, iterations=1)
        chance = np.log(len(GROUPS))
        assert outcomes["unscaled"][-1] > 0.8 * chance


class TestEpsilonAblation:
    def test_large_eps_removes_adam_instability(self, benchmark):
        outcomes = benchmark.pedantic(run_epsilon_ablation, rounds=1, iterations=1)
        print_header("Ablation — Adam eps at N=64, eta_base=1e-3 (Molybog et al.)")
        for name, curve in outcomes.items():
            shown = " ".join(f"{v:9.2f}" if v < 1e4 else f"{v:9.1e}" for v in curve)
            print(f"  {name:16s}: {shown}")
        chance = np.log(len(GROUPS))
        # Default eps diverges (the Fig. 3 pathology) ...
        assert max(outcomes["eps=1e-8"]) > 10 * chance
        # ... while a damped preconditioner trains right through it ...
        assert max(outcomes["eps=1e-2"]) < 5 * chance
        assert outcomes["eps=1e-2"][-1] < outcomes["eps=1e-2"][0]
        # ... and gradient clipping alone does NOT rescue Adam (its update
        # is lr-bounded with or without clipping; the pathology is in the
        # preconditioner, exactly as Molybog et al. argue).
        assert max(outcomes["eps=1e-8 + clip"]) > 5 * chance
