"""ZeRO-sharding benchmarks: bucketed comm vs per-parameter allreduce.

Two measurement families, both machine-portable:

* **Measured traffic** — a real simulated-DDP step runs twice over the
  same task, once through the per-parameter explicit-allreduce path and
  once through the bucketed reduce_scatter/allgather path; ``SimComm``'s
  traffic log gives exact collective-launch counts and bytes on the
  wire.  Counts and byte ratios are deterministic, so the committed
  baseline (``benchmarks/BENCH_sharding.json``) gates them on any host.
* **Modeled step time** — :class:`BucketedThroughputModel` converts the
  measured payload geometry into projected step time on the paper's
  cluster, with bucket-i comm overlapped against bucket-(i+1) backward
  compute.  The speedup of the bucketed step over the per-tensor dense
  baseline is gated at every world size >= 8.

Absolute wall time of the bucketed step is recorded as a ``time`` entry
for local (same-machine) gating with ``--absolute``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from benchmarks.common import bench_result, print_header, time_callable
from repro.data.transforms import StructureToGraph
from repro.datasets import SymmetryPointCloudDataset
from repro.distributed import (
    BF16_RELATIVE_ERROR_BOUND,
    BucketedThroughputModel,
    DDPStrategy,
    GradientBucketer,
    ShardedAdamW,
    ShardingSpec,
    ThroughputModel,
    bf16_roundtrip_error,
)
from repro.models import EGNN
from repro.optim import AdamW
from repro.tasks import MultiClassClassificationTask

#: Ranks for the measured-traffic step and the floor of the modeled sweep.
WORLD = 8
#: Modeled sweep (acceptance: bucketed wins at every world size >= 8).
MODEL_WORLDS = (8, 16, 64, 512)


def _setup(tiny: bool) -> Tuple[object, List]:
    rng = np.random.default_rng(23)
    count = WORLD if tiny else 2 * WORLD
    hidden = 12 if tiny else 24
    ds = SymmetryPointCloudDataset(
        count, seed=9, group_names=["C2", "C4", "D2", "Oh"], max_points=16
    )
    transform = StructureToGraph(cutoff=2.5)
    samples = [transform(ds[i]) for i in range(count)]
    enc = EGNN(hidden_dim=hidden, num_layers=2, position_dim=8, num_species=4, rng=rng)
    task = MultiClassClassificationTask(
        enc, num_classes=4, hidden_dim=hidden, num_blocks=2, rng=rng
    )
    return task, samples


def _gradient_geometry(task) -> Tuple[int, int]:
    params = list(task.parameters())
    return sum(p.data.nbytes for p in params), len(params)


# --------------------------------------------------------------------------- #
# Measured: collective launches and bytes on the simulated wire
# --------------------------------------------------------------------------- #
def bench_traffic(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """Per-parameter vs bucketed traffic for one identical DDP step."""
    task, samples = _setup(tiny)

    def run(strategy) -> Dict[str, float]:
        task.zero_grad()
        strategy.comm.traffic.reset()
        strategy.execute(task, samples)
        t = strategy.comm.traffic
        return {
            "calls": float(t.collective_calls),
            "bytes": float(t.useful_bytes),
        }

    dense = run(DDPStrategy(WORLD, track_per_rank=True))
    bucketed_strategy = DDPStrategy(WORLD, bucket_bytes=4 << 20)
    bucketed = run(bucketed_strategy)
    bf16 = run(DDPStrategy(WORLD, bucket_bytes=4 << 20, compress="bf16"))
    num_buckets = bucketed_strategy._get_bucketer(list(task.parameters())).num_buckets

    ratio = dense["calls"] / bucketed["calls"]
    return [
        bench_result(
            "sharding.messages_ratio", "speedup", ratio, "x",
            dense_calls=dense["calls"], bucketed_calls=bucketed["calls"],
            num_buckets=num_buckets,
        ),
        bench_result(
            "sharding.bytes_on_wire.dense", "metric", dense["bytes"], "B"
        ),
        bench_result(
            "sharding.bytes_on_wire.bucketed", "metric", bucketed["bytes"], "B"
        ),
        bench_result(
            "sharding.bytes_on_wire.bf16", "metric", bf16["bytes"], "B"
        ),
        bench_result(
            "sharding.bf16_wire_ratio", "metric",
            bf16["bytes"] / bucketed["bytes"], "x",
        ),
    ]


# --------------------------------------------------------------------------- #
# Measured: wall time of the bucketed step + optimizer-state footprint
# --------------------------------------------------------------------------- #
def bench_step_time(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """Wall time of one bucketed ZeRO step (collate through allgather)."""
    task, samples = _setup(tiny)
    strategy = DDPStrategy(WORLD, bucket_bytes=4 << 20, shard_optimizer=True)
    opt = ShardedAdamW(
        task.parameters(), lr=1e-3, comm=strategy.comm, bucket_bytes=4 << 20
    )

    def step():
        opt.zero_grad()
        strategy.execute(task, samples)
        opt.step()

    t = time_callable(step, rounds=rounds, warmup=warmup)
    sharded_state = opt.state_bytes(rank=0)
    dense_state = opt.state_bytes(rank=None)
    return [
        bench_result("sharding.zero_step.time", "time", t, "s"),
        bench_result(
            "sharding.state_bytes_ratio", "speedup",
            dense_state / max(sharded_state, 1), "x",
            dense_state_bytes=dense_state, shard_state_bytes=sharded_state,
        ),
    ]


# --------------------------------------------------------------------------- #
# Modeled: projected step time on the paper's cluster
# --------------------------------------------------------------------------- #
def bench_modeled(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """Overlap-model speedup of the bucketed step vs per-tensor allreduce.

    The payload geometry (gradient bytes, tensor count) comes from the
    measured task, scaled to the paper's model size so the ring term is
    not latency-degenerate; the worst world size in the sweep is gated.
    """
    task, _ = _setup(tiny)
    gradient_bytes, num_tensors = _gradient_geometry(task)
    scale = max(1, (8 << 20) // max(gradient_bytes, 1))  # paper-scale payload
    base = ThroughputModel(
        per_worker_samples_per_s=200.0,
        batch_per_worker=2,
        gradient_bytes=gradient_bytes * scale,
    )
    spec = ShardingSpec(
        bucket_bytes=4 << 20, num_tensors=num_tensors, element_bytes=8
    )
    model = BucketedThroughputModel(base, spec)
    speedups = {str(n): model.modeled_speedup(n) for n in MODEL_WORLDS}
    worst = min(speedups.values())
    return [
        bench_result(
            "sharding.modeled_step_speedup", "speedup", worst, "x",
            per_world=speedups, num_buckets=model.num_buckets,
            gradient_bytes=gradient_bytes * scale, num_tensors=num_tensors,
        ),
        bench_result(
            "sharding.modeled_messages_ratio", "speedup",
            model.dense_messages_per_step() / model.messages_per_step(), "x",
        ),
    ]


# --------------------------------------------------------------------------- #
# bf16 round-trip error against the analytic bound
# --------------------------------------------------------------------------- #
def bench_bf16_error(rounds: int, warmup: int, tiny: bool = False) -> List[Dict]:
    """Measured worst-case relative round-trip error of the bf16 wire."""
    rng = np.random.default_rng(31)
    n = 1 << 12 if tiny else 1 << 16
    worst = 0.0
    for scale in (1e-6, 1.0, 1e6):
        x = rng.normal(scale=scale, size=n)
        worst = max(worst, bf16_roundtrip_error(x))
    return [
        bench_result(
            "sharding.bf16_roundtrip_error", "metric", worst, "rel",
            bound=BF16_RELATIVE_ERROR_BOUND,
        )
    ]


# --------------------------------------------------------------------------- #
def collect_results(
    rounds: int = 5, warmup: int = 1, tiny: bool = False
) -> List[Dict]:
    """Run the full sharding suite; returns schema entries for the gate."""
    results: List[Dict] = []
    results += bench_traffic(rounds, warmup, tiny)
    results += bench_step_time(rounds, warmup, tiny)
    results += bench_modeled(rounds, warmup, tiny)
    results += bench_bf16_error(rounds, warmup, tiny)
    return results


def print_results(results: List[Dict]) -> None:
    """Human-readable table of the collected measurements."""
    print_header("ZeRO sharding benchmarks (bucketed comm vs dense)")
    print(f"{'name':<36} {'kind':<8} {'value':>14}")
    for r in results:
        if r["kind"] == "time":
            value = f"{r['value'] * 1e3:.2f} ms"
        elif r["kind"] == "speedup":
            value = f"{r['value']:.3f}x"
        else:
            value = f"{r['value']:.6g} {r['unit']}"
        print(f"{r['name']:<36} {r['kind']:<8} {value:>14}")


class TestSharding:
    """pytest-benchmark entry point (one pedantic round, like the figures)."""

    def test_sharding_wins(self, benchmark):
        results = benchmark.pedantic(
            lambda: collect_results(rounds=2, warmup=1, tiny=True),
            rounds=1, iterations=1,
        )
        print_results(results)
        by_name = {r["name"]: r for r in results}
        # Acceptance: >= 4x fewer collective launches than per-parameter
        # allreduce, and a modeled step-time win at every world size >= 8.
        assert by_name["sharding.messages_ratio"]["value"] >= 4.0
        assert by_name["sharding.modeled_step_speedup"]["value"] > 1.0
        # Bucketing must not move more useful bytes than the dense path.
        assert (
            by_name["sharding.bytes_on_wire.bucketed"]["value"]
            <= by_name["sharding.bytes_on_wire.dense"]["value"] * 1.01
        )
        # bf16 wire carries 2 of every 8 payload bytes.
        assert abs(by_name["sharding.bf16_wire_ratio"]["value"] - 0.25) < 1e-9
        # Measured compression error respects the analytic bound.
        err = by_name["sharding.bf16_roundtrip_error"]
        assert err["value"] <= err["bound"]
        # ZeRO shards Adam state across all ranks.
        assert by_name["sharding.state_bytes_ratio"]["value"] >= WORLD * 0.9


if __name__ == "__main__":
    print_results(collect_results())
