"""Shared machinery for the paper-reproduction benches.

Every bench runs once (``benchmark.pedantic(..., rounds=1)``), prints the
table/series the paper reports with paper-expected values alongside, and
asserts the qualitative *shape* (who wins, rough factors, crossovers).
Expensive artefacts — the pretrained encoder, the Table-1 training runs —
are cached at module level so the Fig. 7 bench reuses the Table-1 runs
within one pytest session.
"""

from __future__ import annotations

import functools
import json
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core import (
    EncoderConfig,
    FinetuneConfig,
    MultiTaskConfig,
    OptimizerConfig,
    cached_pretrained_encoder,
    train_band_gap,
    train_multitask,
    transfer_pretrain_recipe,
)

#: Encoder geometry used by every downstream bench (CPU-scale stand-in for
#: the paper's 256-wide model).
BENCH_ENCODER = dict(hidden_dim=32, num_layers=3, position_dim=12)


def encoder_config() -> EncoderConfig:
    return EncoderConfig(**BENCH_ENCODER)


@functools.lru_cache(maxsize=1)
def pretrained_state_cached() -> Tuple:
    """The shared pretrained encoder (disk-cached across sessions)."""
    state = cached_pretrained_encoder(transfer_pretrain_recipe())
    # lru_cache needs a hashable return; wrap the dict.
    return (state,)


def pretrained_state() -> Dict[str, np.ndarray]:
    return pretrained_state_cached()[0]


# --------------------------------------------------------------------------- #
# Fig. 5 configuration (single-task band gap)
# --------------------------------------------------------------------------- #
FIG5_SEEDS = (5, 11, 21)


def fig5_config(seed: int) -> FinetuneConfig:
    # Short warmup: the scratch arm reaches its (DDP-scaled) full rate
    # almost immediately and pays for it with early turbulence, while the
    # pretrained arm's organized features let its head convert the same
    # rate into an immediate error drop — the paper's early-phase contrast.
    return FinetuneConfig(
        encoder=encoder_config(),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=2, gamma=0.9),
        train_samples=192,
        val_samples=48,
        batch_size=16,
        max_epochs=30,
        world_size=16,
        head_hidden_dim=32,
        head_blocks=2,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Table 1 / Fig. 7 configuration (multi-task multi-dataset)
# --------------------------------------------------------------------------- #
def table1_config() -> MultiTaskConfig:
    return MultiTaskConfig(
        encoder=encoder_config(),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=8, gamma=0.8),
        mp_samples=160,
        carolina_samples=80,
        batch_size=16,
        max_epochs=20,
        world_size=16,
        head_hidden_dim=32,
        head_blocks=3,
        seed=13,
    )


@functools.lru_cache(maxsize=1)
def table1_runs() -> Tuple:
    """(pretrained_result, scratch_result), shared by Table 1 and Fig. 7."""
    cfg = table1_config()
    scratch = train_multitask(cfg)
    pretrained = train_multitask(cfg, pretrained_state=pretrained_state())
    return (pretrained, scratch)


#: Paper Table 1 values: metric -> (pretrained, from_scratch).
PAPER_TABLE1 = {
    "band_gap_mae": (1.27, 4.80),
    "fermi_mae": (0.76, 3.86),
    "mp_eform_mae": (0.83, 3.54),
    "stability_bce": (0.42, 0.40),
    "cmd_eform_mae": (0.14, 0.10),
}


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


# --------------------------------------------------------------------------- #
# Timing + the shared BENCH_*.json schema
# --------------------------------------------------------------------------- #
#: Schema tag every bench JSON carries; the regression gate refuses files
#: with a different tag rather than mis-reading them.
BENCH_SCHEMA = "repro-bench-v1"


def time_callable(
    fn: Callable[[], object],
    rounds: int = 5,
    warmup: int = 1,
    reduce: str = "median",
) -> float:
    """Wall time of ``fn()`` in seconds: warmup discarded, median-of-k.

    ``time.perf_counter`` throughout; ``reduce`` may be ``"median"`` (the
    default — robust to one slow outlier round) or ``"min"`` (tightest
    bound, for overhead comparisons where any jitter only inflates).
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    for _ in range(max(warmup, 0)):
        fn()
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    if reduce == "min":
        return min(times)
    if reduce != "median":
        raise ValueError(f"unknown reduce {reduce!r}")
    times.sort()
    mid = len(times) // 2
    if len(times) % 2:
        return times[mid]
    return 0.5 * (times[mid - 1] + times[mid])


def compare_callables(
    fn_a: Callable[[], object],
    fn_b: Callable[[], object],
    rounds: int = 5,
    warmup: int = 1,
) -> Tuple[float, float]:
    """Median times of two callables measured in *interleaved* rounds.

    Timing each arm in its own block lets machine-load drift between the
    blocks masquerade as a speedup (or mask one); alternating a/b within
    every round exposes both arms to the same drift.
    """
    for _ in range(max(warmup, 0)):
        fn_a()
        fn_b()
    times_a, times_b = [], []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn_a()
        times_a.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        times_b.append(time.perf_counter() - t0)

    def median(ts):
        ts = sorted(ts)
        mid = len(ts) // 2
        return ts[mid] if len(ts) % 2 else 0.5 * (ts[mid - 1] + ts[mid])

    return median(times_a), median(times_b)


def bench_result(name: str, kind: str, value: float, unit: str, **extra) -> Dict:
    """One schema entry: ``kind`` is ``time`` | ``speedup`` | ``metric``."""
    if kind not in ("time", "speedup", "metric"):
        raise ValueError(f"unknown result kind {kind!r}")
    entry = {"name": name, "kind": kind, "value": float(value), "unit": unit}
    entry.update(extra)
    return entry


def write_bench_json(
    path: str, results: Sequence[Dict], meta: Optional[Dict] = None
) -> Dict:
    """Write results under the shared schema; returns the payload."""
    payload = {"schema": BENCH_SCHEMA, "meta": dict(meta or {}), "results": list(results)}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def load_bench_json(path: str) -> Dict:
    """Load and schema-check a bench JSON file."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: schema {payload.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
    if not isinstance(payload.get("results"), list):
        raise ValueError(f"{path}: missing results list")
    return payload
