"""Shared machinery for the paper-reproduction benches.

Every bench runs once (``benchmark.pedantic(..., rounds=1)``), prints the
table/series the paper reports with paper-expected values alongside, and
asserts the qualitative *shape* (who wins, rough factors, crossovers).
Expensive artefacts — the pretrained encoder, the Table-1 training runs —
are cached at module level so the Fig. 7 bench reuses the Table-1 runs
within one pytest session.
"""

from __future__ import annotations

import functools
from typing import Dict, Tuple

import numpy as np

from repro.core import (
    EncoderConfig,
    FinetuneConfig,
    MultiTaskConfig,
    OptimizerConfig,
    cached_pretrained_encoder,
    train_band_gap,
    train_multitask,
    transfer_pretrain_recipe,
)

#: Encoder geometry used by every downstream bench (CPU-scale stand-in for
#: the paper's 256-wide model).
BENCH_ENCODER = dict(hidden_dim=32, num_layers=3, position_dim=12)


def encoder_config() -> EncoderConfig:
    return EncoderConfig(**BENCH_ENCODER)


@functools.lru_cache(maxsize=1)
def pretrained_state_cached() -> Tuple:
    """The shared pretrained encoder (disk-cached across sessions)."""
    state = cached_pretrained_encoder(transfer_pretrain_recipe())
    # lru_cache needs a hashable return; wrap the dict.
    return (state,)


def pretrained_state() -> Dict[str, np.ndarray]:
    return pretrained_state_cached()[0]


# --------------------------------------------------------------------------- #
# Fig. 5 configuration (single-task band gap)
# --------------------------------------------------------------------------- #
FIG5_SEEDS = (5, 11, 21)


def fig5_config(seed: int) -> FinetuneConfig:
    # Short warmup: the scratch arm reaches its (DDP-scaled) full rate
    # almost immediately and pays for it with early turbulence, while the
    # pretrained arm's organized features let its head convert the same
    # rate into an immediate error drop — the paper's early-phase contrast.
    return FinetuneConfig(
        encoder=encoder_config(),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=2, gamma=0.9),
        train_samples=192,
        val_samples=48,
        batch_size=16,
        max_epochs=30,
        world_size=16,
        head_hidden_dim=32,
        head_blocks=2,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Table 1 / Fig. 7 configuration (multi-task multi-dataset)
# --------------------------------------------------------------------------- #
def table1_config() -> MultiTaskConfig:
    return MultiTaskConfig(
        encoder=encoder_config(),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=8, gamma=0.8),
        mp_samples=160,
        carolina_samples=80,
        batch_size=16,
        max_epochs=20,
        world_size=16,
        head_hidden_dim=32,
        head_blocks=3,
        seed=13,
    )


@functools.lru_cache(maxsize=1)
def table1_runs() -> Tuple:
    """(pretrained_result, scratch_result), shared by Table 1 and Fig. 7."""
    cfg = table1_config()
    scratch = train_multitask(cfg)
    pretrained = train_multitask(cfg, pretrained_state=pretrained_state())
    return (pretrained, scratch)


#: Paper Table 1 values: metric -> (pretrained, from_scratch).
PAPER_TABLE1 = {
    "band_gap_mae": (1.27, 4.80),
    "fermi_mae": (0.76, 3.86),
    "mp_eform_mae": (0.83, 3.54),
    "stability_bce": (0.42, 0.40),
    "cmd_eform_mae": (0.14, 0.10),
}


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
