"""Dataset abstractions.

``Dataset`` is the minimal map-style interface; ``InMemoryDataset`` wraps a
materialized list; ``ConcatDataset`` fuses datasets for the multi-dataset
experiments while remembering which source each index came from; ``Subset``
implements index views for splits.
"""

from __future__ import annotations

import bisect
from typing import Generic, Iterator, List, Sequence, TypeVar

T = TypeVar("T")


class Dataset(Generic[T]):
    """Map-style dataset: implement ``__len__`` and ``__getitem__``."""

    #: Human-readable dataset name; surrogate datasets override this and the
    #: UMAP exploration keys clusters by it.
    name: str = "dataset"

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> T:
        raise NotImplementedError

    def __iter__(self) -> Iterator[T]:
        for i in range(len(self)):
            yield self[i]

    def materialize(self) -> "InMemoryDataset[T]":
        """Eagerly evaluate all samples (generated datasets are lazy)."""
        data = InMemoryDataset([self[i] for i in range(len(self))])
        data.name = self.name
        return data


class InMemoryDataset(Dataset[T]):
    """A dataset backed by a plain list."""

    def __init__(self, items: Sequence[T], name: str = "in_memory"):
        self._items = list(items)
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> T:
        return self._items[index]

    def append(self, item: T) -> None:
        self._items.append(item)


class Subset(Dataset[T]):
    """A view of a dataset through an index list (train/val splits)."""

    def __init__(self, dataset: Dataset[T], indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(indices)
        self.name = dataset.name

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> T:
        return self.dataset[self.indices[index]]


class ConcatDataset(Dataset[T]):
    """Concatenation of several datasets, tracking sample provenance.

    ``source_of(index)`` returns (dataset_index, dataset_name); the
    multi-dataset task uses it to route samples to the right output heads.
    """

    def __init__(self, datasets: Sequence[Dataset[T]]):
        if not datasets:
            raise ValueError("ConcatDataset needs at least one dataset")
        self.datasets = list(datasets)
        self._cumulative: List[int] = []
        total = 0
        for d in self.datasets:
            total += len(d)
            self._cumulative.append(total)
        self.name = "+".join(d.name for d in self.datasets)

    def __len__(self) -> int:
        return self._cumulative[-1]

    def _locate(self, index: int) -> tuple:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        ds_idx = bisect.bisect_right(self._cumulative, index)
        prev = self._cumulative[ds_idx - 1] if ds_idx > 0 else 0
        return ds_idx, index - prev

    def __getitem__(self, index: int) -> T:
        ds_idx, local = self._locate(index)
        return self.datasets[ds_idx][local]

    def source_of(self, index: int) -> tuple:
        ds_idx, _ = self._locate(index)
        return ds_idx, self.datasets[ds_idx].name
