"""Data pipeline: structures, datasets, loaders, batching, transforms.

Mirrors the paper's Fig. 1 data path: a *dataset* yields
:class:`repro.data.structures.Structure` samples; a chain of *transforms*
converts them between representations (point cloud <-> graph) and injects
inductive biases; a *collator* batches them for the encoder.
"""

from repro.data.structures import Structure, GraphSample, PointCloudSample, GraphBatch
from repro.data.dataset import Dataset, InMemoryDataset, ConcatDataset, Subset
from repro.data.splits import train_val_split, train_val_test_split
from repro.data.batching import CollateBuffers, collate_graphs, collate_point_clouds
from repro.data.loaders import DataLoader, DistributedSampler, SequentialSampler, RandomSampler
from repro.data.cache import (
    LRUByteCache,
    array_fingerprint,
    clear_default_caches,
    default_cache_stats,
    get_feature_cache,
    get_neighbor_cache,
    publish_cache_metrics,
)

__all__ = [
    "LRUByteCache",
    "CollateBuffers",
    "array_fingerprint",
    "clear_default_caches",
    "default_cache_stats",
    "get_feature_cache",
    "get_neighbor_cache",
    "publish_cache_metrics",
    "Structure",
    "GraphSample",
    "PointCloudSample",
    "GraphBatch",
    "Dataset",
    "InMemoryDataset",
    "ConcatDataset",
    "Subset",
    "train_val_split",
    "train_val_test_split",
    "collate_graphs",
    "collate_point_clouds",
    "DataLoader",
    "DistributedSampler",
    "SequentialSampler",
    "RandomSampler",
]
