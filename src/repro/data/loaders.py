"""Samplers and the DataLoader.

``DistributedSampler`` reproduces the DDP sharding rule from the paper's
Sec. 4.2: the dataset is divided across N ranks, each receiving the same
number of samples per batch, so the effective batch is ``B_eff = N * B``.
"""

from __future__ import annotations

import inspect
import math
from typing import Callable, Iterator, List, Optional

import numpy as np

from repro.data.batching import CollateBuffers, collate_graphs
from repro.data.dataset import Dataset


class SequentialSampler:
    """Yields indices 0..n-1 in order (validation)."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self.dataset)))

    def __len__(self) -> int:
        return len(self.dataset)


class RandomSampler:
    """Reshuffles every epoch using its own generator."""

    def __init__(self, dataset: Dataset, rng: np.random.Generator):
        self.dataset = dataset
        self.rng = rng

    def __iter__(self) -> Iterator[int]:
        return iter(self.rng.permutation(len(self.dataset)).tolist())

    def __len__(self) -> int:
        return len(self.dataset)


class DistributedSampler:
    """Rank-sharded sampler: rank r sees indices r, r+N, r+2N, ... of a
    deterministic per-epoch permutation shared by all ranks.

    All ranks must call :meth:`set_epoch` with the same value so their
    permutations agree — the same contract as
    ``torch.utils.data.DistributedSampler``.
    """

    def __init__(
        self,
        dataset: Dataset,
        world_size: int,
        rank: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = True,
    ):
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        self.dataset = dataset
        self.world_size = world_size
        self.rank = rank
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    def _global_order(self) -> np.ndarray:
        n = len(self.dataset)
        if self.shuffle:
            rng = np.random.default_rng((self.seed, self.epoch))
            order = rng.permutation(n)
        else:
            order = np.arange(n)
        if self.drop_last:
            usable = (n // self.world_size) * self.world_size
            order = order[:usable]
        else:
            # Pad by wrapping so each rank gets the same count.
            target = math.ceil(n / self.world_size) * self.world_size
            pad = target - n
            order = np.concatenate([order, order[:pad]])
        return order

    def __iter__(self) -> Iterator[int]:
        order = self._global_order()
        return iter(order[self.rank :: self.world_size].tolist())

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.world_size
        return math.ceil(n / self.world_size)


class DataLoader:
    """Batches dataset samples through a collate function.

    Single-process (the reproduction environment has one core), but the
    interface matches the multi-worker loaders the toolkit uses: sampler
    injection, drop_last, custom collate.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        sampler=None,
        shuffle: bool = False,
        rng: Optional[np.random.Generator] = None,
        collate_fn: Callable = collate_graphs,
        drop_last: bool = False,
        transform: Optional[Callable] = None,
        reuse_buffers: bool = False,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if sampler is not None and shuffle:
            raise ValueError("provide either sampler or shuffle, not both")
        self.dataset = dataset
        self.batch_size = batch_size
        if sampler is None:
            if shuffle:
                sampler = RandomSampler(dataset, rng or np.random.default_rng())
            else:
                sampler = SequentialSampler(dataset)
        self.sampler = sampler
        self.collate_fn = collate_fn
        self.drop_last = drop_last
        self.transform = transform
        # reuse_buffers: collate into persistent preallocated arrays instead
        # of fresh allocations.  Batches alias the buffers, so each must be
        # fully consumed before the next — true for all the training loops.
        self.buffers: Optional[CollateBuffers] = None
        if reuse_buffers:
            if not self._collate_accepts_buffers(collate_fn):
                raise ValueError(
                    "reuse_buffers=True requires a collate_fn accepting a "
                    f"'buffers' keyword; {collate_fn!r} does not"
                )
            self.buffers = CollateBuffers()

    @staticmethod
    def _collate_accepts_buffers(collate_fn: Callable) -> bool:
        try:
            return "buffers" in inspect.signature(collate_fn).parameters
        except (TypeError, ValueError):
            return False

    def _collate(self, batch: List):
        if self.buffers is not None:
            return self.collate_fn(batch, buffers=self.buffers)
        return self.collate_fn(batch)

    def __iter__(self):
        batch: List = []
        for idx in self.sampler:
            sample = self.dataset[idx]
            if self.transform is not None:
                sample = self.transform(sample)
            batch.append(sample)
            if len(batch) == self.batch_size:
                yield self._collate(batch)
                batch = []
        if batch and not self.drop_last:
            yield self._collate(batch)

    def __len__(self) -> int:
        n = len(self.sampler)
        if self.drop_last:
            return n // self.batch_size
        return math.ceil(n / self.batch_size)
