"""Collation: disjoint-union graph batching and point-cloud batching.

Graph batching follows the standard GNN recipe: node arrays are
concatenated, edge indices offset by each graph's node base, and a
``node_graph`` segment-id vector records graph membership for pooling.
Point clouds are batched the same way minus edges (the encoder imposes its
own structure, or none).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.structures import GraphBatch, GraphSample, PointCloudSample


class CollateBuffers:
    """Preallocated, growable arrays reused across collate calls.

    ``collate_graphs`` spends most of its time allocating fresh
    concatenation outputs every batch; with a ``CollateBuffers`` handle it
    fills persistent arrays in place instead.  Buffers grow with ~1.5x
    slack on demand, so steady-state epochs allocate nothing.

    Aliasing contract: arrays returned by a buffered collate are views
    into the shared buffers and are overwritten by the NEXT collate call —
    each batch must be fully consumed before the next one is drawn, which
    is exactly how the training loops iterate.
    """

    def __init__(self):
        self._arrays: Dict[str, np.ndarray] = {}
        self.reallocs = 0

    def take(self, key: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A writable array of exactly ``shape``/``dtype`` under ``key``."""
        dtype = np.dtype(dtype)
        n = int(np.prod(shape)) if shape else 1
        arr = self._arrays.get(key)
        if arr is None or arr.dtype != dtype or arr.size < n:
            capacity = max(int(n * 1.5), n, 8)
            arr = np.empty(capacity, dtype=dtype)
            self._arrays[key] = arr
            self.reallocs += 1
        return arr[:n].reshape(shape)


def _concat_rows(
    arrays: Sequence[np.ndarray],
    buffers: Optional[CollateBuffers],
    key: str,
) -> np.ndarray:
    """Row-concatenate, into a reused buffer when one is supplied."""
    if buffers is None:
        return np.concatenate(arrays, axis=0)
    total = sum(a.shape[0] for a in arrays)
    out = buffers.take(key, (total,) + tuple(arrays[0].shape[1:]), arrays[0].dtype)
    np.concatenate(arrays, axis=0, out=out)
    return out


def _stack_targets(samples: Sequence) -> Dict[str, np.ndarray]:
    """Stack per-sample targets; missing keys are filled with NaN.

    NaN-filling is what lets a multi-dataset batch carry heterogeneous
    labels: the multi-task module masks each head's loss on NaN targets.
    """
    keys: List[str] = []
    for s in samples:
        for k in s.targets:
            if k not in keys:
                keys.append(k)
    out: Dict[str, np.ndarray] = {}
    for key in keys:
        rows = []
        for s in samples:
            value = s.targets.get(key)
            if value is None:
                rows.append(np.nan)
            else:
                rows.append(np.asarray(value, dtype=np.float64))
        # Scalars stack into (batch,), arrays (e.g. forces) into object rows
        # only if ragged — force targets are per-atom so we concatenate.
        shapes = {np.shape(r) for r in rows if not np.isscalar(r) or not np.isnan(r)}
        try:
            out[key] = np.array(rows, dtype=np.float64)
        except ValueError:
            out[key] = np.concatenate([np.atleast_1d(r) for r in rows])
    return out


def _offset_edges(
    samples: Sequence[GraphSample],
    node_offsets: np.ndarray,
    buffers: Optional[CollateBuffers],
    key: str,
    attr: str,
) -> np.ndarray:
    """Concatenate edge indices shifted by each graph's node base."""
    if buffers is None:
        return np.concatenate(
            [getattr(s, attr) + off for s, off in zip(samples, node_offsets)]
        ).astype(np.int64)
    total = sum(s.num_edges for s in samples)
    out = buffers.take(key, (total,), np.int64)
    np.concatenate([getattr(s, attr) for s in samples], out=out)
    counts = [s.num_edges for s in samples]
    out += np.repeat(np.asarray(node_offsets, dtype=np.int64), counts)
    return out


def collate_graphs(
    samples: Sequence[GraphSample], buffers: Optional[CollateBuffers] = None
) -> GraphBatch:
    """Merge graph samples into one disjoint-union batch.

    With ``buffers`` the concatenated arrays are filled into reused
    preallocated storage (see :class:`CollateBuffers` for the aliasing
    contract); values are identical either way.
    """
    if not samples:
        raise ValueError("cannot collate an empty batch")
    positions = _concat_rows([s.positions for s in samples], buffers, "positions")
    species = _concat_rows([s.species for s in samples], buffers, "species")
    node_offsets = np.cumsum([0] + [s.num_nodes for s in samples][:-1])
    edge_src = _offset_edges(samples, node_offsets, buffers, "edge_src", "edge_src")
    edge_dst = _offset_edges(samples, node_offsets, buffers, "edge_dst", "edge_dst")
    if buffers is None:
        node_graph = np.concatenate(
            [np.full(s.num_nodes, i, dtype=np.int64) for i, s in enumerate(samples)]
        )
    else:
        node_graph = buffers.take("node_graph", (len(species),), np.int64)
        node_graph[:] = np.repeat(
            np.arange(len(samples), dtype=np.int64),
            [s.num_nodes for s in samples],
        )
    edge_attr = None
    if all(s.edge_attr is not None for s in samples):
        edge_attr = _concat_rows([s.edge_attr for s in samples], buffers, "edge_attr")
    global_attr = None
    if all(s.global_attr is not None for s in samples):
        global_attr = _concat_rows(
            [np.atleast_1d(s.global_attr)[None, :] for s in samples],
            buffers,
            "global_attr",
        )
    metadata = {"num_nodes_per_graph": np.array([s.num_nodes for s in samples])}
    # Preserve sample provenance when present (multi-dataset batches).
    if all("dataset" in s.metadata for s in samples):
        metadata["dataset"] = np.array([s.metadata["dataset"] for s in samples])
    return GraphBatch(
        positions=positions,
        species=species,
        edge_src=edge_src,
        edge_dst=edge_dst,
        node_graph=node_graph,
        num_graphs=len(samples),
        edge_attr=edge_attr,
        global_attr=global_attr,
        targets=_stack_targets(samples),
        metadata=metadata,
    )


def collate_point_clouds(samples: Sequence[PointCloudSample]) -> GraphBatch:
    """Batch point clouds as edgeless graphs.

    Encoders that need connectivity (E(n)-GNN) apply a radius-graph
    transform first; attention encoders (GAANet) consume the node sets
    directly via ``node_graph``.
    """
    if not samples:
        raise ValueError("cannot collate an empty batch")
    positions = np.concatenate([s.positions for s in samples], axis=0)
    species = np.concatenate([s.species for s in samples], axis=0)
    node_graph = np.concatenate(
        [np.full(s.num_points, i, dtype=np.int64) for i, s in enumerate(samples)]
    )
    metadata = {"num_nodes_per_graph": np.array([s.num_points for s in samples])}
    if all("dataset" in s.metadata for s in samples):
        metadata["dataset"] = np.array([s.metadata["dataset"] for s in samples])
    return GraphBatch(
        positions=positions,
        species=species,
        edge_src=np.zeros(0, dtype=np.int64),
        edge_dst=np.zeros(0, dtype=np.int64),
        node_graph=node_graph,
        num_graphs=len(samples),
        targets=_stack_targets(samples),
        metadata=metadata,
    )
