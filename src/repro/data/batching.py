"""Collation: disjoint-union graph batching and point-cloud batching.

Graph batching follows the standard GNN recipe: node arrays are
concatenated, edge indices offset by each graph's node base, and a
``node_graph`` segment-id vector records graph membership for pooling.
Point clouds are batched the same way minus edges (the encoder imposes its
own structure, or none).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.data.structures import GraphBatch, GraphSample, PointCloudSample


def _stack_targets(samples: Sequence) -> Dict[str, np.ndarray]:
    """Stack per-sample targets; missing keys are filled with NaN.

    NaN-filling is what lets a multi-dataset batch carry heterogeneous
    labels: the multi-task module masks each head's loss on NaN targets.
    """
    keys: List[str] = []
    for s in samples:
        for k in s.targets:
            if k not in keys:
                keys.append(k)
    out: Dict[str, np.ndarray] = {}
    for key in keys:
        rows = []
        for s in samples:
            value = s.targets.get(key)
            if value is None:
                rows.append(np.nan)
            else:
                rows.append(np.asarray(value, dtype=np.float64))
        # Scalars stack into (batch,), arrays (e.g. forces) into object rows
        # only if ragged — force targets are per-atom so we concatenate.
        shapes = {np.shape(r) for r in rows if not np.isscalar(r) or not np.isnan(r)}
        try:
            out[key] = np.array(rows, dtype=np.float64)
        except ValueError:
            out[key] = np.concatenate([np.atleast_1d(r) for r in rows])
    return out


def collate_graphs(samples: Sequence[GraphSample]) -> GraphBatch:
    """Merge graph samples into one disjoint-union batch."""
    if not samples:
        raise ValueError("cannot collate an empty batch")
    positions = np.concatenate([s.positions for s in samples], axis=0)
    species = np.concatenate([s.species for s in samples], axis=0)
    node_offsets = np.cumsum([0] + [s.num_nodes for s in samples][:-1])
    edge_src = np.concatenate(
        [s.edge_src + off for s, off in zip(samples, node_offsets)]
    ).astype(np.int64)
    edge_dst = np.concatenate(
        [s.edge_dst + off for s, off in zip(samples, node_offsets)]
    ).astype(np.int64)
    node_graph = np.concatenate(
        [np.full(s.num_nodes, i, dtype=np.int64) for i, s in enumerate(samples)]
    )
    edge_attr = None
    if all(s.edge_attr is not None for s in samples):
        edge_attr = np.concatenate([s.edge_attr for s in samples], axis=0)
    metadata = {"num_nodes_per_graph": np.array([s.num_nodes for s in samples])}
    # Preserve sample provenance when present (multi-dataset batches).
    if all("dataset" in s.metadata for s in samples):
        metadata["dataset"] = np.array([s.metadata["dataset"] for s in samples])
    return GraphBatch(
        positions=positions,
        species=species,
        edge_src=edge_src,
        edge_dst=edge_dst,
        node_graph=node_graph,
        num_graphs=len(samples),
        edge_attr=edge_attr,
        targets=_stack_targets(samples),
        metadata=metadata,
    )


def collate_point_clouds(samples: Sequence[PointCloudSample]) -> GraphBatch:
    """Batch point clouds as edgeless graphs.

    Encoders that need connectivity (E(n)-GNN) apply a radius-graph
    transform first; attention encoders (GAANet) consume the node sets
    directly via ``node_graph``.
    """
    if not samples:
        raise ValueError("cannot collate an empty batch")
    positions = np.concatenate([s.positions for s in samples], axis=0)
    species = np.concatenate([s.species for s in samples], axis=0)
    node_graph = np.concatenate(
        [np.full(s.num_points, i, dtype=np.int64) for i, s in enumerate(samples)]
    )
    metadata = {"num_nodes_per_graph": np.array([s.num_points for s in samples])}
    if all("dataset" in s.metadata for s in samples):
        metadata["dataset"] = np.array([s.metadata["dataset"] for s in samples])
    return GraphBatch(
        positions=positions,
        species=species,
        edge_src=np.zeros(0, dtype=np.int64),
        edge_dst=np.zeros(0, dtype=np.int64),
        node_graph=node_graph,
        num_graphs=len(samples),
        targets=_stack_targets(samples),
        metadata=metadata,
    )
