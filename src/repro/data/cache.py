"""Memoization for the data pipeline: an LRU byte-budget cache.

Graph construction (cKDTree radius/k-NN search) and featurization (RBF
expansion) are recomputed for every epoch over an immutable dataset — the
single largest source of redundant work in the training loop.  The caches
here memoize those results keyed by *(transform fingerprint, content hash
of the input arrays)*:

* the **transform fingerprint** covers every parameter that changes the
  output (cutoff, k, centering, basis count...), so reconfiguring a
  transform can never serve stale entries;
* the **content hash** covers dtype, shape, and raw bytes of the input
  arrays, so two structures with equal geometry share one entry and any
  mutation produces a different key.

Budgeting is by payload bytes with least-recently-used eviction.  Cached
arrays are returned with ``writeable=False`` — consumers that need to
mutate must copy, which keeps a poisoned-cache class of bug impossible.

Stats (hits / misses / evictions / bytes) are exported through the
observability metrics registry via :func:`publish_cache_metrics`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

#: Default byte budgets for the process-wide caches.
DEFAULT_NEIGHBOR_BUDGET = 64 * 1024 * 1024
DEFAULT_FEATURE_BUDGET = 64 * 1024 * 1024


def array_fingerprint(*arrays: np.ndarray) -> str:
    """Content hash of one or more arrays (dtype + shape + bytes)."""
    digest = hashlib.sha1()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _payload_bytes(value) -> int:
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_payload_bytes(v) for v in value)
    return 64  # conservative floor for scalars / small objects


def _freeze(value):
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
        return value
    if isinstance(value, tuple):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, list):
        return [_freeze(v) for v in value]
    return value


class LRUByteCache:
    """Least-recently-used cache bounded by total payload bytes.

    Values are numpy arrays or (nested) tuples of arrays; they are frozen
    (``writeable=False``) on insertion.  Thread-safe, since loaders and
    rank-sharded strategies may share the process-wide instances.
    """

    def __init__(self, max_bytes: int = DEFAULT_NEIGHBOR_BUDGET, name: str = "cache"):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.name = name
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._sizes: Dict[Tuple, int] = {}
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """Return the cached value or None, updating recency and stats."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key, value):
        """Insert (or refresh) a value, evicting LRU entries over budget.

        Returns the frozen value so callers can hand it straight out.
        """
        value = _freeze(value)
        size = _payload_bytes(value)
        with self._lock:
            if key in self._entries:
                self.current_bytes -= self._sizes[key]
                del self._entries[key]
                del self._sizes[key]
            if size > self.max_bytes:
                # Larger than the whole budget: never cached.
                return value
            while self.current_bytes + size > self.max_bytes and self._entries:
                old_key, _ = self._entries.popitem(last=False)
                self.current_bytes -= self._sizes.pop(old_key)
                self.evictions += 1
            self._entries[key] = value
            self._sizes[key] = size
            self.current_bytes += size
            self.insertions += 1
            return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self.current_bytes = 0

    def stats(self) -> Dict[str, float]:
        """Snapshot of accounting counters (for metrics export and tests)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": float(self.hits),
                "misses": float(self.misses),
                "evictions": float(self.evictions),
                "insertions": float(self.insertions),
                "entries": float(len(self._entries)),
                "bytes": float(self.current_bytes),
                "hit_rate": self.hits / total if total else 0.0,
            }


# --------------------------------------------------------------------------- #
# Process-wide default caches ("default" in transform cache= arguments)
# --------------------------------------------------------------------------- #
_DEFAULT_CACHES: Dict[str, LRUByteCache] = {}
_DEFAULT_LOCK = threading.Lock()


def _default(name: str, budget: int) -> LRUByteCache:
    with _DEFAULT_LOCK:
        cache = _DEFAULT_CACHES.get(name)
        if cache is None:
            cache = LRUByteCache(budget, name=name)
            _DEFAULT_CACHES[name] = cache
        return cache


def get_neighbor_cache() -> LRUByteCache:
    """Process-wide cache for neighbor lists / radius graphs."""
    return _default("neighbor", DEFAULT_NEIGHBOR_BUDGET)


def get_feature_cache() -> LRUByteCache:
    """Process-wide cache for featurizations (e.g. RBF edge features)."""
    return _default("feature", DEFAULT_FEATURE_BUDGET)


def resolve_cache(cache) -> Optional[LRUByteCache]:
    """Normalize a transform's ``cache`` argument.

    ``None`` -> no caching; ``"neighbor"``/``"feature"``/``"default"`` ->
    the process-wide instances; an :class:`LRUByteCache` passes through.
    """
    if cache is None:
        return None
    if isinstance(cache, LRUByteCache):
        return cache
    if cache in ("default", "neighbor"):
        return get_neighbor_cache()
    if cache == "feature":
        return get_feature_cache()
    raise ValueError(f"unknown cache spec {cache!r}")


def clear_default_caches() -> None:
    """Drop all entries from the process-wide caches (tests, reconfig)."""
    with _DEFAULT_LOCK:
        caches = list(_DEFAULT_CACHES.values())
    for cache in caches:
        cache.clear()


def default_cache_stats() -> Dict[str, Dict[str, float]]:
    """Stats for every instantiated process-wide cache, keyed by name."""
    with _DEFAULT_LOCK:
        caches = dict(_DEFAULT_CACHES)
    return {name: cache.stats() for name, cache in caches.items()}


def publish_cache_metrics(registry, caches=None, prefix: str = "cache") -> None:
    """Export cache stats as gauges on a metrics registry.

    ``caches`` defaults to the process-wide instances; pass explicit
    :class:`LRUByteCache` objects to export private caches too.
    """
    if caches is None:
        with _DEFAULT_LOCK:
            caches = list(_DEFAULT_CACHES.values())
    for cache in caches:
        for key, value in cache.stats().items():
            registry.gauge(f"{prefix}.{cache.name}.{key}").set(value)
