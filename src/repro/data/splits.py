"""Deterministic dataset splitting."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import Dataset, Subset


def train_val_split(
    dataset: Dataset,
    val_fraction: float,
    rng: np.random.Generator,
) -> Tuple[Subset, Subset]:
    """Shuffle indices once and split; deterministic for a given generator."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    n = len(dataset)
    order = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    val_idx = order[:n_val]
    train_idx = order[n_val:]
    if len(train_idx) == 0:
        raise ValueError("split left no training samples")
    return Subset(dataset, train_idx.tolist()), Subset(dataset, val_idx.tolist())


def train_val_test_split(
    dataset: Dataset,
    val_fraction: float,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[Subset, Subset, Subset]:
    """Three-way split with the same determinism guarantee."""
    if val_fraction + test_fraction >= 1.0:
        raise ValueError("val + test fractions must leave room for training data")
    n = len(dataset)
    order = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    n_test = max(1, int(round(n * test_fraction)))
    val_idx = order[:n_val]
    test_idx = order[n_val : n_val + n_test]
    train_idx = order[n_val + n_test :]
    if len(train_idx) == 0:
        raise ValueError("split left no training samples")
    return (
        Subset(dataset, train_idx.tolist()),
        Subset(dataset, val_idx.tolist()),
        Subset(dataset, test_idx.tolist()),
    )
