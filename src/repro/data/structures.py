"""Core data records exchanged along the pipeline.

``Structure`` is the dataset-level record (what a materials database row
holds); ``GraphSample``/``PointCloudSample`` are model-facing
representations produced by transforms; ``GraphBatch`` is the collated form
the encoders consume (PyG-style disjoint-union batching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.geometry.lattice import Lattice


@dataclass
class Structure:
    """A material structure plus its labels.

    Attributes
    ----------
    positions:
        Cartesian coordinates, shape (n_atoms, 3), angstrom.
    species:
        Integer atomic numbers, shape (n_atoms,).  For the synthetic
        pretraining task these are all 1 (anonymous particles).
    lattice:
        Periodic cell, or None for molecules/point clouds.
    targets:
        Scalar or array labels keyed by target name (e.g. ``"band_gap"``).
    metadata:
        Free-form provenance (dataset name, generating point group, ...).
    """

    positions: np.ndarray
    species: np.ndarray
    lattice: Optional[Lattice] = None
    targets: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.species = np.asarray(self.species, dtype=np.int64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be (n, 3), got {self.positions.shape}")
        if self.species.shape != (self.positions.shape[0],):
            raise ValueError(
                f"species shape {self.species.shape} does not match "
                f"{self.positions.shape[0]} atoms"
            )

    @property
    def num_atoms(self) -> int:
        return len(self.positions)

    def centered(self) -> "Structure":
        """Return a copy translated so the centroid sits at the origin."""
        return Structure(
            positions=self.positions - self.positions.mean(axis=0, keepdims=True),
            species=self.species.copy(),
            lattice=self.lattice,
            targets=dict(self.targets),
            metadata=dict(self.metadata),
        )


@dataclass
class PointCloudSample:
    """Model input in point-cloud representation (no imposed connectivity)."""

    positions: np.ndarray
    species: np.ndarray
    targets: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        return len(self.positions)


@dataclass
class GraphSample:
    """Model input in graph representation.

    ``edge_src``/``edge_dst`` index into the sample's own nodes; directed
    edges, with both directions present for undirected connectivity.
    ``edge_attr`` optionally carries per-edge features a_ij;
    ``global_attr`` an optional per-graph state vector u, shape (gdim,)
    (the MEGNet global stream's input).
    """

    positions: np.ndarray
    species: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_attr: Optional[np.ndarray] = None
    global_attr: Optional[np.ndarray] = None
    targets: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.edge_src = np.asarray(self.edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(self.edge_dst, dtype=np.int64)
        n = len(self.positions)
        if self.edge_src.size and (self.edge_src.max() >= n or self.edge_dst.max() >= n):
            raise ValueError("edge index out of range")

    @property
    def num_nodes(self) -> int:
        return len(self.positions)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)


@dataclass
class GraphBatch:
    """Disjoint union of graphs, plus per-node graph assignment.

    ``node_graph`` maps each node to its graph index (0..num_graphs-1), the
    segment ids for sum pooling.  ``targets`` hold stacked per-graph labels.
    ``global_attr`` stacks the samples' per-graph state vectors u into
    (num_graphs, gdim) when every sample carries one.
    """

    positions: np.ndarray
    species: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    node_graph: np.ndarray
    num_graphs: int
    edge_attr: Optional[np.ndarray] = None
    global_attr: Optional[np.ndarray] = None
    targets: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.positions)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)
