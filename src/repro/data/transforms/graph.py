"""Structure <-> point cloud <-> graph conversions.

Graph construction is the step the paper contrasts against point-cloud
models (Sec. 2.1): it imposes connectivity via a radius or k-NN rule.  Both
builders use a ``scipy.spatial.cKDTree`` so neighbour search is
O(n log n) instead of the naive O(n^2) scan.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.data.cache import array_fingerprint, resolve_cache
from repro.data.structures import GraphSample, PointCloudSample, Structure
from repro.data.transforms.base import Transform


def radius_graph(positions: np.ndarray, cutoff: float) -> Tuple[np.ndarray, np.ndarray]:
    """Directed edges (src, dst) between all pairs within ``cutoff``.

    Both (i, j) and (j, i) are emitted; self-loops are excluded, matching
    the j != i sum in the E(n)-GNN update.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if len(positions) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    tree = cKDTree(positions)
    pairs = tree.query_pairs(r=cutoff, output_type="ndarray")
    if len(pairs) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    src = np.concatenate([pairs[:, 0], pairs[:, 1]]).astype(np.int64)
    dst = np.concatenate([pairs[:, 1], pairs[:, 0]]).astype(np.int64)
    return src, dst


def knn_graph(positions: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Directed edges from each node to its k nearest neighbours."""
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if n <= 1:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    k_eff = min(k, n - 1)
    tree = cKDTree(positions)
    # First neighbour is the point itself; drop it.
    _, idx = tree.query(positions, k=k_eff + 1)
    neighbours = idx[:, 1:]
    src = np.repeat(np.arange(n, dtype=np.int64), k_eff)
    dst = neighbours.reshape(-1).astype(np.int64)
    return src, dst


def periodic_radius_graph(
    positions: np.ndarray,
    cell: np.ndarray,
    cutoff: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Radius graph under periodic boundary conditions.

    Replicates the cell over the 27 neighbouring images, finds pairs between
    the central copy and all images, and folds image indices back to the
    central cell.  Returns (src, dst, displacement_vectors); displacements
    point from src to dst through the minimum image, so downstream distance
    features are PBC-correct even though node indices are cell-local.
    """
    positions = np.asarray(positions, dtype=np.float64)
    cell = np.asarray(cell, dtype=np.float64)
    n = len(positions)
    if n == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros((0, 3)),
        )
    shifts = np.array(list(itertools.product((-1, 0, 1), repeat=3)), dtype=np.float64)
    image_offsets = shifts @ cell  # (27, 3)
    tiled = (positions[None, :, :] + image_offsets[:, None, :]).reshape(-1, 3)
    tree = cKDTree(tiled)
    central = cKDTree(positions)
    pairs = central.query_ball_tree(tree, r=cutoff)
    src_list, dst_list, disp_list = [], [], []
    for i, neigh in enumerate(pairs):
        for flat in neigh:
            j = flat % n
            if flat == 13 * n + i:  # identity image of the same atom
                continue
            src_list.append(i)
            dst_list.append(j)
            disp_list.append(tiled[flat] - positions[i])
    if not src_list:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros((0, 3)),
        )
    return (
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        np.asarray(disp_list, dtype=np.float64),
    )


#: Width of the canonical per-graph state vector u.
GLOBAL_FEATURE_DIM = 4


def global_state_features(species: np.ndarray) -> np.ndarray:
    """Canonical composition descriptor for the MEGNet global stream.

    A structure-level summary computed from the graph's own species only —
    log atom count, mean/spread of atomic number, species diversity — so
    the same graph yields bit-identical u whether prepared alone or inside
    a batch (the serving bit-identity contract).  Both
    :class:`StructureToGraph` (``global_features=True``) and the MEGNet
    encoder's in-model fallback call this one function, keeping the two
    paths interchangeable.
    """
    z = np.asarray(species, dtype=np.float64)
    if z.size == 0:
        return np.zeros(GLOBAL_FEATURE_DIM, dtype=np.float64)
    return np.array(
        [
            np.log1p(float(z.size)),
            z.mean() / 10.0,
            z.std() / 10.0,
            len(np.unique(z)) / 10.0,
        ],
        dtype=np.float64,
    )


class StructureToPointCloud(Transform):
    """Strip a structure down to the point-cloud representation."""

    def __init__(self, center: bool = True):
        self.center = center

    def __call__(self, structure: Structure) -> PointCloudSample:
        pos = structure.positions
        if self.center:
            pos = pos - pos.mean(axis=0, keepdims=True)
        return PointCloudSample(
            positions=pos,
            species=structure.species.copy(),
            targets=dict(structure.targets),
            metadata=dict(structure.metadata),
        )


class StructureToGraph(Transform):
    """Build a graph sample from a structure with a radius or k-NN rule.

    ``cache`` memoizes the neighbour search keyed by (transform fingerprint,
    content hash of the centred positions): ``None`` disables, ``"default"``
    uses the process-wide neighbour cache, or pass an ``LRUByteCache``.
    """

    def __init__(
        self,
        cutoff: float = 5.0,
        k: Optional[int] = None,
        center: bool = True,
        cache=None,
        global_features: bool = False,
    ):
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        self.cutoff = cutoff
        self.k = k
        self.center = center
        self.global_features = global_features
        self._cache = resolve_cache(cache)

    def fingerprint(self) -> str:
        """Identity covering cutoff, k, centring, and the global-u flag."""
        return (
            f"StructureToGraph(cutoff={self.cutoff}, k={self.k}, "
            f"center={self.center}, global_features={self.global_features})"
        )

    def _build_edges(self, pos: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self.k is not None:
            return knn_graph(pos, self.k)
        return radius_graph(pos, self.cutoff)

    def __call__(self, structure: Structure) -> GraphSample:
        pos = structure.positions
        if self.center:
            pos = pos - pos.mean(axis=0, keepdims=True)
        if self._cache is not None:
            key = (self.fingerprint(), array_fingerprint(pos))
            cached = self._cache.get(key)
            if cached is None:
                cached = self._cache.put(key, self._build_edges(pos))
            src, dst = cached
        else:
            src, dst = self._build_edges(pos)
        return GraphSample(
            positions=pos,
            species=structure.species.copy(),
            edge_src=src,
            edge_dst=dst,
            global_attr=(
                global_state_features(structure.species)
                if self.global_features
                else None
            ),
            targets=dict(structure.targets),
            metadata=dict(structure.metadata),
        )

    def __repr__(self) -> str:
        rule = f"k={self.k}" if self.k is not None else f"cutoff={self.cutoff}"
        return f"StructureToGraph({rule})"


class PointCloudToGraph(Transform):
    """Impose connectivity on a point-cloud sample."""

    def __init__(self, cutoff: float = 5.0, k: Optional[int] = None, cache=None):
        self.cutoff = cutoff
        self.k = k
        self._cache = resolve_cache(cache)

    def fingerprint(self) -> str:
        """Identity covering both the radius and k-NN rule parameters."""
        return f"PointCloudToGraph(cutoff={self.cutoff}, k={self.k})"

    def _build_edges(self, pos: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self.k is not None:
            return knn_graph(pos, self.k)
        return radius_graph(pos, self.cutoff)

    def __call__(self, sample: PointCloudSample) -> GraphSample:
        if self._cache is not None:
            key = (self.fingerprint(), array_fingerprint(sample.positions))
            cached = self._cache.get(key)
            if cached is None:
                cached = self._cache.put(key, self._build_edges(sample.positions))
            src, dst = cached
        else:
            src, dst = self._build_edges(sample.positions)
        return GraphSample(
            positions=sample.positions,
            species=sample.species,
            edge_src=src,
            edge_dst=dst,
            targets=dict(sample.targets),
            metadata=dict(sample.metadata),
        )

    def __repr__(self) -> str:
        rule = f"k={self.k}" if self.k is not None else f"cutoff={self.cutoff}"
        return f"PointCloudToGraph({rule})"
