"""Transform protocol and composition."""

from __future__ import annotations

from typing import Callable, Sequence


class Transform:
    """A deterministic-or-seeded mapping from sample to sample."""

    def __call__(self, sample):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"

    def fingerprint(self) -> str:
        """Stable identity string covering every output-affecting parameter.

        Cache keys combine this with a content hash of the input arrays, so
        a transform whose ``__repr__`` omits parameters MUST override this —
        otherwise reconfiguring it could serve stale cached results.
        """
        return repr(self)


class Compose(Transform):
    """Apply transforms left to right."""

    def __init__(self, transforms: Sequence[Callable]):
        self.transforms = list(transforms)

    def __call__(self, sample):
        for t in self.transforms:
            sample = t(sample)
        return sample

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose([{inner}])"

    def fingerprint(self) -> str:
        """Combine child fingerprints so any stage change invalidates keys."""
        inner = ", ".join(
            t.fingerprint() if isinstance(t, Transform) else repr(t)
            for t in self.transforms
        )
        return f"Compose([{inner}])"


class Lambda(Transform):
    """Wrap a plain function as a transform."""

    def __init__(self, fn: Callable, name: str = "lambda"):
        self.fn = fn
        self.name = name

    def __call__(self, sample):
        return self.fn(sample)

    def __repr__(self) -> str:
        return f"Lambda({self.name})"
