"""Representation transforms (the middle block of the paper's Fig. 1).

Transforms are callables ``sample -> sample`` composed with
:class:`Compose`; they convert freely between structure, point-cloud and
graph representations and inject inductive biases (noise, rotations,
distance features) as the downstream task requires.
"""

from repro.data.transforms.base import Transform, Compose, Lambda
from repro.data.transforms.graph import (
    StructureToGraph,
    StructureToPointCloud,
    PointCloudToGraph,
    radius_graph,
    knn_graph,
    periodic_radius_graph,
)
from repro.data.transforms.augment import (
    CenterPositions,
    RandomRotation,
    GaussianPositionNoise,
    PermuteNodes,
)
from repro.data.transforms.features import DistanceEdgeFeatures, TargetNormalizer

__all__ = [
    "Transform",
    "Compose",
    "Lambda",
    "StructureToGraph",
    "StructureToPointCloud",
    "PointCloudToGraph",
    "radius_graph",
    "knn_graph",
    "periodic_radius_graph",
    "CenterPositions",
    "RandomRotation",
    "GaussianPositionNoise",
    "PermuteNodes",
    "DistanceEdgeFeatures",
    "TargetNormalizer",
]
