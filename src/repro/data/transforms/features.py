"""Feature-engineering transforms."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable

import numpy as np

from repro.data.cache import array_fingerprint, resolve_cache
from repro.data.structures import GraphSample
from repro.data.transforms.base import Transform


class DistanceEdgeFeatures(Transform):
    """Attach ``a_ij`` edge features derived from interatomic distance.

    Produces a radial-basis expansion of the edge length — the standard way
    of giving the message MLP a smooth view of distance beyond the raw
    squared norm that E(n)-GNN already consumes.
    """

    def __init__(self, num_basis: int = 8, cutoff: float = 6.0, cache=None):
        if num_basis < 1:
            raise ValueError("num_basis must be >= 1")
        self.num_basis = num_basis
        self.cutoff = cutoff
        self.centers = np.linspace(0.0, cutoff, num_basis)
        self.width = cutoff / max(num_basis - 1, 1)
        self._cache = resolve_cache("feature" if cache == "default" else cache)

    def fingerprint(self) -> str:
        """Identity covering the basis layout (matches ``__repr__``)."""
        return repr(self)

    def _expand(self, sample: GraphSample) -> np.ndarray:
        diff = sample.positions[sample.edge_src] - sample.positions[sample.edge_dst]
        dist = np.linalg.norm(diff, axis=1, keepdims=True)
        return np.exp(-((dist - self.centers[None, :]) ** 2) / (2.0 * self.width**2))

    def __call__(self, sample: GraphSample) -> GraphSample:
        if sample.num_edges == 0:
            return replace(sample, edge_attr=np.zeros((0, self.num_basis)))
        if self._cache is not None:
            key = (
                self.fingerprint(),
                array_fingerprint(sample.positions, sample.edge_src, sample.edge_dst),
            )
            rbf = self._cache.get(key)
            if rbf is None:
                rbf = self._cache.put(key, self._expand(sample))
        else:
            rbf = self._expand(sample)
        return replace(sample, edge_attr=rbf)

    def __repr__(self) -> str:
        return f"DistanceEdgeFeatures(num_basis={self.num_basis}, cutoff={self.cutoff})"


class TargetNormalizer(Transform):
    """Standardize scalar targets with statistics fit on a training set.

    ``fit`` computes per-target mean/std over an iterable of samples; the
    transform then maps each listed target to z-scores.  ``denormalize``
    recovers original units for metric reporting (the paper reports MAE in
    physical units: eV, eV/atom).
    """

    def __init__(self, keys: Iterable[str]):
        self.keys = list(keys)
        self.stats: Dict[str, tuple] = {}

    def fit(self, samples) -> "TargetNormalizer":
        values: Dict[str, list] = {k: [] for k in self.keys}
        for sample in samples:
            for k in self.keys:
                if k in sample.targets:
                    v = np.asarray(sample.targets[k], dtype=np.float64)
                    if not np.any(np.isnan(v)):
                        values[k].append(v.ravel())
        for k, rows in values.items():
            if not rows:
                raise ValueError(f"no samples carry target {k!r}")
            flat = np.concatenate(rows)
            std = float(flat.std())
            self.stats[k] = (float(flat.mean()), std if std > 1e-12 else 1.0)
        return self

    def __call__(self, sample):
        if not self.stats:
            raise RuntimeError("TargetNormalizer used before fit()")
        targets = dict(sample.targets)
        for k in self.keys:
            if k in targets:
                mean, std = self.stats[k]
                targets[k] = (np.asarray(targets[k], dtype=np.float64) - mean) / std
        return replace(sample, targets=targets)

    def denormalize(self, key: str, value: np.ndarray) -> np.ndarray:
        mean, std = self.stats[key]
        return np.asarray(value) * std + mean

    def scale_of(self, key: str) -> float:
        """Std of a target — converts normalized MAE back to physical units."""
        return self.stats[key][1]
