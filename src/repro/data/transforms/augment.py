"""Augmentation transforms.

Rotation/permutation augments double as the test harness for encoder
equivariance claims; Gaussian position noise is the paper's knob for
hardening the synthetic pretraining task.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Union

import numpy as np

from repro.data.structures import GraphSample, PointCloudSample, Structure
from repro.data.transforms.base import Transform
from repro.geometry.operations import random_rotation

SampleT = Union[Structure, PointCloudSample, GraphSample]


def _with_positions(sample: SampleT, positions: np.ndarray) -> SampleT:
    return replace(sample, positions=positions)


class CenterPositions(Transform):
    """Translate the centroid to the origin."""

    def __call__(self, sample: SampleT) -> SampleT:
        pos = sample.positions
        return _with_positions(sample, pos - pos.mean(axis=0, keepdims=True))


class RandomRotation(Transform):
    """Apply a Haar-random proper rotation to all positions."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def __call__(self, sample: SampleT) -> SampleT:
        rot = random_rotation(self.rng)
        return _with_positions(sample, sample.positions @ rot.T)


class GaussianPositionNoise(Transform):
    """Add i.i.d. Gaussian jitter to every coordinate."""

    def __init__(self, sigma: float, rng: np.random.Generator):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self.rng = rng

    def __call__(self, sample: SampleT) -> SampleT:
        if self.sigma == 0:
            return sample
        noise = self.rng.normal(0.0, self.sigma, size=sample.positions.shape)
        return _with_positions(sample, sample.positions + noise)

    def __repr__(self) -> str:
        return f"GaussianPositionNoise(sigma={self.sigma})"


class PermuteNodes(Transform):
    """Randomly permute node order (tests permutation invariance).

    For graph samples the edge indices are remapped through the permutation
    so connectivity is preserved.
    """

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def __call__(self, sample: SampleT) -> SampleT:
        n = len(sample.positions)
        perm = self.rng.permutation(n)
        inverse = np.argsort(perm)
        if isinstance(sample, GraphSample):
            return replace(
                sample,
                positions=sample.positions[perm],
                species=sample.species[perm],
                edge_src=inverse[sample.edge_src],
                edge_dst=inverse[sample.edge_dst],
            )
        return replace(
            sample,
            positions=sample.positions[perm],
            species=sample.species[perm],
        )
