"""Command-line interface: ``python -m repro.cli <command>``.

Thin argparse front-end over :mod:`repro.core`'s workflows, so the paper's
experiments can be driven without writing Python:

    python -m repro.cli pretrain --epochs 10 --world-size 8
    python -m repro.cli finetune --pretrained --epochs 20
    python -m repro.cli multitask --epochs 15
    python -m repro.cli explore --samples 30
    python -m repro.cli scaling --workers 16 512
    python -m repro.cli datasets
    python -m repro.cli predict --registry /tmp/reg --bootstrap --samples 4
    python -m repro.cli serve --registry /tmp/reg --rate 400 --requests 64
    python -m repro.cli serve --registry /tmp/reg --replicas 3 \
        --chaos-profile replica_crash:1,replica_slow:1
    python -m repro.cli screen --registry /tmp/reg --bootstrap \
        --n-candidates 256 --top-k 8 --relax-steps 2
    python -m repro.cli registry verify --registry /tmp/reg
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core import (
    EncoderConfig,
    FinetuneConfig,
    MultiTaskConfig,
    OptimizerConfig,
    PretrainConfig,
    cached_pretrained_encoder,
    explore_datasets,
    pretrain_symmetry,
    train_multitask,
    train_property,
    transfer_pretrain_recipe,
)
from repro.core.pipeline import build_encoder_from_config
from repro.core.workflows import TABLE1_METRICS


def _encoder_config(args) -> EncoderConfig:
    return EncoderConfig(
        name=args.encoder,
        hidden_dim=args.hidden_dim,
        num_layers=args.layers,
        position_dim=max(args.hidden_dim // 4, 4),
    )


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--encoder", default="egnn", choices=["egnn", "gaanet", "megnet", "schnet"]
    )
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument("--layers", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--lr", type=float, default=1e-3)
    parser.add_argument("--epochs", type=int, default=10)


def cmd_pretrain(args) -> int:
    """Run symmetry-group pretraining and print its convergence summary."""
    cfg = PretrainConfig(
        encoder=_encoder_config(args),
        optimizer=OptimizerConfig(base_lr=args.lr, warmup_epochs=args.warmup),
        train_samples=args.samples,
        val_samples=max(args.samples // 4, 16),
        world_size=args.world_size,
        batch_per_worker=args.batch_per_worker,
        max_epochs=args.epochs,
        head_hidden_dim=args.hidden_dim,
        head_blocks=2,
        seed=args.seed,
        fault_profile=args.fault_profile,
        fault_seed=args.fault_seed,
        on_fault=args.on_fault,
        stability_guard=args.stability_guard,
        on_spike=args.on_spike,
        detect_anomaly=args.detect_anomaly,
        max_steps=args.steps,
        profile=args.profile,
        trace_out=args.trace_out,
        zero=args.zero,
        bucket_mb=args.bucket_mb,
        compile=args.compile,
    )
    print(
        f"pretraining: N={cfg.world_size}, B_eff={cfg.effective_batch}, "
        f"lr={cfg.optimizer.base_lr * cfg.world_size:g}"
    )
    compiling = cfg.compile or _env_compiled()
    if compiling:
        print("tape compiler: on (trace -> validate -> replay)")
    if cfg.zero:
        print(f"zero sharding: bucket_mb={cfg.bucket_mb:g}")
    if cfg.fault_profile:
        print(f"fault profile: {cfg.fault_profile} (on_fault={cfg.on_fault}, "
              f"seed={cfg.fault_seed})")
    if cfg.stability_guard:
        print(f"stability guard: on_spike={cfg.on_spike}"
              + (", detect_anomaly" if cfg.detect_anomaly else ""))
    result = pretrain_symmetry(cfg)
    _, ce = result.history.series("val", "ce")
    _, acc = result.history.series("val", "acc")
    print(f"val CE  {ce[0]:.3f} -> {ce[-1]:.3f}")
    print(f"val acc {acc[0]:.3f} -> {acc[-1]:.3f}")
    print(f"throughput {result.throughput.samples_per_second:.0f} samples/s, "
          f"spikes {result.spikes.spike_count}")
    if result.events is not None:
        counts = result.events.summary()
        summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"fault events: {summary if summary else 'none'}")
    if result.guard is not None:
        g = result.guard.summary()
        print(f"stability: spikes={g['spikes']}, anomalies={g['anomalies']}, "
              f"interventions={g['interventions']} ({g['policy']}), "
              f"lr_deficit={g['lr_deficit']:.3g}")
    if result.observer is not None:
        if cfg.profile:
            print()
            print(result.observer.report())
        if cfg.trace_out is not None:
            print(f"chrome trace written to {cfg.trace_out} "
                  f"(open in chrome://tracing or ui.perfetto.dev)")
    if compiling:
        _print_compile_stats()
    return 0


def _env_compiled() -> bool:
    """Whether ``REPRO_COMPILE`` enables the compiler without ``--compile``."""
    from repro.compiler import compiled_enabled

    return compiled_enabled()


def _print_compile_stats() -> None:
    from repro.compiler import compile_stats

    stats = compile_stats()
    print("tape compiler: "
          f"hits={stats['hits']:g}, misses={stats['misses']:g}, "
          f"traces={stats['traces']:g}, plans={stats['plans']:g}, "
          f"taints={stats['taints']:g}, fallbacks={stats['fallbacks']:g}, "
          f"validation_failures={stats['validation_failures']:g}")


def cmd_finetune(args) -> int:
    """Fine-tune a property regressor (optionally from the cached encoder)."""
    cfg = FinetuneConfig(
        encoder=_encoder_config(args),
        optimizer=OptimizerConfig(base_lr=args.lr, warmup_epochs=args.warmup),
        dataset=args.dataset,
        target=args.target,
        train_samples=args.samples,
        val_samples=max(args.samples // 4, 16),
        max_epochs=args.epochs,
        world_size=args.world_size,
        head_hidden_dim=args.hidden_dim,
        head_blocks=2,
        seed=args.seed,
        compile=args.compile,
    )
    compiling = cfg.compile or _env_compiled()
    if compiling:
        print("tape compiler: on (trace -> validate -> replay)")
    state = None
    if args.pretrained:
        print("loading cached pretrained encoder (training it if needed) ...")
        recipe = transfer_pretrain_recipe()
        recipe.encoder = cfg.encoder
        state = cached_pretrained_encoder(recipe)
    result = train_property(cfg, pretrained_state=state)
    print(f"dataset: {cfg.dataset}, target: {cfg.target}")
    for epoch, mae in enumerate(result.curve_mae, start=1):
        print(f"  epoch {epoch:3d}: val MAE {mae:.4f}")
    print(f"final {result.final_mae:.4f}, best {result.best_mae:.4f}")
    if compiling:
        _print_compile_stats()
    return 0


def cmd_multitask(args) -> int:
    """Run the Table-1 multi-task multi-dataset training."""
    cfg = MultiTaskConfig(
        encoder=_encoder_config(args),
        optimizer=OptimizerConfig(base_lr=args.lr, warmup_epochs=args.warmup),
        mp_samples=args.samples,
        carolina_samples=args.samples // 2,
        max_epochs=args.epochs,
        world_size=args.world_size,
        head_hidden_dim=args.hidden_dim,
        head_blocks=3,
        seed=args.seed,
    )
    state = None
    if args.pretrained:
        recipe = transfer_pretrain_recipe()
        recipe.encoder = cfg.encoder
        state = cached_pretrained_encoder(recipe)
    result = train_multitask(cfg, pretrained_state=state)
    print("final validation metrics:")
    for key in TABLE1_METRICS:
        if key in result.final_metrics:
            print(f"  {key:18s} {result.final_metrics[key]:.4f}")
    return 0


def cmd_explore(args) -> int:
    """Run the Fig.-4 dataset exploration and print cluster metrics."""
    recipe = transfer_pretrain_recipe()
    state = cached_pretrained_encoder(recipe)
    encoder = build_encoder_from_config(recipe.encoder, rng=np.random.default_rng(0))
    encoder.load_state_dict(state)
    result = explore_datasets(encoder, samples_per_dataset=args.samples)
    sil = result.by_name(result.silhouettes)
    spread = result.by_name(result.spreads)
    print(f"{'dataset':>18} {'silhouette':>11} {'spread':>8}")
    for name in result.names:
        print(f"{name:>18} {sil[name]:>11.3f} {spread[name]:>8.3f}")
    return 0


def cmd_scaling(args) -> int:
    """Project DDP throughput over a worker range (Fig. 2)."""
    from repro.distributed import ENDEAVOUR, ThroughputModel

    model = ThroughputModel(
        per_worker_samples_per_s=args.rate,
        batch_per_worker=32,
        gradient_bytes=args.params * 8,
        cluster=ENDEAVOUR,
    )
    lo, hi = args.workers
    sizes = []
    n = lo
    while n <= hi:
        sizes.append(n)
        n *= 2
    print(f"{'workers':>8} {'samples/s':>12} {'epoch (min)':>12} {'eff':>8}")
    for row in model.sweep(sizes, dataset_size=args.dataset_size):
        print(f"{row['workers']:>8d} {row['samples_per_s']:>12.0f} "
              f"{row['epoch_minutes']:>12.2f} {row['efficiency']:>8.4f}")
    return 0


def cmd_datasets(args) -> int:
    """List registered datasets with a sample summary."""
    from repro.datasets import available_datasets, build_dataset

    for name in available_datasets():
        ds = build_dataset(name, num_samples=2, seed=0)
        sample = ds[0]
        targets = ", ".join(sorted(sample.targets))
        print(f"{name:>18}: {sample.num_atoms:3d} atoms/sample, targets: {targets}")
    return 0


def _load_serving_model(args):
    """Resolve the --registry/--model pair, bootstrapping when asked."""
    from repro.serving import ModelRegistry
    from repro.serving.demo import DEMO_MODEL_NAME, fit_demo_servable

    registry = ModelRegistry(args.registry)
    name = args.model
    if args.bootstrap and name == DEMO_MODEL_NAME and name not in registry.names():
        print(f"bootstrapping demo servable into {args.registry} ...")
        _, mae = fit_demo_servable(args.registry, seed=args.seed)
        print(f"trained demo model (final MAE {mae:.4f})")
    return registry.load(name)


def cmd_predict(args) -> int:
    """One-shot offline predictions through the serving registry."""
    from repro.serving.demo import demo_request_samples

    servable = _load_serving_model(args)
    samples = demo_request_samples(args.samples, seed=args.query_seed)
    values = servable.predict(samples)
    print(f"model: {args.model} (target {servable.spec.target}, "
          f"encoder {servable.spec.encoder_name})")
    for i, value in enumerate(values):
        print(f"  sample {i}: {servable.spec.target} = {value:.6f}")
    return 0


def cmd_serve(args) -> int:
    """Simulated open-loop serving run: micro-batching + admission control.

    ``--replicas N`` (N > 1) serves through the resilient
    :class:`~repro.serving.ReplicaPool` — health checks, circuit breakers,
    hedged requests, failover — and ``--chaos-profile`` injects a seeded
    serving-fault schedule into the run (DESIGN.md §13).
    """
    from repro.distributed.events import SimClock
    from repro.observability import Observer
    from repro.serving import (
        AdmissionPolicy,
        BatchPolicy,
        HedgePolicy,
        InferenceServer,
        ReplicaPool,
        calibrate_service_model,
        chaos_schedule,
        make_requests,
        poisson_arrivals,
    )
    from repro.serving.demo import demo_request_samples

    servable = _load_serving_model(args)
    samples = demo_request_samples(max(args.samples, 1), seed=args.query_seed)
    service_model = calibrate_service_model(
        servable, samples, max_batch_size=max(args.max_batch, 2)
    )
    print(f"service model: {service_model.base * 1e3:.3f} ms + "
          f"{service_model.per_sample * 1e3:.3f} ms/sample")
    clock = SimClock()
    observer = Observer(clock=clock)
    batch = BatchPolicy(max_batch_size=args.max_batch, max_wait=args.max_wait)
    admission = AdmissionPolicy(
        max_queue_depth=args.queue_depth, deadline=args.deadline
    )
    arrivals = poisson_arrivals(args.rate, args.requests, seed=args.seed)
    requests = make_requests(samples, arrivals)
    print(f"open-loop traffic: {args.requests} requests at {args.rate:g} req/s "
          f"(seed {args.seed})")
    if args.replicas > 1 or args.chaos_profile:
        duration = max(float(arrivals[-1]), 1e-6) if len(arrivals) else 1.0
        chaos = (
            chaos_schedule(
                args.chaos_profile, args.replicas, duration, seed=args.chaos_seed
            )
            if args.chaos_profile
            else None
        )
        pool = ReplicaPool(
            servable.predict,
            num_replicas=args.replicas,
            batch=batch,
            admission=admission,
            service_model=service_model,
            hedge=HedgePolicy(delay=args.hedge_ms * 1e-3),
            chaos=chaos,
            clock=clock,
            observer=observer,
            seed=args.seed,
        )
        print(f"replica pool: {args.replicas} replicas, "
              f"hedge after {args.hedge_ms:g} ms"
              + (f", chaos '{args.chaos_profile}' (seed {args.chaos_seed})"
                 if args.chaos_profile else ""))
        report = pool.serve(requests)
        if args.chaos_profile:
            counts = pool.events.summary()
            summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            print(f"chaos events: {summary if summary else 'none'}")
    else:
        server = InferenceServer(
            servable,
            batch=batch,
            admission=admission,
            service_model=service_model,
            observer=observer,
            clock=clock,
        )
        report = server.serve(requests)
    print(report.summary())
    print()
    print(observer.metrics_table())
    if args.trace_out is not None:
        observer.export_chrome_trace(args.trace_out)
        print(f"chrome trace written to {args.trace_out}")
    return 0


def cmd_screen(args) -> int:
    """High-throughput screening: generate -> (relax) -> predict -> rank.

    Streams seeded element-swap/strain mutations of known crystals
    through the servable's batch-invariant forward and keeps a
    deterministic top-k (DESIGN.md §15).  ``--shards``/``--batch-size``
    change throughput only — the ranking is bit-identical across layouts.
    """
    from repro.observability import Observer
    from repro.screening import ScreenConfig, run_screening

    servable = _load_serving_model(args)
    config = ScreenConfig(
        n_candidates=args.n_candidates,
        top_k=args.top_k,
        batch_size=args.batch_size,
        relax_steps=args.relax_steps,
        num_shards=args.shards,
        seed=args.screen_seed,
        base_samples=args.base_samples,
    )
    print(f"model: {args.model} (target {servable.spec.target}, "
          f"encoder {servable.spec.encoder_name})")
    print(f"screening {config.n_candidates} candidates "
          f"(batch {config.batch_size}, {config.num_shards} shard"
          f"{'s' if config.num_shards != 1 else ''}, "
          f"{config.relax_steps} relax steps, seed {config.seed})")
    observer = Observer()
    result = run_screening(servable, config, observer=observer)
    print(result.summary())
    print()
    print(observer.metrics_table())
    if args.trace_out is not None:
        observer.export_chrome_trace(args.trace_out)
        print(f"chrome trace written to {args.trace_out}")
    return 0


def cmd_registry_verify(args) -> int:
    """CRC-audit every servable in a registry; non-zero exit on corruption."""
    from repro.serving import ModelRegistry

    registry = ModelRegistry(args.registry)
    results = registry.verify()
    if not results:
        print(f"registry {args.registry}: no servables found")
        return 0
    bad = 0
    for name, info in sorted(results.items()):
        if info["ok"]:
            print(f"  {name:24s} ok    {info['encoder']:>8s} -> {info['target']}, "
                  f"{info['arrays']} arrays, {info['bytes'] / 1e3:.1f} kB")
        else:
            bad += 1
            print(f"  {name:24s} FAIL  {info['error']}")
    print(f"{len(results) - bad}/{len(results)} servables verified ok")
    return 1 if bad else 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Open MatSci ML Toolkit reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("pretrain", help="symmetry-group pretraining (Sec. 5.2)")
    _add_model_args(p)
    p.add_argument("--samples", type=int, default=256)
    p.add_argument("--world-size", type=int, default=8)
    p.add_argument("--batch-per-worker", type=int, default=2)
    p.add_argument("--warmup", type=int, default=8)
    p.add_argument("--fault-profile", default=None,
                   help="inject faults, e.g. 'crash:1' or 'timeout:2,corrupt:1'")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--on-fault", default="recover", choices=["recover", "elastic"],
                   help="crash handling: checkpoint recovery (exact) or "
                        "elastic rank drop (re-shard + Goyal LR re-scale)")
    p.add_argument("--stability-guard", action="store_true",
                   help="attach the numerical stability guard (loss-spike "
                        "detection with cross-rank agreement and recovery)")
    p.add_argument("--on-spike", default="lr_backoff",
                   choices=["skip_batch", "lr_backoff", "rollback"],
                   help="recovery policy once the guard confirms a spike")
    p.add_argument("--detect-anomaly", action="store_true",
                   help="trace non-finite values to their creating autograd "
                        "op (slower; implies precise anomaly events)")
    p.add_argument("--steps", type=int, default=None,
                   help="hard step budget (overrides --epochs for quick runs)")
    p.add_argument("--profile", action="store_true",
                   help="attach the observability layer: phase spans, per-op "
                        "autograd profiling, metrics; prints the report")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a chrome://tracing JSON of the run's spans")
    p.add_argument("--zero", action="store_true",
                   help="ZeRO sharding: bucketed reduce_scatter gradients + "
                        "rank-sharded AdamW state (bit-identical, less memory)")
    p.add_argument("--compile", action="store_true",
                   help="run steps through the tape compiler: trace once per "
                        "batch shape, then replay a validated fused plan "
                        "(bit-identical to eager)")
    p.add_argument("--bucket-mb", type=float, default=1.0, metavar="MB",
                   help="gradient bucket capacity in MiB for --zero")
    p.set_defaults(fn=cmd_pretrain)

    p = sub.add_parser("finetune", help="single-task fine-tuning (Fig. 5)")
    _add_model_args(p)
    p.add_argument("--samples", type=int, default=160)
    p.add_argument("--dataset", default="materials_project",
                   choices=["materials_project", "carolina", "lips", "oc20", "oc22"],
                   help="registered dataset to fine-tune on (Table 1 sweep)")
    p.add_argument("--target", default="band_gap",
                   choices=["band_gap", "fermi_energy", "formation_energy", "energy"])
    p.add_argument("--world-size", type=int, default=16)
    p.add_argument("--warmup", type=int, default=2)
    p.add_argument("--pretrained", action="store_true")
    p.add_argument("--compile", action="store_true",
                   help="run steps through the tape compiler (see pretrain)")
    p.set_defaults(fn=cmd_finetune)

    p = sub.add_parser("multitask", help="multi-task multi-dataset training (Table 1)")
    _add_model_args(p)
    p.add_argument("--samples", type=int, default=160)
    p.add_argument("--world-size", type=int, default=16)
    p.add_argument("--warmup", type=int, default=8)
    p.add_argument("--pretrained", action="store_true")
    p.set_defaults(fn=cmd_multitask)

    p = sub.add_parser("explore", help="UMAP dataset exploration (Fig. 4)")
    p.add_argument("--samples", type=int, default=30)
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser("scaling", help="throughput projection (Fig. 2)")
    p.add_argument("--workers", type=int, nargs=2, default=[16, 512],
                   metavar=("LO", "HI"))
    p.add_argument("--rate", type=float, default=300.0,
                   help="single-worker samples/s")
    p.add_argument("--params", type=int, default=30_000)
    p.add_argument("--dataset-size", type=int, default=2_000_000)
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser("datasets", help="list available datasets")
    p.set_defaults(fn=cmd_datasets)

    def _add_serving_args(p):
        p.add_argument("--registry", required=True, metavar="DIR",
                       help="servable registry root directory")
        p.add_argument("--model", default="band_gap_demo",
                       help="registry entry to load")
        p.add_argument("--bootstrap", action="store_true",
                       help="train and archive the demo model if absent")
        p.add_argument("--samples", type=int, default=4,
                       help="query structures to generate")
        p.add_argument("--query-seed", type=int, default=99,
                       help="seed for the generated query structures")
        p.add_argument("--seed", type=int, default=13)

    p = sub.add_parser("predict", help="offline predictions via the registry")
    _add_serving_args(p)
    p.set_defaults(fn=cmd_predict)

    p = sub.add_parser("serve", help="simulated micro-batched serving run")
    _add_serving_args(p)
    p.add_argument("--rate", type=float, default=400.0,
                   help="open-loop Poisson arrival rate (req/s)")
    p.add_argument("--requests", type=int, default=64,
                   help="number of requests in the trace")
    p.add_argument("--max-batch", type=int, default=8,
                   help="micro-batch size cap")
    p.add_argument("--max-wait", type=float, default=0.01, metavar="S",
                   help="max seconds the oldest request waits for a batch")
    p.add_argument("--queue-depth", type=int, default=None, metavar="N",
                   help="shed requests arriving when N are queued")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="per-request completion deadline in seconds")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a chrome://tracing JSON of the serving spans")
    p.add_argument("--replicas", type=_positive_int, default=1, metavar="N",
                   help="serve through a resilient N-replica pool (health "
                        "checks, circuit breakers, hedging, failover)")
    p.add_argument("--chaos-profile", default=None, metavar="SPEC",
                   help="seeded serving faults, e.g. "
                        "'replica_crash:1,replica_slow:1,servable_corrupt:1'")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="seed for the chaos schedule")
    p.add_argument("--hedge-ms", type=float, default=5.0, metavar="MS",
                   help="hedge a still-unanswered request onto a sibling "
                        "replica after this many milliseconds")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("screen", help="high-throughput candidate screening")
    _add_serving_args(p)
    p.add_argument("--n-candidates", type=_positive_int, default=256,
                   help="candidates to generate and score")
    p.add_argument("--top-k", type=_positive_int, default=8,
                   help="ranked winners to keep (O(k) memory)")
    p.add_argument("--batch-size", type=_positive_int, default=16,
                   help="prediction batch size (throughput knob only: "
                        "the ranking is bit-identical for any value)")
    p.add_argument("--relax-steps", type=int, default=0,
                   help="force-field descent steps before scoring "
                        "(0 disables relaxation)")
    p.add_argument("--shards", type=_positive_int, default=1,
                   help="partition the candidate stream into N shards "
                        "(merged ranking == single-shard, bit for bit)")
    p.add_argument("--screen-seed", type=int, default=0,
                   help="seed for the candidate stream")
    p.add_argument("--base-samples", type=_positive_int, default=32,
                   help="parent crystals in the mutation pool")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a chrome://tracing JSON of the screening spans")
    p.set_defaults(fn=cmd_screen)

    p = sub.add_parser("registry", help="servable registry maintenance")
    reg_sub = p.add_subparsers(dest="registry_command", required=True)
    p = reg_sub.add_parser("verify", help="CRC-check every servable archive")
    p.add_argument("--registry", required=True, metavar="DIR",
                   help="servable registry root directory")
    p.set_defaults(fn=cmd_registry_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
