"""Encoder interface."""

from __future__ import annotations

from dataclasses import dataclass

from repro.autograd import Tensor
from repro.data.structures import GraphBatch
from repro.nn.module import Module


@dataclass
class EncoderOutput:
    """What an encoder emits for a batch.

    ``graph_embedding`` — (num_graphs, embed_dim), the system-level vector
    that output heads consume.  ``node_embedding`` — (num_nodes, embed_dim),
    used by per-atom scalar heads.  ``coordinate_update`` — (num_nodes, 3)
    or None: the displacement the encoder's equivariant coordinate channel
    applied to each node.  Node embeddings are E(3)-*invariant*, so vector
    quantities (forces) must be built from this *equivariant* channel; see
    :class:`repro.tasks.EnergyForceTask`.
    """

    graph_embedding: Tensor
    node_embedding: Tensor
    coordinate_update: Tensor | None = None


class Encoder(Module):
    """Base class: subclasses set ``embed_dim`` and implement ``forward``.

    The contract mirrors the paper's task structure (Sec. 3.2): one encoder
    feeds any number of output heads, and in multi-task training the encoder
    is the shared component updated through every head's loss.
    """

    embed_dim: int

    def forward(self, batch: GraphBatch) -> EncoderOutput:  # pragma: no cover
        raise NotImplementedError
