"""MEGNet-style encoder: edge/node/global-state message passing.

The fourth encoder family (Chen et al., "Graph Networks as a Universal
Machine Learning Framework for Molecules and Crystals"), the lineage model
the Open MatSci ML Toolkit ships.  Two things distinguish it from the
egnn/schnet/gaanet trio:

* a *global-state stream* u — a per-graph vector updated alongside nodes
  and edges in every block, letting structure-level information (here a
  composition descriptor, see
  :func:`repro.data.transforms.graph.global_state_features`) condition
  every edge and node update;
* *Set2Set pooling* (Vinyals et al.) over both the node and the edge set —
  an order-invariant attention readout driven by an LSTM query loop, which
  is what required the ``lstm_cell`` kernel in :mod:`repro.kernels`.

All features are functions of interatomic distances and species, so the
embeddings are E(3)-invariant like SchNet's; no coordinate channel.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.data.structures import GraphBatch
from repro.data.transforms.graph import GLOBAL_FEATURE_DIM, global_state_features
from repro.kernels import dispatch as K
from repro.models.encoder import Encoder, EncoderOutput
from repro.models.schnet import GaussianSmearing
from repro.nn import Embedding, Linear, ModuleList, Sequential, SiLU, init
from repro.nn.module import Module, Parameter


class Set2Set(Module):
    """Order-invariant set readout with an LSTM query loop (Vinyals et al.).

    Each processing step advances an LSTM whose input is the previous
    query-plus-readout ``q*``, scores every element of the set against the
    new query, softmax-normalizes the scores *within each segment*, and
    reads the set out as the attention-weighted sum.  Output is
    ``(num_segments, 2 * in_dim)`` — query and readout concatenated.
    """

    def __init__(
        self,
        in_dim: int,
        processing_steps: int = 3,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if processing_steps < 1:
            raise ValueError("processing_steps must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_dim = in_dim
        self.out_dim = 2 * in_dim
        self.processing_steps = processing_steps
        # LSTM cell over the q* input (2d) and hidden state (d); i/f/g/o
        # gate layout along columns, matching K.lstm_cell.
        self.w_x = Parameter(init.kaiming_uniform((2 * in_dim, 4 * in_dim), rng))
        self.w_h = Parameter(init.kaiming_uniform((in_dim, 4 * in_dim), rng))
        bound = 1.0 / np.sqrt(in_dim)
        self.bias = Parameter(rng.uniform(-bound, bound, size=(4 * in_dim,)))

    def forward(self, x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
        d = self.in_dim
        q_star = Tensor(np.zeros((num_segments, 2 * d)))
        h = Tensor(np.zeros((num_segments, d)))
        c = Tensor(np.zeros((num_segments, d)))
        for _ in range(self.processing_steps):
            hc = K.lstm_cell(q_star, h, c, self.w_x, self.w_h, self.bias)
            h = hc[:, :d]
            c = hc[:, d:]
            scores = (x * K.index_select(h, segment_ids)).sum(axis=-1)
            alpha = F.segment_softmax(scores, segment_ids, num_segments)
            read = K.mul_segment_sum(x, alpha.unsqueeze(-1), segment_ids, num_segments)
            q_star = F.concat([h, read], axis=1)
        return q_star

    def __repr__(self) -> str:
        return f"Set2Set(in_dim={self.in_dim}, steps={self.processing_steps})"


class MEGNetBlock(Module):
    """One MEGNet block: edge, node, and global updates with residuals.

        e' = e + phi_e([v_src, v_dst, e, u])
        v' = v + phi_v([v, mean_{e' out of v}, u])
        u' = u + phi_u([mean(e'), mean(v'), u])
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()

        def _mlp(in_dim: int) -> Sequential:
            return Sequential(
                Linear(in_dim, dim, rng=rng), SiLU(), Linear(dim, dim, rng=rng)
            )

        self.edge_mlp = _mlp(4 * dim)
        self.node_mlp = _mlp(3 * dim)
        self.global_mlp = _mlp(3 * dim)

    def forward(
        self,
        v: Tensor,
        e: Tensor,
        u: Tensor,
        batch: GraphBatch,
        edge_graph: np.ndarray,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        # No early-exit on an empty edge list (the SchNet lesson, PR 6): a
        # node with no neighbours still gets ``v + phi_v([v, 0, u])`` and a
        # graph with no edges still updates u — whether forwarded alone or
        # inside a batch where other graphs contribute edges.
        num_nodes, num_graphs = v.shape[0], batch.num_graphs
        src, dst = batch.edge_src, batch.edge_dst
        pair = K.gather_pair_concat(v, src, dst, [e, K.index_select(u, edge_graph)])
        e = e + self.edge_mlp(pair)
        agg = F.segment_mean(e, src, num_nodes)
        v = v + self.node_mlp(
            F.concat([v, agg, K.index_select(u, batch.node_graph)], axis=1)
        )
        ebar = F.segment_mean(e, edge_graph, num_graphs)
        vbar = F.segment_mean(v, batch.node_graph, num_graphs)
        u = u + self.global_mlp(F.concat([ebar, vbar, u], axis=1))
        return v, e, u


class MEGNet(Encoder):
    """Species/RBF/global embeddings, N blocks, dual Set2Set readout."""

    def __init__(
        self,
        hidden_dim: int = 64,
        num_layers: int = 3,
        num_species: int = 100,
        num_rbf: int = 16,
        r_max: float = 6.0,
        processing_steps: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.embed_dim = hidden_dim
        self.smearing = GaussianSmearing(num_rbf=num_rbf, r_max=r_max)
        self.atom_embedding = Embedding(num_species, hidden_dim, rng=rng)
        self.edge_embedding = Linear(num_rbf, hidden_dim, rng=rng)
        self.global_embedding = Linear(GLOBAL_FEATURE_DIM, hidden_dim, rng=rng)
        self.blocks = ModuleList(
            [MEGNetBlock(hidden_dim, rng) for _ in range(num_layers)]
        )
        self.node_readout = Set2Set(hidden_dim, processing_steps, rng=rng)
        self.edge_readout = Set2Set(hidden_dim, processing_steps, rng=rng)
        self.output = Linear(5 * hidden_dim, hidden_dim, rng=rng)

    def _global_input(self, batch: GraphBatch) -> np.ndarray:
        if batch.global_attr is not None:
            return np.asarray(batch.global_attr, dtype=np.float64)
        # In-model fallback: the same canonical descriptor the data
        # pipeline attaches under ``global_features=True``, computed per
        # graph from that graph's own species — so batched and
        # single-graph forwards agree bitwise either way.
        rows = [
            global_state_features(batch.species[batch.node_graph == g])
            for g in range(batch.num_graphs)
        ]
        if not rows:
            return np.zeros((0, GLOBAL_FEATURE_DIM), dtype=np.float64)
        return np.stack(rows)

    def forward(self, batch: GraphBatch) -> EncoderOutput:
        v = self.atom_embedding(batch.species)
        if batch.num_edges:
            diff = batch.positions[batch.edge_src] - batch.positions[batch.edge_dst]
            rbf = self.smearing(np.linalg.norm(diff, axis=1))
        else:
            rbf = np.zeros((0, self.smearing.num_rbf))
        e = self.edge_embedding(Tensor(rbf))
        u = self.global_embedding(Tensor(self._global_input(batch)))
        edge_graph = batch.node_graph[batch.edge_src]
        for block in self.blocks:
            v, e, u = block(v, e, u, batch, edge_graph)
        vbar = self.node_readout(v, batch.node_graph, batch.num_graphs)
        ebar = self.edge_readout(e, edge_graph, batch.num_graphs)
        graph = self.output(F.concat([vbar, ebar, u], axis=1))
        return EncoderOutput(graph_embedding=graph, node_embedding=v)
