"""Encoder registry for config-driven construction."""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.egnn import EGNN
from repro.models.encoder import Encoder
from repro.models.gaanet import GeometricAttentionEncoder
from repro.models.megnet import MEGNet
from repro.models.schnet import SchNet

ENCODER_REGISTRY: Dict[str, Callable[..., Encoder]] = {
    "egnn": EGNN,
    "gaanet": GeometricAttentionEncoder,
    "schnet": SchNet,
    "megnet": MEGNet,
}


def build_encoder(name: str, **kwargs) -> Encoder:
    """Instantiate a registered encoder by name."""
    try:
        factory = ENCODER_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown encoder {name!r}; available: {sorted(ENCODER_REGISTRY)}")
    return factory(**kwargs)
