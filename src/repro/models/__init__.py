"""Encoders and output heads.

``EGNN`` is the paper's backbone (Satorras et al.'s equivariant GNN,
Appendix A); ``GeometricAttentionEncoder`` is the point-cloud alternative
the toolkit supports (Sec. 2.1's geometric-algebra-attention line of work).
Both map a :class:`repro.data.GraphBatch` to per-graph embeddings consumed
by task output heads.
"""

from repro.models.encoder import Encoder, EncoderOutput
from repro.models.egnn import EGNN, EGCL
from repro.models.gaanet import GeometricAttentionEncoder
from repro.models.megnet import MEGNet, MEGNetBlock, Set2Set
from repro.models.schnet import SchNet
from repro.models.registry import ENCODER_REGISTRY, build_encoder

__all__ = [
    "Encoder",
    "EncoderOutput",
    "EGNN",
    "EGCL",
    "GeometricAttentionEncoder",
    "MEGNet",
    "MEGNetBlock",
    "Set2Set",
    "SchNet",
    "ENCODER_REGISTRY",
    "build_encoder",
]
