"""SchNet-style continuous-filter convolutional encoder (Schütt et al.).

The toolkit's third encoder family (the paper cites SchNet as the invariant
GNN line of work its model zoo covers).  Each interaction block generates a
filter from a radial-basis expansion of the edge length and modulates the
neighbour features with it:

    m_ij      = (W h_j) * filter(rbf(||x_i - x_j||))
    h_i^{l+1} = h_i + phi( sum_j m_ij )

All quantities are functions of interatomic distances, so node embeddings
are E(3)-invariant like the E(n)-GNN's — but SchNet never updates
coordinates, making it the cheaper choice when no equivariant vector
channel is needed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.data.structures import GraphBatch
from repro.kernels import dispatch as K
from repro.models.encoder import Encoder, EncoderOutput
from repro.nn import Embedding, Linear, ModuleList, Sequential
from repro.nn.module import Module


class ShiftedSoftplus(Module):
    """softplus(x) - log 2: SchNet's smooth activation, zero at zero."""

    def forward(self, x: Tensor) -> Tensor:
        return F.softplus(x) - float(np.log(2.0))

    def __repr__(self) -> str:
        return "ShiftedSoftplus()"


class GaussianSmearing:
    """Radial-basis expansion of edge lengths (the filter-network input)."""

    def __init__(self, num_rbf: int = 16, r_max: float = 6.0):
        if num_rbf < 2:
            raise ValueError("num_rbf must be >= 2")
        self.num_rbf = num_rbf
        self.centers = np.linspace(0.0, r_max, num_rbf)
        self.gamma = 1.0 / (2.0 * (self.centers[1] - self.centers[0]) ** 2)

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        d = np.asarray(distances, dtype=np.float64).reshape(-1, 1)
        return np.exp(-self.gamma * (d - self.centers[None, :]) ** 2)


class SchNetInteraction(Module):
    """One continuous-filter convolution block with residual update."""

    def __init__(self, hidden_dim: int, num_rbf: int, rng: np.random.Generator):
        super().__init__()
        self.project = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)
        self.filter_net = Sequential(
            Linear(num_rbf, hidden_dim, rng=rng),
            ShiftedSoftplus(),
            Linear(hidden_dim, hidden_dim, rng=rng),
        )
        self.update = Sequential(
            Linear(hidden_dim, hidden_dim, rng=rng),
            ShiftedSoftplus(),
            Linear(hidden_dim, hidden_dim, rng=rng),
        )

    def forward(
        self,
        h: Tensor,
        rbf: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
    ) -> Tensor:
        # No early-exit on an empty edge list: a node with no neighbours
        # still receives ``h + update(0)`` (the update MLP has biases), and
        # that must hold whether the node's graph is forwarded alone or
        # inside a batch where *other* graphs contribute edges — otherwise
        # batched and single-graph inference disagree (see repro.serving's
        # bit-identity contract).
        num_nodes = h.shape[0]
        filters = self.filter_net(Tensor(rbf))
        neighbours = K.index_select(self.project(h), edge_dst)
        agg = K.mul_segment_sum(neighbours, filters, edge_src, num_nodes)
        return h + self.update(agg)


class SchNet(Encoder):
    """Species embedding, N interaction blocks, sum pooling."""

    def __init__(
        self,
        hidden_dim: int = 64,
        num_layers: int = 3,
        num_rbf: int = 16,
        r_max: float = 6.0,
        num_species: int = 100,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.embed_dim = hidden_dim
        self.smearing = GaussianSmearing(num_rbf=num_rbf, r_max=r_max)
        self.atom_embedding = Embedding(num_species, hidden_dim, rng=rng)
        self.interactions = ModuleList(
            [SchNetInteraction(hidden_dim, num_rbf, rng) for _ in range(num_layers)]
        )

    def forward(self, batch: GraphBatch) -> EncoderOutput:
        h = self.atom_embedding(batch.species)
        if batch.num_edges:
            diff = batch.positions[batch.edge_src] - batch.positions[batch.edge_dst]
            rbf = self.smearing(np.linalg.norm(diff, axis=1))
        else:
            rbf = np.zeros((0, self.smearing.num_rbf))
        for block in self.interactions:
            h = block(h, rbf, batch.edge_src, batch.edge_dst)
        graph = K.segment_sum(h, batch.node_graph, batch.num_graphs)
        return EncoderOutput(graph_embedding=graph, node_embedding=h)
