"""Geometric-algebra-style attention encoder for point clouds.

The toolkit's point-cloud track (paper Sec. 2.1) follows Spellings'
geometric algebra attention networks: permutation-covariant attention over
point tuples whose scores are functions of rotation-invariant geometric
products.  This implementation keeps the architecture's defining structure
— all-pairs attention inside each cloud, invariant pair geometry (squared
distance expanded in radial basis functions, the pair's scalar product with
the centroid frame), dense compute with no imposed graph — while replacing
full multivector algebra with its scalar invariants, which is exactly the
information the scalar channel of the multivector product carries for pairs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.data.structures import GraphBatch
from repro.kernels import dispatch as K
from repro.models.encoder import Encoder, EncoderOutput
from repro.nn import Embedding, Linear, ModuleList, Sequential, SiLU
from repro.nn.module import Module


def all_pairs_within_graphs(node_graph: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dense pair index (i, j), i != j, restricted to nodes of the same graph.

    The attention encoder imposes no neighbourhood structure — pairs are
    enumerated per cloud, the "bypass graph construction" property the paper
    credits point-cloud models with.
    """
    node_graph = np.asarray(node_graph, dtype=np.int64)
    src_list, dst_list = [], []
    for g in np.unique(node_graph):
        nodes = np.nonzero(node_graph == g)[0]
        n = len(nodes)
        if n < 2:
            continue
        grid_i, grid_j = np.meshgrid(nodes, nodes, indexing="ij")
        mask = ~np.eye(n, dtype=bool)
        src_list.append(grid_i[mask])
        dst_list.append(grid_j[mask])
    if not src_list:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return np.concatenate(src_list), np.concatenate(dst_list)


class GeometricPairFeatures:
    """Rotation/translation-invariant features of a point pair.

    For points p_i, p_j with cloud centroid c:  ||p_i - p_j||^2 expanded in
    ``num_rbf`` Gaussians, plus (p_i - c)·(p_j - c) and the two centroid
    distances — the scalar parts of the relevant geometric products.
    """

    def __init__(self, num_rbf: int = 8, r_max: float = 6.0):
        self.num_rbf = num_rbf
        self.centers = np.linspace(0.0, r_max, num_rbf)
        self.width = r_max / max(num_rbf - 1, 1)

    @property
    def dim(self) -> int:
        return self.num_rbf + 3

    def __call__(
        self,
        positions: np.ndarray,
        node_graph: np.ndarray,
        num_graphs: int,
        src: np.ndarray,
        dst: np.ndarray,
    ) -> np.ndarray:
        counts = np.bincount(node_graph, minlength=num_graphs).astype(np.float64)
        sums = np.zeros((num_graphs, 3))
        np.add.at(sums, node_graph, positions)
        centroids = sums / np.maximum(counts, 1.0)[:, None]
        rel = positions - centroids[node_graph]
        d = np.linalg.norm(positions[src] - positions[dst], axis=1, keepdims=True)
        rbf = np.exp(-((d - self.centers[None, :]) ** 2) / (2.0 * self.width**2))
        dots = (rel[src] * rel[dst]).sum(axis=1, keepdims=True)
        norms_i = np.linalg.norm(rel[src], axis=1, keepdims=True)
        norms_j = np.linalg.norm(rel[dst], axis=1, keepdims=True)
        return np.concatenate([rbf, dots, norms_i, norms_j], axis=1)


class GeometricAttentionLayer(Module):
    """One attention block: scores and values from (h_i, h_j, geometry)."""

    def __init__(
        self,
        hidden_dim: int,
        geom_dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        pair_in = 2 * hidden_dim + geom_dim
        self.score = Sequential(
            Linear(pair_in, hidden_dim, rng=rng), SiLU(), Linear(hidden_dim, 1, rng=rng)
        )
        self.value = Sequential(
            Linear(pair_in, hidden_dim, rng=rng), SiLU(), Linear(hidden_dim, hidden_dim, rng=rng)
        )
        self.update = Sequential(
            Linear(2 * hidden_dim, hidden_dim, rng=rng), SiLU(), Linear(hidden_dim, hidden_dim, rng=rng)
        )

    def forward(
        self,
        h: Tensor,
        geom: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
    ) -> Tensor:
        num_nodes = h.shape[0]
        if len(src) == 0:
            pooled = Tensor(np.zeros((num_nodes, h.shape[1])))
        else:
            pair = K.gather_pair_concat(h, src, dst, [Tensor(geom)])
            alpha = F.segment_softmax(self.score(pair).squeeze(-1), src, num_nodes)
            values = self.value(pair)
            pooled = K.mul_segment_sum(values, alpha.unsqueeze(-1), src, num_nodes)
        return h + self.update(F.concat([h, pooled], axis=1))


class GeometricAttentionEncoder(Encoder):
    """Point-cloud encoder: species embedding, N attention blocks, sum pool."""

    def __init__(
        self,
        hidden_dim: int = 128,
        num_layers: int = 2,
        num_species: int = 100,
        num_rbf: int = 8,
        r_max: float = 6.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.embed_dim = hidden_dim
        self.features = GeometricPairFeatures(num_rbf=num_rbf, r_max=r_max)
        self.atom_embedding = Embedding(num_species, hidden_dim, rng=rng)
        self.layers = ModuleList(
            [
                GeometricAttentionLayer(hidden_dim, self.features.dim, rng=rng)
                for _ in range(num_layers)
            ]
        )

    def forward(self, batch: GraphBatch) -> EncoderOutput:
        src, dst = all_pairs_within_graphs(batch.node_graph)
        geom = self.features(batch.positions, batch.node_graph, batch.num_graphs, src, dst)
        h = self.atom_embedding(batch.species)
        for layer in self.layers:
            h = layer(h, geom, src, dst)
        graph = K.segment_sum(h, batch.node_graph, batch.num_graphs)
        return EncoderOutput(graph_embedding=graph, node_embedding=h)
