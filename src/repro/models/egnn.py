"""E(n)-equivariant graph neural network (Satorras et al., 2022).

The encoder used throughout the paper (Appendix A): atom embeddings from a
learnable table, three EGCL layers with residual connections, SiLU
activations, 256-wide node/message MLPs, 64-wide coordinate MLPs, and
size-extensive sum pooling over nodes.

Equivariance comes from using only relative geometric quantities: messages
see the squared edge length, coordinate updates move along edge difference
vectors, so node embeddings are E(3)-*invariant* while updated coordinates
are E(3)-*equivariant* — properties the test suite checks under random
rotations, translations, reflections and permutations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.data.structures import GraphBatch
from repro.kernels import dispatch as K
from repro.models.encoder import Encoder, EncoderOutput
from repro.nn import Embedding, Linear, ModuleList, Sequential, SiLU
from repro.nn.module import Module


class EGCL(Module):
    """One Equivariant Graph Convolutional Layer.

    Implements Eqs. (1)-(2) of the paper's Appendix A:

        m_ij      = phi_e(h_i, h_j, ||x_i - x_j||^2, a_ij)
        x_i^{l+1} = x_i + C * sum_{j != i} (x_i - x_j) phi_x(m_ij)
        h_i^{l+1} = phi_h(h_i, sum_{j != i} m_ij)

    with C the mean-normalizer over incoming edges.  The phi_x output is
    squashed through tanh — the standard stabilization for coordinate
    updates on dense point clouds.
    """

    def __init__(
        self,
        hidden_dim: int,
        message_dim: Optional[int] = None,
        position_dim: int = 64,
        edge_attr_dim: int = 0,
        update_positions: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        message_dim = message_dim or hidden_dim
        self.hidden_dim = hidden_dim
        self.update_positions = update_positions
        edge_in = 2 * hidden_dim + 1 + edge_attr_dim
        self.phi_e = Sequential(
            Linear(edge_in, message_dim, rng=rng),
            SiLU(),
            Linear(message_dim, message_dim, rng=rng),
            SiLU(),
        )
        self.phi_x = Sequential(
            Linear(message_dim, position_dim, rng=rng),
            SiLU(),
            Linear(position_dim, 1, rng=rng),
        )
        self.phi_h = Sequential(
            Linear(hidden_dim + message_dim, hidden_dim, rng=rng),
            SiLU(),
            Linear(hidden_dim, hidden_dim, rng=rng),
        )

    def forward(
        self,
        h: Tensor,
        x: Tensor,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_attr: Optional[np.ndarray] = None,
    ):
        num_nodes = h.shape[0]
        if len(edge_src) == 0:
            # Isolated nodes: only the self-path of phi_h applies.
            zero_msg = Tensor(np.zeros((num_nodes, self.phi_x[0].in_features)))
            h_new = self.phi_h(F.concat([h, zero_msg], axis=1))
            return h + h_new, x

        diff = K.gather_diff(x, edge_src, edge_dst)
        sq_dist = K.row_sq_norm(diff)
        tails = [sq_dist]
        if edge_attr is not None:
            tails.append(Tensor(edge_attr))
        m = self.phi_e(K.gather_pair_concat(h, edge_src, edge_dst, tails))

        if self.update_positions:
            scale = F.tanh(self.phi_x(m))
            x = x + F.segment_mean(diff * scale, edge_src, num_nodes)

        agg = K.segment_sum(m, edge_src, num_nodes)
        h_new = self.phi_h(F.concat([h, agg], axis=1))
        return h + h_new, x


class EGNN(Encoder):
    """Stacked EGCL encoder with atom-embedding input and sum pooling.

    Parameters mirror Appendix A; ``hidden_dim`` defaults to 256 as in the
    paper but is configurable so tests and CPU benches can run small.
    """

    def __init__(
        self,
        hidden_dim: int = 256,
        num_layers: int = 3,
        position_dim: int = 64,
        num_species: int = 100,
        edge_attr_dim: int = 0,
        update_positions: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.embed_dim = hidden_dim
        self.num_layers = num_layers
        self.update_positions = update_positions
        self.atom_embedding = Embedding(num_species, hidden_dim, rng=rng)
        self.layers = ModuleList(
            [
                EGCL(
                    hidden_dim,
                    position_dim=position_dim,
                    edge_attr_dim=edge_attr_dim,
                    update_positions=update_positions,
                    rng=rng,
                )
                for _ in range(num_layers)
            ]
        )

    def forward(self, batch: GraphBatch) -> EncoderOutput:
        h = self.atom_embedding(batch.species)
        x0 = Tensor(batch.positions)
        x = x0
        for layer in self.layers:
            h, x = layer(h, x, batch.edge_src, batch.edge_dst, batch.edge_attr)
        graph = K.segment_sum(h, batch.node_graph, batch.num_graphs)
        update = (x - x0) if self.update_positions else None
        return EncoderOutput(
            graph_embedding=graph, node_embedding=h, coordinate_update=update
        )
