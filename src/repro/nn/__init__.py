"""Neural network modules built on :mod:`repro.autograd`.

A minimal, PyTorch-flavoured module system: parameters are
``Tensor(requires_grad=True)`` leaves registered on ``Module`` instances,
``state_dict``/``load_state_dict`` round-trip weights, and ``train``/``eval``
toggle dropout and normalization behaviour.
"""

from repro.nn.module import Module, Parameter
from repro.nn.containers import Sequential, ModuleList, ModuleDict
from repro.nn.linear import Linear
from repro.nn.embedding import Embedding
from repro.nn.activations import SiLU, SELU, ReLU, Tanh, Sigmoid, Identity, Softplus
from repro.nn.norm import RMSNorm, LayerNorm, BatchNorm1d
from repro.nn.dropout import Dropout
from repro.nn.mlp import MLP, ResidualMLPBlock, OutputHead
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "ModuleDict",
    "Linear",
    "Embedding",
    "SiLU",
    "SELU",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Softplus",
    "RMSNorm",
    "LayerNorm",
    "BatchNorm1d",
    "Dropout",
    "MLP",
    "ResidualMLPBlock",
    "OutputHead",
    "init",
]
