"""Affine layers."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.kernels import dispatch as K
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """``y = x @ W + b`` with weights stored as ``(in_features, out_features)``.

    The storage layout keeps the forward pass a single row-major GEMM, which
    is the cache-friendly orientation for batched inference on CPU.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_features,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        # Dispatches to the fused matmul+bias kernel when enabled; the
        # reference path is the original two-node composition.
        return K.linear_act(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )
