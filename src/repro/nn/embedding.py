"""Learnable embedding tables (atom-type embeddings in the E(n)-GNN)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.kernels import dispatch as K
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    The paper's encoder feeds atomic numbers through exactly such a table;
    gradients scatter-add back into the selected rows only.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 1.0, size=(num_embeddings, embedding_dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or (ids.size and ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"[{ids.min()}, {ids.max()}]"
            )
        return K.index_select(self.weight, ids)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"
