"""Normalization layers.

The paper's output heads use RMSNorm (Zhang & Sennrich) specifically because
it behaves under the irregular batches produced by multi-task, multi-dataset
training, where BatchNorm's running statistics are unreliable (Appendix A).
Both are implemented so the ablation bench can compare them.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.kernels import dispatch as K
from repro.nn.module import Module, Parameter


class RMSNorm(Module):
    """Root-mean-square layer normalization: ``x / rms(x) * g``."""

    def __init__(self, dim: int, eps: float = 1e-8) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))

    def forward(self, x: Tensor) -> Tensor:
        return K.rms_norm(x, self.weight, self.eps)

    def __repr__(self) -> str:
        return f"RMSNorm({self.dim}, eps={self.eps})"


class LayerNorm(Module):
    """Standard layer normalization with learnable affine."""

    def __init__(self, dim: int, eps: float = 1e-8) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return K.layer_norm(x, self.weight, self.bias, self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.dim}, eps={self.eps})"


class BatchNorm1d(Module):
    """Batch normalization over axis 0 with running statistics.

    Included as the baseline the paper moved away from; the ablation bench
    shows its failure mode on irregular multi-task batches (including
    batch-size-1 batches, where training-mode variance degenerates).
    """

    def __init__(self, dim: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))
        self.register_buffer("running_mean", np.zeros(dim))
        self.register_buffer("running_var", np.ones(dim))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            # Replaying a recorded plan would skip this running-statistics
            # update (it mutates module buffers outside the tape), so a
            # training-mode BatchNorm step is never compiled.
            from repro.autograd.tensor import taint_trace

            taint_trace("BatchNorm1d: training forward mutates running stats")
            mu = x.mean(axis=0, keepdims=True)
            centered = x - mu
            var = (centered * centered).mean(axis=0, keepdims=True)
            self.set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * mu.data.ravel(),
            )
            n = max(x.shape[0], 2)
            unbiased = var.data.ravel() * n / (n - 1)
            self.set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * unbiased,
            )
            normed = centered / F.sqrt(var + self.eps)
        else:
            normed = (x - Tensor(self.running_mean)) / Tensor(
                np.sqrt(self.running_var + self.eps)
            )
        return normed * self.weight + self.bias

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.dim}, eps={self.eps}, momentum={self.momentum})"


NORMS = {"rmsnorm": RMSNorm, "layernorm": LayerNorm, "batchnorm": BatchNorm1d}


def get_norm(name: str, dim: int) -> Module:
    """Instantiate a normalization layer by configuration string."""
    try:
        return NORMS[name.lower()](dim)
    except KeyError:
        raise ValueError(f"unknown norm {name!r}; choose from {sorted(NORMS)}")
