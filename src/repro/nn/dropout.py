"""Dropout regularization."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.nn.module import Module


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    The output heads in the paper use p = 0.2 (Appendix A).  An explicit
    generator keeps mask sampling reproducible under a fixed seed.
    """

    def __init__(self, p: float = 0.2, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
