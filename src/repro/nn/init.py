"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is reproducible and independent of global RNG state — the same
discipline the toolkit needs for pretrain-vs-scratch comparisons to be fair.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kaiming_uniform",
    "xavier_uniform",
    "lecun_normal",
    "uniform",
    "normal",
    "zeros",
    "ones",
]


def kaiming_uniform(shape, rng: np.random.Generator, gain: float = math.sqrt(5.0)) -> np.ndarray:
    """He-style uniform init (PyTorch ``Linear`` default)."""
    # Matches torch.nn.init.kaiming_uniform_ with a=sqrt(5) on (fan_in, fan_out)
    # weights: std = sqrt(1/3)/sqrt(fan_in), bound = sqrt(3)*std = 1/sqrt(fan_in).
    fan_in = shape[0]
    bound = 1.0 / math.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform init: bound = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def lecun_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """LeCun normal — the init SELU's self-normalizing property assumes."""
    fan_in = shape[0]
    return rng.normal(0.0, math.sqrt(1.0 / fan_in), size=shape)


def uniform(shape, rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Uniform init on [low, high]."""
    return rng.uniform(low, high, size=shape)


def normal(shape, rng: np.random.Generator, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """Gaussian init."""
    return rng.normal(mean, std, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    """All-ones init (norm gains)."""
    return np.ones(shape, dtype=np.float64)
