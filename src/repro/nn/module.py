"""Base ``Module`` and ``Parameter`` classes.

Modules auto-register parameters, buffers, and submodules through attribute
assignment, mirroring the PyTorch idiom the original toolkit is written in.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.autograd import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable leaf of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network components.

    Subclasses define ``forward`` and assign :class:`Parameter`,
    :class:`Module`, or buffer (plain ``numpy`` array via
    :meth:`register_buffer`) attributes in ``__init__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace a registered buffer's contents."""
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total learnable scalar count — used by throughput/FLOP models."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Train / eval, gradients
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def requires_grad_(self, flag: bool = True) -> "Module":
        """Freeze/unfreeze — used by fine-tuning (encoder freezing ablation)."""
        for param in self.parameters():
            param.requires_grad = flag
        return self

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {name: mod for name, mod in self._iter_buffer_owners()}
        missing = []
        for name, param in own_params.items():
            if name in state:
                if state[name].shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{state[name].shape} vs {param.data.shape}"
                    )
                param.data = np.asarray(state[name], dtype=np.float64).copy()
            elif strict:
                missing.append(name)
        for name, (module, local) in own_buffers.items():
            if name in state:
                module.set_buffer(local, state[name])
            elif strict:
                missing.append(name)
        if strict and missing:
            raise KeyError(f"missing keys in state dict: {missing}")

    def _iter_buffer_owners(self, prefix: str = ""):
        for local, _ in self._buffers.items():
            yield f"{prefix}{local}", (self, local)
        for name, module in self._modules.items():
            yield from module._iter_buffer_owners(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            sub = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {sub}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{self.__class__.__name__}()"
