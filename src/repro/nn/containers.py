"""Module containers: Sequential, ModuleList, ModuleDict."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.autograd import Tensor
from repro.kernels import dispatch as K
from repro.nn.module import Module


class Sequential(Module):
    """Apply modules in order.

    When fused kernels are enabled, adjacent (Linear, activation) pairs are
    collapsed into one fused ``linear_act`` tape node; any other module —
    and the reference path — runs exactly as written.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
            self._order.append(f"layer{i}")

    def forward(self, x):
        modules = [getattr(self, name) for name in self._order]
        count = len(modules)
        i = 0
        while i < count:
            module = modules[i]
            if (
                K.fused_enabled()
                and type(module).__name__ == "Linear"
                and isinstance(x, Tensor)
                and x.data.ndim >= 2
                and i + 1 < count
            ):
                act = K.activation_key(modules[i + 1])
                if act is not None:
                    x = K.linear_act(x, module.weight, module.bias, act=act)
                    i += 2
                    continue
            x = module(x)
            i += 1
        return x

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])


class ModuleList(Module):
    """An indexable list of submodules (e.g. the stack of EGNN layers)."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = f"item{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")


class ModuleDict(Module):
    """A string-keyed mapping of submodules (e.g. per-target output heads)."""

    def __init__(self, modules: Dict[str, Module] | None = None) -> None:
        super().__init__()
        self._keys: List[str] = []
        if modules:
            for key, module in modules.items():
                self[key] = module

    def __setitem__(self, key: str, module: Module) -> None:
        attr = f"entry_{key}"
        setattr(self, attr, module)
        if key not in self._keys:
            self._keys.append(key)

    def __getitem__(self, key: str) -> Module:
        if key not in self._keys:
            raise KeyError(key)
        return getattr(self, f"entry_{key}")

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def keys(self) -> List[str]:
        return list(self._keys)

    def items(self):
        return [(k, self[k]) for k in self._keys]

    def values(self):
        return [self[k] for k in self._keys]

    def __len__(self) -> int:
        return len(self._keys)

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleDict is a container and cannot be called")
