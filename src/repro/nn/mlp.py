"""Multilayer perceptrons and the paper's residual output-head blocks.

Appendix A: each output head is a sequence of residual blocks, each block
being ``MLP -> non-linearity -> normalization -> dropout`` with the block
output added to its input.  Heads default to hidden width 256, SELU
activation, RMSNorm, and dropout 0.2.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd import Tensor
from repro.kernels import dispatch as K
from repro.nn.activations import get_activation
from repro.nn.containers import ModuleList, Sequential
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import get_norm


class MLP(Module):
    """Plain feed-forward stack: Linear (+ activation) per hidden layer."""

    def __init__(
        self,
        in_dim: int,
        hidden_dims: Sequence[int],
        out_dim: int,
        activation: str = "silu",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        dims = [in_dim, *hidden_dims, out_dim]
        layers = []
        for i, (a, b) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(a, b, rng=rng))
            if i < len(dims) - 2:
                layers.append(get_activation(activation))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class ResidualMLPBlock(Module):
    """One output-head block: ``x + dropout(norm(act(linear(x))))``."""

    def __init__(
        self,
        dim: int,
        activation: str = "selu",
        norm: str = "rmsnorm",
        dropout: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.linear = Linear(dim, dim, rng=rng)
        self.activation = get_activation(activation)
        self.norm = get_norm(norm, dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        act = K.activation_key(self.activation)
        if (
            K.fused_enabled()
            and act is not None
            and isinstance(x, Tensor)
            and x.data.ndim >= 2
        ):
            h = K.linear_act(x, self.linear.weight, self.linear.bias, act=act)
        else:
            h = self.activation(self.linear(x))
        h = self.norm(h)
        h = self.dropout(h)
        return x + h


class OutputHead(Module):
    """Task output head: input projection, N residual blocks, final linear.

    ``num_blocks`` is 3 for single-task training and 6 for the multi-task,
    multi-dataset setting, matching Appendix A.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int = 1,
        hidden_dim: int = 256,
        num_blocks: int = 3,
        activation: str = "selu",
        norm: str = "rmsnorm",
        dropout: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.project = Linear(in_dim, hidden_dim, rng=rng)
        self.blocks = ModuleList(
            [
                ResidualMLPBlock(hidden_dim, activation, norm, dropout, rng=rng)
                for _ in range(num_blocks)
            ]
        )
        self.readout = Linear(hidden_dim, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = self.project(x)
        for block in self.blocks:
            h = block(h)
        return self.readout(h)
