"""Activation modules wrapping :mod:`repro.autograd.functional`."""

from __future__ import annotations

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.nn.module import Module


class SiLU(Module):
    """Global activation used throughout the paper's encoder."""

    def forward(self, x: Tensor) -> Tensor:
        return F.silu(x)

    def __repr__(self) -> str:
        return "SiLU()"


class SELU(Module):
    """Self-normalizing activation used by the output heads (Appendix A)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.selu(x)

    def __repr__(self) -> str:
        return "SELU()"


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)

    def __repr__(self) -> str:
        return "Sigmoid()"


class Softplus(Module):
    """Smooth ReLU: log(1 + exp(x))."""

    def forward(self, x: Tensor) -> Tensor:
        return F.softplus(x)

    def __repr__(self) -> str:
        return "Softplus()"


class Identity(Module):
    """Pass-through (placeholder activation in configs)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


ACTIVATIONS = {
    "silu": SiLU,
    "selu": SELU,
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "softplus": Softplus,
    "identity": Identity,
}


def get_activation(name: str) -> Module:
    """Instantiate an activation by configuration string."""
    try:
        return ACTIVATIONS[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}")
