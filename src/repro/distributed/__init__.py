"""Distributed-training substrate.

The paper trains with MPI-based distributed data parallelism on up to 32
dual-socket Xeon nodes.  This subpackage reproduces that stack on a single
process:

* :mod:`repro.distributed.comm` — ``SimComm``, an in-process MPI-style
  communicator whose collectives operate across simulated ranks and meter
  the bytes they move.
* :mod:`repro.distributed.ddp` — gradient-averaging data parallelism over
  rank shards; mathematically identical to N-rank DDP (same effective
  batch, same averaged gradient), which is what makes the training-dynamics
  experiments exact rather than approximate.
* :mod:`repro.distributed.perf_model` — an analytic cluster model (node
  FLOP/s, HDR200-class interconnect, ring allreduce) that converts measured
  single-worker throughput into scale-out throughput for Fig. 2.
* :mod:`repro.distributed.affinity` — the NUMA-domain worker-placement
  policy from Sec. 4.1 (map-by-NUMA, pin-to-core, 16 workers/node).
"""

from repro.distributed.comm import SimComm
from repro.distributed.ddp import DDPStrategy, SingleProcessStrategy, Strategy
from repro.distributed.perf_model import (
    NodeSpec,
    InterconnectSpec,
    ClusterSpec,
    ENDEAVOUR,
    ThroughputModel,
)
from repro.distributed.affinity import AffinityPlanner, WorkerPlacement

__all__ = [
    "SimComm",
    "Strategy",
    "DDPStrategy",
    "SingleProcessStrategy",
    "NodeSpec",
    "InterconnectSpec",
    "ClusterSpec",
    "ENDEAVOUR",
    "ThroughputModel",
    "AffinityPlanner",
    "WorkerPlacement",
]
