"""Distributed-training substrate.

The paper trains with MPI-based distributed data parallelism on up to 32
dual-socket Xeon nodes.  This subpackage reproduces that stack on a single
process:

* :mod:`repro.distributed.comm` — ``SimComm``, an in-process MPI-style
  communicator whose collectives operate across simulated ranks and meter
  the bytes they move.  With a fault injector attached, its allreduce runs
  under retry-with-exponential-backoff semantics on a simulated clock.
* :mod:`repro.distributed.ddp` — gradient-averaging data parallelism over
  rank shards; mathematically identical to N-rank DDP (same effective
  batch, same averaged gradient), which is what makes the training-dynamics
  experiments exact rather than approximate.  Handles rank crashes either
  elastically (drop the rank, re-shard, re-scale the LR) or by escalating
  to the trainer's checkpoint recovery.
* :mod:`repro.distributed.faults` — deterministic, seeded fault injection
  (crashes, timeouts, corrupted gradients) plus the retry policy.
* :mod:`repro.distributed.events` — the structured fault/recovery event
  log and the simulated clock every backoff waits on.
* :mod:`repro.distributed.perf_model` — an analytic cluster model (node
  FLOP/s, HDR200-class interconnect, ring allreduce) that converts measured
  single-worker throughput into scale-out throughput for Fig. 2, plus a
  failure-aware variant with Young/Daly checkpoint-cadence accounting.
* :mod:`repro.distributed.affinity` — the NUMA-domain worker-placement
  policy from Sec. 4.1 (map-by-NUMA, pin-to-core, 16 workers/node).
* :mod:`repro.distributed.sharding` — ZeRO-style gradient bucketing
  (fixed-byte flat buckets reduced via ``reduce_scatter``/``allgather``)
  and optimizer-state sharding (``ShardedAdam``/``ShardedAdamW``, bit-
  identical to dense Adam in no-fault runs), plus bfloat16 payload-
  compression emulation with a bounded round-trip error.
"""

from repro.distributed.comm import SimComm, TrafficLog
from repro.distributed.ddp import DDPStrategy, SingleProcessStrategy, Strategy
from repro.distributed.events import EventLog, FaultEvent, SimClock
from repro.distributed.faults import (
    AllreduceTimeout,
    ChaosEngine,
    CommFault,
    FaultInjector,
    FaultProfile,
    GradientCorruption,
    RankCrash,
    RetryPolicy,
    StepFailure,
)
from repro.distributed.perf_model import (
    NodeSpec,
    InterconnectSpec,
    ClusterSpec,
    ENDEAVOUR,
    BucketedThroughputModel,
    FailureAwareThroughputModel,
    FailureSpec,
    ShardingSpec,
    ThroughputModel,
)
from repro.distributed.affinity import AffinityPlanner, WorkerPlacement
from repro.distributed.sharding import (
    BF16_RELATIVE_ERROR_BOUND,
    Bucket,
    BucketSegment,
    GradientBucketer,
    ShardedAdam,
    ShardedAdamW,
    bf16_compress,
    bf16_decompress,
    bf16_roundtrip,
    bf16_roundtrip_error,
)

__all__ = [
    "BF16_RELATIVE_ERROR_BOUND",
    "Bucket",
    "BucketSegment",
    "GradientBucketer",
    "ShardedAdam",
    "ShardedAdamW",
    "bf16_compress",
    "bf16_decompress",
    "bf16_roundtrip",
    "bf16_roundtrip_error",
    "SimComm",
    "TrafficLog",
    "Strategy",
    "DDPStrategy",
    "SingleProcessStrategy",
    "EventLog",
    "FaultEvent",
    "SimClock",
    "AllreduceTimeout",
    "CommFault",
    "ChaosEngine",
    "FaultInjector",
    "FaultProfile",
    "GradientCorruption",
    "RankCrash",
    "RetryPolicy",
    "StepFailure",
    "NodeSpec",
    "InterconnectSpec",
    "ClusterSpec",
    "ENDEAVOUR",
    "BucketedThroughputModel",
    "FailureAwareThroughputModel",
    "FailureSpec",
    "ShardingSpec",
    "ThroughputModel",
    "AffinityPlanner",
    "WorkerPlacement",
]
