"""Analytic cluster performance model for the scale-out study (Fig. 2).

The reproduction host has one core, so multi-node wall-clock cannot be
measured; instead this model converts a *measured* single-worker training
rate into projected scale-out throughput, with communication costed by a
ring-allreduce over an HDR200-class fabric.  The model captures exactly the
effect the paper reports: with 16 workers per node and per-step gradient
payloads of a few MB against a 200 Gb/s interconnect, the allreduce is a
sub-percent overhead and throughput scales linearly to 512 ranks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class NodeSpec:
    """One compute node.

    Defaults describe the paper's Endeavour nodes: dual Intel Xeon Platinum
    8480+ (2 x 56 physical cores), four NUMA domains, 256 GB DDR5-4800.
    """

    name: str = "xeon-8480+"
    sockets: int = 2
    cores_per_socket: int = 56
    numa_domains: int = 4
    memory_gb: int = 256
    memory_bandwidth_gbs: float = 307.0  # 8 channels DDR5-4800 x 2 sockets
    workers: int = 16  # chosen to balance FLOP/s vs bandwidth per socket

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def threads_per_worker(self) -> int:
        """OMP_NUM_THREADS under the paper's pinning policy."""
        return self.physical_cores // self.workers


@dataclass(frozen=True)
class InterconnectSpec:
    """Fabric between nodes; defaults approximate Mellanox HDR200."""

    name: str = "hdr200"
    bandwidth_gbs: float = 25.0  # 200 Gb/s
    latency_us: float = 1.5


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: node type, fabric, and node count."""

    node: NodeSpec
    interconnect: InterconnectSpec
    max_nodes: int = 32


#: The paper's platform (Sec. 4.1).
ENDEAVOUR = ClusterSpec(node=NodeSpec(), interconnect=InterconnectSpec(), max_nodes=32)


class ThroughputModel:
    """Project DDP training throughput from single-worker measurements.

    Parameters
    ----------
    per_worker_samples_per_s:
        Measured single-worker training rate (forward+backward+step), the
        quantity the scale-out bench measures live.
    gradient_bytes:
        Per-step allreduce payload (model parameters x 8 bytes for fp64,
        x 4 in the paper's fp32 — configurable through this argument).
    cluster:
        Hardware description; defaults to the paper's platform.
    """

    def __init__(
        self,
        per_worker_samples_per_s: float,
        batch_per_worker: int,
        gradient_bytes: int,
        cluster: ClusterSpec = ENDEAVOUR,
    ):
        if per_worker_samples_per_s <= 0:
            raise ValueError("per-worker rate must be positive")
        if batch_per_worker < 1:
            raise ValueError("batch per worker must be >= 1")
        self.rate = per_worker_samples_per_s
        self.batch = batch_per_worker
        self.gradient_bytes = gradient_bytes
        self.cluster = cluster

    # ------------------------------------------------------------------ #
    def allreduce_seconds(self, world_size: int) -> float:
        """Ring allreduce time across nodes.

        Intra-node reduction over shared memory is folded into a small fixed
        cost; the inter-node ring moves 2 (M-1)/M x payload per node for M
        participating nodes, plus per-hop latency.
        """
        if world_size <= 1:
            return 0.0
        workers_per_node = self.cluster.node.workers
        nodes = max(1, math.ceil(world_size / workers_per_node))
        payload = self.gradient_bytes
        intra = 2e-5  # shared-memory reduction, ~tens of microseconds
        if nodes == 1:
            return intra
        bw = self.cluster.interconnect.bandwidth_gbs * 1e9
        lat = self.cluster.interconnect.latency_us * 1e-6
        ring = 2.0 * (nodes - 1) / nodes * payload / bw
        hops = 2 * (nodes - 1)
        return intra + ring + hops * lat

    def step_seconds(self, world_size: int) -> float:
        """One synchronous DDP step: compute plus (non-overlapped) allreduce."""
        compute = self.batch / self.rate
        return compute + self.allreduce_seconds(world_size)

    def samples_per_second(self, world_size: int) -> float:
        """Aggregate training throughput at ``world_size`` ranks."""
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        return world_size * self.batch / self.step_seconds(world_size)

    def epoch_seconds(self, world_size: int, dataset_size: int) -> float:
        """Time to traverse ``dataset_size`` samples once."""
        return dataset_size / self.samples_per_second(world_size)

    def scaling_efficiency(self, world_size: int) -> float:
        """Throughput relative to perfect linear scaling (1.0 = ideal)."""
        ideal = world_size * self.rate
        return self.samples_per_second(world_size) / ideal

    def sweep(self, world_sizes: List[int], dataset_size: int) -> List[Dict[str, float]]:
        """Fig. 2's series: one row per worker count."""
        rows = []
        for n in world_sizes:
            rows.append(
                {
                    "workers": n,
                    "nodes": max(1, math.ceil(n / self.cluster.node.workers)),
                    "samples_per_s": self.samples_per_second(n),
                    "epoch_minutes": self.epoch_seconds(n, dataset_size) / 60.0,
                    "efficiency": self.scaling_efficiency(n),
                }
            )
        return rows


# --------------------------------------------------------------------------- #
# Failure-aware throughput
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FailureSpec:
    """Failure and recovery characteristics of one worker rank.

    Defaults describe a healthy production cluster: per-rank MTBF of
    ~10k hours (a 512-rank job then fails about once every 19 hours),
    two minutes to restart and rejoin, and npz checkpoints that take
    seconds to write at bench-scale model sizes.
    """

    rank_mtbf_hours: float = 10_000.0
    recovery_seconds: float = 120.0
    checkpoint_write_seconds: float = 15.0

    def job_mtbf_seconds(self, world_size: int) -> float:
        """Mean time between failures of the whole job (any rank failing)."""
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        return self.rank_mtbf_hours * 3600.0 / world_size


class FailureAwareThroughputModel:
    """Throughput projection that accounts for failures and checkpointing.

    Wraps a healthy :class:`ThroughputModel` and discounts it by the
    first-order availability of a checkpoint-restart scheme: writing a
    checkpoint every ``tau`` seconds costs ``delta/tau`` of the run,
    each failure loses on average ``tau/2`` of work plus the restart
    time.  With the Young/Daly-optimal interval tau* = sqrt(2 delta M),
    the overhead fraction is ``sqrt(2 delta / M) + R / M`` for job MTBF
    ``M`` and restart cost ``R`` — sub-percent in the paper's regime,
    which is why Fig. 2 can ignore failures at 512 ranks but a
    naive no-checkpoint strategy could not.
    """

    def __init__(self, base: ThroughputModel, failures: FailureSpec = FailureSpec()):
        self.base = base
        self.failures = failures

    def optimal_checkpoint_interval(self, world_size: int) -> float:
        """Young/Daly first-order optimum: sqrt(2 * delta * MTBF)."""
        mtbf = self.failures.job_mtbf_seconds(world_size)
        return math.sqrt(2.0 * self.failures.checkpoint_write_seconds * mtbf)

    def overhead_fraction(self, world_size: int) -> float:
        """Fraction of wall-clock lost to checkpoints, rework, and restarts."""
        mtbf = self.failures.job_mtbf_seconds(world_size)
        delta = self.failures.checkpoint_write_seconds
        tau = self.optimal_checkpoint_interval(world_size)
        frac = delta / tau + tau / (2.0 * mtbf) + self.failures.recovery_seconds / mtbf
        return min(frac, 1.0)

    def availability(self, world_size: int) -> float:
        """Useful-work fraction under the optimal checkpoint cadence."""
        return 1.0 - self.overhead_fraction(world_size)

    def samples_per_second(self, world_size: int) -> float:
        """Failure-discounted aggregate training throughput."""
        return self.base.samples_per_second(world_size) * self.availability(world_size)

    def epoch_seconds(self, world_size: int, dataset_size: int) -> float:
        rate = self.samples_per_second(world_size)
        if rate <= 0:
            return float("inf")
        return dataset_size / rate

    def sweep(self, world_sizes: List[int], dataset_size: int) -> List[Dict[str, float]]:
        """Fig. 2's series with failure accounting columns added."""
        rows = []
        for n in world_sizes:
            rows.append(
                {
                    "workers": n,
                    "samples_per_s": self.samples_per_second(n),
                    "availability": self.availability(n),
                    "checkpoint_interval_s": self.optimal_checkpoint_interval(n),
                    "job_mtbf_hours": self.failures.job_mtbf_seconds(n) / 3600.0,
                    "epoch_minutes": self.epoch_seconds(n, dataset_size) / 60.0,
                }
            )
        return rows


# --------------------------------------------------------------------------- #
# Bucketed / ZeRO communication model
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardingSpec:
    """Communication-relevant shape of a ZeRO-sharded step.

    ``num_tensors`` is the parameter-tensor count — the dense baseline
    launches one allreduce per tensor, which is what bucketing amortises.
    ``element_bytes`` is the in-memory gradient dtype width (the simulator
    carries float64); with ``compress="bf16"`` the wire carries two bytes
    per element instead.
    """

    bucket_bytes: int = 4 << 20
    num_tensors: int = 1
    element_bytes: int = 8
    compress: str = ""  # "" | "bf16"

    def __post_init__(self):
        if self.bucket_bytes < 1:
            raise ValueError("bucket_bytes must be >= 1")
        if self.num_tensors < 1:
            raise ValueError("num_tensors must be >= 1")
        if self.compress not in ("", "bf16"):
            raise ValueError(f"compress must be '' or 'bf16', got {self.compress!r}")

    @property
    def wire_factor(self) -> float:
        """Bytes-on-wire per in-memory byte (bf16 packs 8-byte floats to 2)."""
        return 2.0 / self.element_bytes if self.compress == "bf16" else 1.0


class BucketedThroughputModel:
    """Step-time projection for bucketed reduce_scatter/allgather gradients.

    Extends :class:`ThroughputModel` with the two effects the sharding
    stack introduces:

    * **Latency amortisation** — the dense baseline launches one allreduce
      per parameter tensor, paying the full ``2 (M-1)`` hop latency each
      time; bucketing launches ``2 x num_buckets`` collectives (one
      reduce-scatter plus one allgather per bucket) over the same total
      payload.
    * **Compute/comm overlap** — bucket *i*'s collective runs while bucket
      *i+1*'s backward chunk is still being computed, so only the comm
      tail that outlives the backward pass is exposed:
      ``comm_end_i = max(comm_end_{i-1}, ready_{i}) + comm_i`` with
      ``ready_i = (i+1) * bwd_seconds / num_buckets``.

    ZeRO optimizer-state sharding does not change the modeled wire volume
    (the gradient allgather is traded for the parameter allgather) but
    divides optimizer state across ranks; ``optimizer_state_bytes``
    reports that footprint.
    """

    #: Fraction of a training step spent in backward — the window gradient
    #: buckets become ready in.  Forward + optimizer fill the rest.
    backward_fraction: float = 0.6

    def __init__(self, base: ThroughputModel, sharding: ShardingSpec):
        self.base = base
        self.sharding = sharding
        self.num_buckets = max(
            1, math.ceil(base.gradient_bytes / sharding.bucket_bytes)
        )

    # ------------------------------------------------------------------ #
    def _nodes(self, world_size: int) -> int:
        return max(1, math.ceil(world_size / self.base.cluster.node.workers))

    def _half_collective_seconds(self, payload_bytes: float, world_size: int) -> float:
        """One ring half (reduce-scatter *or* allgather) over the fabric."""
        nodes = self._nodes(world_size)
        intra = 1e-5
        if world_size <= 1:
            return 0.0
        if nodes == 1:
            return intra
        bw = self.base.cluster.interconnect.bandwidth_gbs * 1e9
        lat = self.base.cluster.interconnect.latency_us * 1e-6
        ring = (nodes - 1) / nodes * payload_bytes / bw
        return intra + ring + (nodes - 1) * lat

    # ------------------------------------------------------------------ #
    def messages_per_step(self) -> int:
        """Collective launches per step: reduce-scatter + allgather per bucket."""
        return 2 * self.num_buckets

    def dense_messages_per_step(self) -> int:
        """The per-tensor baseline: one allreduce launch per parameter."""
        return self.sharding.num_tensors

    def bytes_on_wire(self, world_size: int) -> float:
        """Per-step inter-node bytes (both ring halves, compression applied)."""
        nodes = self._nodes(world_size)
        if nodes == 1:
            return 0.0
        payload = self.base.gradient_bytes * self.sharding.wire_factor
        return 2.0 * (nodes - 1) / nodes * payload * nodes

    def comm_seconds(self, world_size: int) -> float:
        """Total (un-overlapped) collective time across all buckets."""
        per_bucket = (
            self.base.gradient_bytes / self.num_buckets * self.sharding.wire_factor
        )
        return 2.0 * self.num_buckets * self._half_collective_seconds(
            per_bucket, world_size
        )

    def exposed_comm_seconds(self, world_size: int) -> float:
        """Comm time left on the critical path after backward overlap."""
        compute = self.base.batch / self.base.rate
        bwd = self.backward_fraction * compute
        chunk = bwd / self.num_buckets
        per_bucket = (
            self.base.gradient_bytes / self.num_buckets * self.sharding.wire_factor
        )
        half = self._half_collective_seconds(per_bucket, world_size)
        comm_end = 0.0
        for i in range(self.num_buckets):
            ready = (i + 1) * chunk  # bucket i's grads exist once its chunk ends
            comm_end = max(comm_end, ready) + 2.0 * half
        return max(0.0, comm_end - bwd)

    def step_seconds(self, world_size: int) -> float:
        compute = self.base.batch / self.base.rate
        return compute + self.exposed_comm_seconds(world_size)

    def dense_step_seconds(self, world_size: int) -> float:
        """Per-tensor-allreduce baseline: no bucketing, no overlap."""
        compute = self.base.batch / self.base.rate
        per_tensor = self.base.gradient_bytes / self.sharding.num_tensors
        comm = self.sharding.num_tensors * 2.0 * self._half_collective_seconds(
            per_tensor, world_size
        )
        return compute + comm

    def samples_per_second(self, world_size: int) -> float:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        return world_size * self.base.batch / self.step_seconds(world_size)

    def modeled_speedup(self, world_size: int) -> float:
        """Dense per-tensor step time over bucketed/overlapped step time."""
        return self.dense_step_seconds(world_size) / self.step_seconds(world_size)

    # ------------------------------------------------------------------ #
    def optimizer_state_bytes(self, world_size: int, sharded: bool = True,
                              entries_per_param: int = 2) -> int:
        """Adam m/v footprint per rank: divided by world when ZeRO-sharded."""
        total = entries_per_param * self.base.gradient_bytes
        if not sharded or world_size <= 1:
            return total
        return math.ceil(total / world_size)

    def sweep(self, world_sizes: List[int]) -> List[Dict[str, float]]:
        rows = []
        for n in world_sizes:
            rows.append(
                {
                    "workers": n,
                    "num_buckets": self.num_buckets,
                    "messages": self.messages_per_step(),
                    "dense_messages": self.dense_messages_per_step(),
                    "bytes_on_wire": self.bytes_on_wire(n),
                    "step_seconds": self.step_seconds(n),
                    "dense_step_seconds": self.dense_step_seconds(n),
                    "modeled_speedup": self.modeled_speedup(n),
                    "state_bytes_per_rank": self.optimizer_state_bytes(n),
                }
            )
        return rows


def linear_fit_r2(xs: List[float], ys: List[float]) -> float:
    """R^2 of a least-squares line — the paper overlays a linear fit on Fig. 2."""
    import numpy as np

    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
