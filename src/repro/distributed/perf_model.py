"""Analytic cluster performance model for the scale-out study (Fig. 2).

The reproduction host has one core, so multi-node wall-clock cannot be
measured; instead this model converts a *measured* single-worker training
rate into projected scale-out throughput, with communication costed by a
ring-allreduce over an HDR200-class fabric.  The model captures exactly the
effect the paper reports: with 16 workers per node and per-step gradient
payloads of a few MB against a 200 Gb/s interconnect, the allreduce is a
sub-percent overhead and throughput scales linearly to 512 ranks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class NodeSpec:
    """One compute node.

    Defaults describe the paper's Endeavour nodes: dual Intel Xeon Platinum
    8480+ (2 x 56 physical cores), four NUMA domains, 256 GB DDR5-4800.
    """

    name: str = "xeon-8480+"
    sockets: int = 2
    cores_per_socket: int = 56
    numa_domains: int = 4
    memory_gb: int = 256
    memory_bandwidth_gbs: float = 307.0  # 8 channels DDR5-4800 x 2 sockets
    workers: int = 16  # chosen to balance FLOP/s vs bandwidth per socket

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def threads_per_worker(self) -> int:
        """OMP_NUM_THREADS under the paper's pinning policy."""
        return self.physical_cores // self.workers


@dataclass(frozen=True)
class InterconnectSpec:
    """Fabric between nodes; defaults approximate Mellanox HDR200."""

    name: str = "hdr200"
    bandwidth_gbs: float = 25.0  # 200 Gb/s
    latency_us: float = 1.5


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: node type, fabric, and node count."""

    node: NodeSpec
    interconnect: InterconnectSpec
    max_nodes: int = 32


#: The paper's platform (Sec. 4.1).
ENDEAVOUR = ClusterSpec(node=NodeSpec(), interconnect=InterconnectSpec(), max_nodes=32)


class ThroughputModel:
    """Project DDP training throughput from single-worker measurements.

    Parameters
    ----------
    per_worker_samples_per_s:
        Measured single-worker training rate (forward+backward+step), the
        quantity the scale-out bench measures live.
    gradient_bytes:
        Per-step allreduce payload (model parameters x 8 bytes for fp64,
        x 4 in the paper's fp32 — configurable through this argument).
    cluster:
        Hardware description; defaults to the paper's platform.
    """

    def __init__(
        self,
        per_worker_samples_per_s: float,
        batch_per_worker: int,
        gradient_bytes: int,
        cluster: ClusterSpec = ENDEAVOUR,
    ):
        if per_worker_samples_per_s <= 0:
            raise ValueError("per-worker rate must be positive")
        if batch_per_worker < 1:
            raise ValueError("batch per worker must be >= 1")
        self.rate = per_worker_samples_per_s
        self.batch = batch_per_worker
        self.gradient_bytes = gradient_bytes
        self.cluster = cluster

    # ------------------------------------------------------------------ #
    def allreduce_seconds(self, world_size: int) -> float:
        """Ring allreduce time across nodes.

        Intra-node reduction over shared memory is folded into a small fixed
        cost; the inter-node ring moves 2 (M-1)/M x payload per node for M
        participating nodes, plus per-hop latency.
        """
        if world_size <= 1:
            return 0.0
        workers_per_node = self.cluster.node.workers
        nodes = max(1, math.ceil(world_size / workers_per_node))
        payload = self.gradient_bytes
        intra = 2e-5  # shared-memory reduction, ~tens of microseconds
        if nodes == 1:
            return intra
        bw = self.cluster.interconnect.bandwidth_gbs * 1e9
        lat = self.cluster.interconnect.latency_us * 1e-6
        ring = 2.0 * (nodes - 1) / nodes * payload / bw
        hops = 2 * (nodes - 1)
        return intra + ring + hops * lat

    def step_seconds(self, world_size: int) -> float:
        """One synchronous DDP step: compute plus (non-overlapped) allreduce."""
        compute = self.batch / self.rate
        return compute + self.allreduce_seconds(world_size)

    def samples_per_second(self, world_size: int) -> float:
        """Aggregate training throughput at ``world_size`` ranks."""
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        return world_size * self.batch / self.step_seconds(world_size)

    def epoch_seconds(self, world_size: int, dataset_size: int) -> float:
        """Time to traverse ``dataset_size`` samples once."""
        return dataset_size / self.samples_per_second(world_size)

    def scaling_efficiency(self, world_size: int) -> float:
        """Throughput relative to perfect linear scaling (1.0 = ideal)."""
        ideal = world_size * self.rate
        return self.samples_per_second(world_size) / ideal

    def sweep(self, world_sizes: List[int], dataset_size: int) -> List[Dict[str, float]]:
        """Fig. 2's series: one row per worker count."""
        rows = []
        for n in world_sizes:
            rows.append(
                {
                    "workers": n,
                    "nodes": max(1, math.ceil(n / self.cluster.node.workers)),
                    "samples_per_s": self.samples_per_second(n),
                    "epoch_minutes": self.epoch_seconds(n, dataset_size) / 60.0,
                    "efficiency": self.scaling_efficiency(n),
                }
            )
        return rows


# --------------------------------------------------------------------------- #
# Failure-aware throughput
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FailureSpec:
    """Failure and recovery characteristics of one worker rank.

    Defaults describe a healthy production cluster: per-rank MTBF of
    ~10k hours (a 512-rank job then fails about once every 19 hours),
    two minutes to restart and rejoin, and npz checkpoints that take
    seconds to write at bench-scale model sizes.
    """

    rank_mtbf_hours: float = 10_000.0
    recovery_seconds: float = 120.0
    checkpoint_write_seconds: float = 15.0

    def job_mtbf_seconds(self, world_size: int) -> float:
        """Mean time between failures of the whole job (any rank failing)."""
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        return self.rank_mtbf_hours * 3600.0 / world_size


class FailureAwareThroughputModel:
    """Throughput projection that accounts for failures and checkpointing.

    Wraps a healthy :class:`ThroughputModel` and discounts it by the
    first-order availability of a checkpoint-restart scheme: writing a
    checkpoint every ``tau`` seconds costs ``delta/tau`` of the run,
    each failure loses on average ``tau/2`` of work plus the restart
    time.  With the Young/Daly-optimal interval tau* = sqrt(2 delta M),
    the overhead fraction is ``sqrt(2 delta / M) + R / M`` for job MTBF
    ``M`` and restart cost ``R`` — sub-percent in the paper's regime,
    which is why Fig. 2 can ignore failures at 512 ranks but a
    naive no-checkpoint strategy could not.
    """

    def __init__(self, base: ThroughputModel, failures: FailureSpec = FailureSpec()):
        self.base = base
        self.failures = failures

    def optimal_checkpoint_interval(self, world_size: int) -> float:
        """Young/Daly first-order optimum: sqrt(2 * delta * MTBF)."""
        mtbf = self.failures.job_mtbf_seconds(world_size)
        return math.sqrt(2.0 * self.failures.checkpoint_write_seconds * mtbf)

    def overhead_fraction(self, world_size: int) -> float:
        """Fraction of wall-clock lost to checkpoints, rework, and restarts."""
        mtbf = self.failures.job_mtbf_seconds(world_size)
        delta = self.failures.checkpoint_write_seconds
        tau = self.optimal_checkpoint_interval(world_size)
        frac = delta / tau + tau / (2.0 * mtbf) + self.failures.recovery_seconds / mtbf
        return min(frac, 1.0)

    def availability(self, world_size: int) -> float:
        """Useful-work fraction under the optimal checkpoint cadence."""
        return 1.0 - self.overhead_fraction(world_size)

    def samples_per_second(self, world_size: int) -> float:
        """Failure-discounted aggregate training throughput."""
        return self.base.samples_per_second(world_size) * self.availability(world_size)

    def epoch_seconds(self, world_size: int, dataset_size: int) -> float:
        rate = self.samples_per_second(world_size)
        if rate <= 0:
            return float("inf")
        return dataset_size / rate

    def sweep(self, world_sizes: List[int], dataset_size: int) -> List[Dict[str, float]]:
        """Fig. 2's series with failure accounting columns added."""
        rows = []
        for n in world_sizes:
            rows.append(
                {
                    "workers": n,
                    "samples_per_s": self.samples_per_second(n),
                    "availability": self.availability(n),
                    "checkpoint_interval_s": self.optimal_checkpoint_interval(n),
                    "job_mtbf_hours": self.failures.job_mtbf_seconds(n) / 3600.0,
                    "epoch_minutes": self.epoch_seconds(n, dataset_size) / 60.0,
                }
            )
        return rows


def linear_fit_r2(xs: List[float], ys: List[float]) -> float:
    """R^2 of a least-squares line — the paper overlays a linear fit on Fig. 2."""
    import numpy as np

    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
