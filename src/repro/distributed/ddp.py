"""Data-parallel training strategies.

``DDPStrategy`` reproduces N-rank distributed data parallelism exactly:
the global batch (B_eff samples) is split into N equal rank shards, each
shard's gradient is computed, and the shard gradients are averaged through
the simulated communicator — step for step the computation a real N-rank
MPI job performs, because gradient averaging is associative.  What the
simulation does not reproduce is wall-clock overlap; that is the
performance model's job (Fig. 2).

Fault handling: with a fault injector attached to the communicator, the
gradient reduction always goes through ``comm.allreduce`` (so injected
faults actually hit it).  A rank crash is handled in one of two ways:

* **elastic** (default): the dead rank is dropped, the global batch is
  re-sharded over the survivors, and the step re-executes in the shrunken
  world.  The Goyal linear-scaling rule says the learning rate must track
  the world size; the strategy accumulates the pending ``(new/old)``
  factor, which the trainer consumes via :meth:`consume_lr_rescale`.
* **non-elastic**: the crash escalates as :class:`StepFailure`, which the
  trainer's checkpoint-recovery path catches (restore last checkpoint,
  revive the world, retry the step).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.batching import collate_graphs
from repro.distributed.comm import SimComm
from repro.distributed.events import LR_RESCALE, RESHARD
from repro.distributed.faults import (
    AllreduceTimeout,
    RankCrash,
    StepFailure,
)

#: Shared no-op context used when no tracer is attached (kept local so the
#: distributed layer does not depend on repro.observability).
_NULL_SPAN = contextlib.nullcontext()


def _span(tracer, name: str, **attrs):
    return tracer.span(name, **attrs) if tracer is not None else _NULL_SPAN


def _forward_backward(tracer, task, batch, rank: Optional[int] = None):
    """One forward+backward, routed through the tape compiler when enabled.

    ``compiled_training_step`` owns the backward pass (cached-plan replays
    rebuild a real tape and differentiate it), so this helper is the single
    place a strategy runs a step — callers must not call ``backward`` again.
    Imported lazily to keep the distributed layer's import graph free of
    repro.compiler/repro.observability in eager runs.
    """
    from repro.compiler.dispatch import compiled_enabled

    if compiled_enabled():
        from repro.compiler.step import compiled_training_step

        return compiled_training_step(task, batch, tracer)
    attrs = {} if rank is None else {"rank": rank}
    with _span(tracer, "forward", **attrs):
        loss, metrics = task.training_step(batch)
    with _span(tracer, "backward", **attrs):
        loss.backward()
    return loss, metrics


class Strategy:
    """Turns a list of samples into one optimizer-ready gradient.

    ``execute(task, samples)`` runs forward/backward, leaves averaged
    gradients on the task's parameters, and returns (loss_value, metrics).
    """

    world_size: int = 1
    #: Optional :class:`~repro.observability.Tracer` (duck-typed).  When the
    #: trainer carries an Observer it hands the tracer down here so strategy
    #: executions emit forward/backward/comm phase spans.
    tracer = None
    #: Per-rank shard losses from the most recent ``execute`` call.  The
    #: stability guard evaluates its spike detectors rank-by-rank on these
    #: (each real DDP rank only sees its own shard loss) before agreeing on
    #: a verdict through the communicator.
    last_rank_losses: List[float] = []

    def execute(self, task, samples: Sequence) -> Tuple[float, dict]:
        raise NotImplementedError

    def scale_lr(self, base_lr: float) -> float:
        """Goyal et al. linear rule; identity for single-process training."""
        return base_lr * self.world_size

    def consume_lr_rescale(self) -> float:
        """Pending LR multiplier from world-size changes (1.0 = none)."""
        return 1.0

    def on_recover(self) -> None:
        """Hook the trainer calls after restoring a checkpoint."""


class SingleProcessStrategy(Strategy):
    """Plain single-worker training."""

    def __init__(self, collate_fn: Callable = collate_graphs):
        self.collate_fn = collate_fn
        self.world_size = 1

    def execute(self, task, samples: Sequence) -> Tuple[float, dict]:
        with _span(self.tracer, "data", source="collate"):
            batch = self.collate_fn(list(samples))
        loss, metrics = _forward_backward(self.tracer, task, batch)
        value = float(loss.data)
        self.last_rank_losses = [value]
        return value, metrics


class DDPStrategy(Strategy):
    """Simulated N-rank distributed data parallelism.

    Parameters
    ----------
    world_size:
        Number of simulated ranks N.  The incoming global batch must have
        at least N samples; it is split into N contiguous shards (real DDP
        gives each rank B samples of the same global batch).
    comm:
        Communicator used for the gradient allreduce.  Shared across steps
        so its traffic log accumulates — the scale-out bench reads it.
    track_per_rank:
        When True, per-rank gradients are snapshotted and reduced through
        ``comm.allreduce`` explicitly (slower; used by the equivalence
        tests).  The default fast path exploits in-place accumulation,
        which produces bit-identical averages, and meters the same bytes.
        A fault injector on the communicator forces the explicit path, and
        so does bucketing (``bucket_bytes``).
    elastic:
        When True (default), a rank crash shrinks the world and the step
        re-executes on the survivors; when False it raises
        :class:`StepFailure` for the trainer to recover from a checkpoint.
    bucket_bytes:
        When set, gradients are packed into fixed-byte flat buckets
        (:class:`~repro.distributed.sharding.GradientBucketer`) and
        reduced per bucket via ``comm.reduce_scatter`` — O(buckets)
        messages per step instead of O(tensors).  Reductions use the same
        ``mean`` arithmetic as the per-parameter allreduce, so results
        are bit-identical in no-fault runs.
    shard_optimizer:
        ZeRO mode: gradients stay reduce-scattered (each rank owns one
        shard) and the *optimizer* performs the second ring half as a
        parameter allgather after stepping its shard — pair with
        :class:`~repro.distributed.sharding.ShardedAdam` built with the
        same ``bucket_bytes``.  When False, the strategy allgathers the
        reduced gradients itself so any dense optimizer works.
    compress:
        ``"bf16"`` rounds bucket payloads through the emulated bfloat16
        wire format (quarter the fp64 bytes on the wire, bounded
        quantization error — see ``bf16_roundtrip``).  Not bit-identical
        to dense by construction; None (default) transmits full precision.
    """

    def __init__(
        self,
        world_size: int,
        comm: Optional[SimComm] = None,
        collate_fn: Callable = collate_graphs,
        track_per_rank: bool = False,
        elastic: bool = True,
        bucket_bytes: Optional[int] = None,
        shard_optimizer: bool = False,
        compress: Optional[str] = None,
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if bucket_bytes is not None and bucket_bytes < 1:
            raise ValueError(f"bucket_bytes must be >= 1, got {bucket_bytes}")
        if shard_optimizer and bucket_bytes is None:
            raise ValueError("shard_optimizer requires bucket_bytes")
        if compress not in (None, "bf16"):
            raise ValueError(f"unsupported compression {compress!r}")
        self.world_size = world_size
        self.initial_world_size = world_size
        self.comm = comm if comm is not None else SimComm(world_size)
        self.collate_fn = collate_fn
        self.track_per_rank = track_per_rank
        self.elastic = elastic
        self.bucket_bytes = bucket_bytes
        self.shard_optimizer = shard_optimizer
        self.compress = compress
        self._bucketer = None
        self._bucketer_key = None
        self._pending_lr_scale = 1.0

    # ------------------------------------------------------------------ #
    @property
    def events(self):
        return self.comm.events

    def consume_lr_rescale(self) -> float:
        factor = self._pending_lr_scale
        self._pending_lr_scale = 1.0
        return factor

    def on_recover(self) -> None:
        """Checkpoint recovery restarts every rank: restore the full world."""
        self.comm.restore_world()
        self.world_size = self.comm.world_size
        self._pending_lr_scale = 1.0

    # ------------------------------------------------------------------ #
    def shard(self, samples: Sequence) -> List[List]:
        n = len(samples)
        if n < self.world_size:
            raise ValueError(
                f"global batch of {n} cannot feed {self.world_size} ranks"
            )
        per_rank = n // self.world_size
        shards = [
            list(samples[r * per_rank : (r + 1) * per_rank])
            for r in range(self.world_size)
        ]
        # Leftover samples (n not divisible by N) are dropped, matching
        # drop_last sharding in the real sampler.
        return shards

    # ------------------------------------------------------------------ #
    def _drop_rank(self, dead_rank: int, batch_size: int) -> None:
        """Elastic degradation: shrink the world and schedule the LR rescale."""
        old = self.world_size
        new = self.comm.shrink(dead_rank)
        self.world_size = new
        self._pending_lr_scale *= new / old
        if self.events is not None:
            self.events.record(
                RESHARD,
                world_size=new,
                batch_size=batch_size,
                per_rank=batch_size // new,
            )
            self.events.record(LR_RESCALE, factor=new / old, world_size=new)

    def execute(self, task, samples: Sequence) -> Tuple[float, dict]:
        while True:
            try:
                return self._execute_once(task, samples)
            except RankCrash as crash:
                if not self.elastic:
                    raise StepFailure(
                        f"rank {crash.rank} crashed (elastic mode off)", cause=crash
                    ) from crash
                if self.world_size <= 1:
                    raise StepFailure(
                        "no surviving ranks to re-shard onto", cause=crash
                    ) from crash
                self._drop_rank(crash.rank, len(samples))
            except AllreduceTimeout as timeout:
                raise StepFailure(
                    "allreduce retry budget exhausted", cause=timeout
                ) from timeout

    def _get_bucketer(self, params: List):
        """The cached bucket layout (rebuilt if the parameter set changes)."""
        from repro.distributed.sharding import GradientBucketer

        key = tuple(id(p) for p in params)
        if self._bucketer is None or self._bucketer_key != key:
            self._bucketer = GradientBucketer(params, bucket_bytes=self.bucket_bytes)
            self._bucketer_key = key
        return self._bucketer

    def _reduce_bucketed(
        self, params: List, per_rank_grads: List[List[np.ndarray]]
    ) -> None:
        """Bucketed gradient reduction: reduce_scatter (+ allgather) per bucket.

        Leaves the averaged gradient on every parameter.  With
        ``shard_optimizer`` the gradient allgather is skipped on the wire
        — the sharded optimizer's parameter allgather is the second ring
        half — but the simulation still materializes full gradients (each
        rank's shard is bit-identical, so assembling them locally is free).
        """
        from repro.distributed.sharding import bf16_roundtrip

        bucketer = self._get_bucketer(params)
        for bucket in bucketer.buckets:
            flats = [
                bucketer.flatten_grads(bucket, grads) for grads in per_rank_grads
            ]
            wire_bytes = None
            if self.compress == "bf16":
                flats = [bf16_roundtrip(f) for f in flats]
                wire_bytes = bucket.size * 2  # bf16 = 2 bytes/element
            shards = self.comm.reduce_scatter(flats, op="mean", wire_bytes=wire_bytes)
            if self.shard_optimizer:
                full = np.concatenate(shards) if len(shards) > 1 else shards[0]
            else:
                full = self.comm.allgather_flat(shards, wire_bytes=wire_bytes)[0]
            bucketer.assign_grads(bucket, full)
        for i, p in enumerate(params):
            if all(grads[i] is None for grads in per_rank_grads):
                p.grad = None

    def _execute_once(self, task, samples: Sequence) -> Tuple[float, dict]:
        shards = self.shard(samples)
        params = list(task.parameters())
        explicit = (
            self.track_per_rank
            or self.comm.injector is not None
            or self.bucket_bytes is not None
        )

        if explicit:
            per_rank_grads: List[List[np.ndarray]] = []
            losses = []
            metrics: dict = {}
            for rank, shard in enumerate(shards):
                task.zero_grad()
                with _span(self.tracer, "data", source="collate", rank=rank):
                    batch = self.collate_fn(shard)
                loss, m = _forward_backward(self.tracer, task, batch, rank=rank)
                if self.bucket_bytes is not None:
                    # The bucketer packs missing grads as zeros on the wire
                    # but None-ness is preserved so parameters unused on
                    # every rank keep grad=None — dense Adam skips those
                    # entirely (no moments, no weight decay), and sharded
                    # runs must be bit-identical to it.
                    per_rank_grads.append(
                        [p.grad.copy() if p.grad is not None else None for p in params]
                    )
                else:
                    per_rank_grads.append(
                        [
                            p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
                            for p in params
                        ]
                    )
                losses.append(float(loss.data))
                metrics = m
            if self.bucket_bytes is not None:
                self._reduce_bucketed(params, per_rank_grads)
            else:
                for i, p in enumerate(params):
                    reduced = self.comm.allreduce(
                        [g[i] for g in per_rank_grads], op="mean"
                    )
                    p.grad = reduced[0]
            self.last_rank_losses = list(losses)
            return float(np.mean(losses)), metrics

        # Fast path: accumulate in place (gradient sums are associative),
        # divide once, meter the allreduce the real job would perform.
        losses = []
        metrics = {}
        for rank, shard in enumerate(shards):
            with _span(self.tracer, "data", source="collate", rank=rank):
                batch = self.collate_fn(shard)
            loss, m = _forward_backward(self.tracer, task, batch, rank=rank)
            losses.append(float(loss.data))
            metrics = m
        with _span(self.tracer, "comm.allreduce", ranks=self.world_size):
            inv = 1.0 / self.world_size
            payload = 0
            for p in params:
                if p.grad is not None:
                    p.grad *= inv
                    payload += p.grad.nbytes
            self.comm.traffic.allreduce_calls += 1
            if self.world_size > 1:
                self.comm.traffic.allreduce_bytes += int(
                    2
                    * (self.world_size - 1)
                    / self.world_size
                    * payload
                    * self.world_size
                )
            if self.tracer is not None:
                self.tracer.set_attr("bytes", payload)
        self.last_rank_losses = list(losses)
        return float(np.mean(losses)), metrics
