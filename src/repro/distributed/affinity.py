"""NUMA-aware worker placement (paper Sec. 4.1).

Models the launch policy ``mpiexec -map-by numa`` with
``I_MPI_PIN_CELL=core``: MPI ranks are distributed round-robin over NUMA
domains, each rank's OpenMP threads pinned to a disjoint block of physical
cores inside its domain.  The planner computes the same placement a real
launcher would, and validates the constraint the paper's 16-worker choice
encodes: no oversubscription and a whole number of cores per worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.distributed.perf_model import NodeSpec


@dataclass(frozen=True)
class WorkerPlacement:
    """One rank's binding on a node."""

    rank: int
    node_index: int
    numa_domain: int
    cores: tuple  # physical core ids within the node

    @property
    def num_threads(self) -> int:
        return len(self.cores)


class AffinityPlanner:
    """Compute rank placements for a multi-node DDP job."""

    def __init__(self, node: NodeSpec = NodeSpec()):
        self.node = node

    def cores_in_domain(self, domain: int) -> List[int]:
        """Physical core ids belonging to a NUMA domain (contiguous blocks)."""
        per_domain = self.node.physical_cores // self.node.numa_domains
        start = domain * per_domain
        return list(range(start, start + per_domain))

    def plan_node(self, workers: int, node_index: int = 0, rank_base: int = 0) -> List[WorkerPlacement]:
        """Place ``workers`` ranks on one node.

        Raises if the worker count does not divide the core topology — the
        same configurations a pinned MPI launch would reject.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers % self.node.numa_domains != 0 and workers > self.node.numa_domains:
            raise ValueError(
                f"{workers} workers do not distribute evenly over "
                f"{self.node.numa_domains} NUMA domains"
            )
        per_domain_workers = max(1, workers // self.node.numa_domains)
        threads = self.node.physical_cores // workers
        if threads < 1:
            raise ValueError(f"{workers} workers oversubscribe {self.node.physical_cores} cores")
        placements = []
        rank = rank_base
        for domain in range(min(workers, self.node.numa_domains)):
            domain_cores = self.cores_in_domain(domain)
            for w in range(per_domain_workers):
                cores = tuple(domain_cores[w * threads : (w + 1) * threads])
                if len(cores) < threads:
                    raise ValueError("core block exhausted — uneven worker split")
                placements.append(
                    WorkerPlacement(
                        rank=rank, node_index=node_index, numa_domain=domain, cores=cores
                    )
                )
                rank += 1
        return placements

    def plan_job(self, world_size: int, workers_per_node: int | None = None) -> List[WorkerPlacement]:
        """Place a full job across as many nodes as needed."""
        workers_per_node = workers_per_node or self.node.workers
        if world_size % workers_per_node != 0:
            raise ValueError(
                f"world size {world_size} is not a multiple of {workers_per_node} workers/node"
            )
        placements = []
        nodes = world_size // workers_per_node
        for node_index in range(nodes):
            placements.extend(
                self.plan_node(
                    workers_per_node,
                    node_index=node_index,
                    rank_base=node_index * workers_per_node,
                )
            )
        return placements

    def omp_num_threads(self, workers_per_node: int | None = None) -> int:
        """Threads per worker under the pinning policy."""
        workers_per_node = workers_per_node or self.node.workers
        return self.node.physical_cores // workers_per_node
