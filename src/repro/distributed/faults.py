"""Deterministic fault injection for the simulated distributed stack.

The scheduling core is :class:`ChaosEngine`: a seeded planner that lands
an ordered list of fault kinds at distinct positions of a discrete
stream, drawing a victim index for targeted kinds.  Scheduling is fully
seeded: the same kinds + seed always produce the same faults at the same
positions against the same victims, so every chaos scenario in the test
suite and benches is reproducible bit-for-bit.  Two consumers share it:

* :class:`FaultInjector` (here) — training chaos over the allreduce call
  stream: rank crashes, allreduce timeouts, corrupted gradients;
* :mod:`repro.serving.resilience.chaos` — serving chaos over a traffic
  trace: replica crashes, latency spikes, flaky predicts, corrupt
  servable archives.

Profiles are parsed from compact specs (the CLI's ``--fault-profile``):

    "crash:1"               one rank crash
    "timeout:2,corrupt:1"   two allreduce timeouts and one corrupted gradient

Paper mapping: a 32-node Endeavour job (Sec. 4.1) at a per-rank MTBF of
~10k hours sees on the order of one failure per day of training;
``crash:1`` over a bench-scale run is the compressed equivalent of that
regime (see the failure-aware throughput model for the continuous-rate
version).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.distributed.events import (
    CRASH,
    CORRUPT,
    TIMEOUT,
    EventLog,
    SimClock,
)

#: Fault kinds a profile may request.
FAULT_KINDS = (CRASH, TIMEOUT, CORRUPT)


# --------------------------------------------------------------------------- #
# Exceptions
# --------------------------------------------------------------------------- #
class CommFault(RuntimeError):
    """Base class for communicator-level failures."""


class RankCrash(CommFault):
    """A rank died mid-collective and will not return on its own."""

    def __init__(self, rank: int):
        super().__init__(f"rank {rank} crashed during allreduce")
        self.rank = rank


class AllreduceTimeout(CommFault):
    """An allreduce did not complete within the retry budget."""


class GradientCorruption(CommFault):
    """A rank's gradient contribution failed its integrity check."""

    def __init__(self, rank: int):
        super().__init__(f"rank {rank} contributed a corrupted gradient")
        self.rank = rank


class StepFailure(RuntimeError):
    """A training step could not be completed by the strategy.

    Raised by strategies when a communicator fault is not locally
    recoverable (crash with elastic mode off, retry budget exhausted);
    the trainer's checkpoint-recovery path catches exactly this.
    """

    def __init__(self, message: str, cause: Optional[CommFault] = None):
        super().__init__(message)
        self.cause = cause


# --------------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry semantics for collectives.

    ``backoff(attempt)`` returns the simulated wait before re-attempting
    after the ``attempt``-th failure (0-indexed): base * factor**attempt.

    ``jitter`` (opt-in, fraction in [0, 1)) decorrelates the waits: the
    deterministic backoff is scaled by ``1 + jitter * u`` with ``u`` drawn
    uniformly from [-1, 1) by a generator seeded from ``(jitter_seed, key,
    attempt)``.  Identical retriers that pass distinct ``key`` values (a
    rank, a request id) therefore spread out instead of re-colliding in a
    synchronized retry storm — while any given ``(key, attempt)`` pair
    always waits the exact same simulated time.  ``jitter=0.0`` (the
    default) returns the undisturbed exponential schedule, bit for bit.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int, key: int = 0) -> float:
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        wait = self.backoff_base_s * self.backoff_factor**attempt
        if self.jitter == 0.0:
            return wait
        rng = np.random.default_rng((self.jitter_seed, int(key), attempt))
        return wait * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))


# --------------------------------------------------------------------------- #
# Profiles
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultProfile:
    """How many faults of each kind to inject over a run."""

    crashes: int = 0
    timeouts: int = 0
    corruptions: int = 0

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultProfile":
        """Parse ``"kind:count,kind:count"`` (empty/None = no faults)."""
        if not spec or spec.strip() in ("", "none"):
            return cls()
        counts = {CRASH: 0, TIMEOUT: 0, CORRUPT: 0}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if ":" not in token:
                raise ValueError(f"bad fault token {token!r}; expected kind:count")
            kind, _, num = token.partition(":")
            kind = kind.strip()
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            try:
                n = int(num)
            except ValueError as exc:
                raise ValueError(f"bad fault count in {token!r}") from exc
            if n < 0:
                raise ValueError(f"fault count must be >= 0 in {token!r}")
            counts[kind] += n
        return cls(
            crashes=counts[CRASH],
            timeouts=counts[TIMEOUT],
            corruptions=counts[CORRUPT],
        )

    @property
    def total(self) -> int:
        return self.crashes + self.timeouts + self.corruptions


@dataclass
class PlannedFault:
    """One scheduled fault: fires at a specific schedule position.

    ``call_index`` is the position in whatever discrete stream the engine
    schedules over — an allreduce call index for training chaos, a
    trace-fraction slot for serving chaos (see
    :mod:`repro.serving.resilience.chaos`).  ``rank`` is the victim index
    (a DDP rank, a serving replica) for targeted kinds.
    """

    kind: str
    call_index: int
    rank: Optional[int] = None
    fired: bool = False


# --------------------------------------------------------------------------- #
# Generic seeded chaos engine
# --------------------------------------------------------------------------- #
class ChaosEngine:
    """Seeded planner of faults over a discrete stream of positions.

    The shared scheduling core behind both training chaos
    (:class:`FaultInjector`, positions = allreduce call indices, targets =
    ranks) and serving chaos (positions = trace slots, targets = replica
    indices).  One seed, one plan: the same ``(kinds, num_targets, seed,
    horizon)`` always yields the same faults at the same positions against
    the same victims, so every chaos scenario replays bit-for-bit.

    Parameters
    ----------
    kinds:
        The fault kinds to schedule, one entry per fault (order matters —
        it is part of the seeded plan).
    num_targets:
        How many victims there are; targeted kinds draw a victim index
        uniformly from ``[0, num_targets)``.
    targeted:
        The subset of kinds that need a victim index (others get ``None``).
    seed / horizon:
        Faults land at distinct positions drawn uniformly from
        ``[0, horizon)``; runs shorter than the horizon never reach the
        later faults.
    events / clock:
        Shared event log and simulated clock; created when not supplied.
    """

    def __init__(
        self,
        kinds: Sequence[str],
        num_targets: int,
        seed: int = 0,
        horizon: int = 8,
        targeted: Sequence[str] = (),
        events: Optional[EventLog] = None,
        clock: Optional[SimClock] = None,
    ):
        if num_targets < 1:
            raise ValueError(f"num_targets must be >= 1, got {num_targets}")
        if horizon < max(len(kinds), 1):
            raise ValueError(
                f"horizon {horizon} cannot hold {len(kinds)} scheduled faults"
            )
        self.kinds = list(kinds)
        self.num_targets = num_targets
        self.seed = seed
        self.horizon = horizon
        self.targeted = frozenset(targeted)
        self.clock = clock if clock is not None else SimClock()
        self.events = events if events is not None else EventLog(self.clock)
        self.schedule: List[PlannedFault] = self._plan(np.random.default_rng(seed))
        self._by_call: Dict[int, List[PlannedFault]] = {}
        for fault in self.schedule:
            self._by_call.setdefault(fault.call_index, []).append(fault)

    def _plan(self, rng: np.random.Generator) -> List[PlannedFault]:
        if not self.kinds:
            return []
        # Distinct positions so at most one fault fires per slot; victims
        # drawn independently per fault.
        calls = rng.choice(self.horizon, size=len(self.kinds), replace=False)
        plan = []
        for kind, call in zip(self.kinds, np.sort(calls)):
            rank = (
                int(rng.integers(self.num_targets))
                if kind in self.targeted
                else None
            )
            plan.append(PlannedFault(kind=kind, call_index=int(call), rank=rank))
        return plan

    # ------------------------------------------------------------------ #
    def at(self, position: int) -> List[PlannedFault]:
        """All faults scheduled at ``position`` (fired or not)."""
        return list(self._by_call.get(position, ()))

    @property
    def pending(self) -> int:
        """Scheduled faults that have not fired yet."""
        return sum(1 for f in self.schedule if not f.fired)


# --------------------------------------------------------------------------- #
# Training injector
# --------------------------------------------------------------------------- #
class FaultInjector(ChaosEngine):
    """Seeded scheduler of faults over the allreduce call stream.

    Parameters
    ----------
    profile:
        What to inject (a :class:`FaultProfile` or its string spec).
    world_size:
        Rank count; victim ranks for crashes/corruptions are drawn from it.
    seed:
        Seeds the schedule; same (profile, world_size, seed, horizon) is
        always the same fault plan.
    horizon:
        Faults are scheduled at distinct allreduce call indices drawn
        uniformly from ``[0, horizon)``.  Runs shorter than the horizon
        simply never reach the later faults.
    events / clock:
        Shared event log and simulated clock; created when not supplied.
    """

    def __init__(
        self,
        profile: "FaultProfile | str | None",
        world_size: int,
        seed: int = 0,
        horizon: int = 8,
        events: Optional[EventLog] = None,
        clock: Optional[SimClock] = None,
    ):
        if isinstance(profile, str) or profile is None:
            profile = FaultProfile.parse(profile)
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if horizon < max(profile.total, 1):
            raise ValueError(
                f"horizon {horizon} cannot hold {profile.total} scheduled faults"
            )
        kinds = (
            [CRASH] * profile.crashes
            + [TIMEOUT] * profile.timeouts
            + [CORRUPT] * profile.corruptions
        )
        super().__init__(
            kinds,
            num_targets=world_size,
            seed=seed,
            horizon=horizon,
            targeted=(CRASH, CORRUPT),
            events=events,
            clock=clock,
        )
        self.profile = profile
        self.world_size = world_size
        self.dead_ranks: Set[int] = set()

    # ------------------------------------------------------------------ #
    def poll(self, call_index: int, attempt: int) -> Optional[PlannedFault]:
        """The fault (if any) firing at this allreduce call and attempt.

        Timeouts and corruptions fire on the first attempt only — the
        retry that follows succeeds, which is the recovery being modelled.
        Crashes fire once and permanently mark their rank dead.
        """
        for fault in self._by_call.get(call_index, ()):
            if fault.fired:
                continue
            if attempt > 0 and fault.kind in (TIMEOUT, CORRUPT):
                continue
            if fault.kind == CRASH and fault.rank in self.dead_ranks:
                continue
            fault.fired = True
            if fault.kind == CRASH:
                self.dead_ranks.add(fault.rank)
            return fault
        return None

    def revive_all(self) -> None:
        """Bring crashed ranks back (checkpoint-recovery restarts them)."""
        self.dead_ranks.clear()
