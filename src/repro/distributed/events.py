"""Structured fault/recovery event log and the simulated clock behind it.

Every fault-tolerance action in the distributed and training layers —
injected faults, allreduce retries, backoff waits, elastic rank drops,
checkpoint saves/restores — is recorded as a :class:`FaultEvent` in an
:class:`EventLog`.  Benches and tests assert on the *sequence* of events
(e.g. ``crash -> restore -> retry -> recover``), which is what makes the
recovery behaviour testable rather than anecdotal.

Backoff never sleeps: all waiting is modelled by advancing a
:class:`SimClock`, so fault scenarios run deterministically and in
milliseconds regardless of the backoff schedule they exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

# Canonical event kinds, in the vocabulary tests assert against.
CRASH = "crash"
TIMEOUT = "timeout"
CORRUPT = "corrupt"
BACKOFF = "backoff"
RETRY = "retry"
RANK_DROP = "rank_drop"
RESHARD = "reshard"
LR_RESCALE = "lr_rescale"
CHECKPOINT_SAVE = "checkpoint_save"
RESTORE = "restore"
RECOVER = "recover"
GIVE_UP = "give_up"
# Serving-resilience vocabulary (replica chaos, health, breakers, hedging).
REPLICA_CRASH = "replica_crash"
REPLICA_SLOW = "replica_slow"
PREDICT_FLAKY = "predict_flaky"
SERVABLE_CORRUPT = "servable_corrupt"
REPLICA_UNHEALTHY = "replica_unhealthy"
REPLICA_RECOVERED = "replica_recovered"
BREAKER_OPEN = "breaker_open"
BREAKER_HALF_OPEN = "breaker_half_open"
BREAKER_CLOSE = "breaker_close"
HEDGE = "hedge"
FAILOVER = "failover"
BROWNOUT = "brownout"
# Numerical-stability guard vocabulary (detection and recovery transitions).
SPIKE = "spike"
ANOMALY = "anomaly"
GRAD_NORM_ALERT = "grad_norm_alert"
EPS_FLOOR_ALERT = "eps_floor_alert"
GUARD_SKIP = "guard_skip"
LR_BACKOFF = "lr_backoff"
LR_REWARM = "lr_rewarm"
ROLLBACK = "rollback"

EVENT_KINDS = (
    CRASH,
    TIMEOUT,
    CORRUPT,
    BACKOFF,
    RETRY,
    RANK_DROP,
    RESHARD,
    LR_RESCALE,
    CHECKPOINT_SAVE,
    RESTORE,
    RECOVER,
    GIVE_UP,
    REPLICA_CRASH,
    REPLICA_SLOW,
    PREDICT_FLAKY,
    SERVABLE_CORRUPT,
    REPLICA_UNHEALTHY,
    REPLICA_RECOVERED,
    BREAKER_OPEN,
    BREAKER_HALF_OPEN,
    BREAKER_CLOSE,
    HEDGE,
    FAILOVER,
    BROWNOUT,
    SPIKE,
    ANOMALY,
    GRAD_NORM_ALERT,
    EPS_FLOOR_ALERT,
    GUARD_SKIP,
    LR_BACKOFF,
    LR_REWARM,
    ROLLBACK,
)


class SimClock:
    """Monotonic simulated time; backoff waits advance it instead of sleeping."""

    def __init__(self, start: float = 0.0):
        self._t = float(start)

    def now(self) -> float:
        return self._t

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._t += float(seconds)
        return self._t


@dataclass
class FaultEvent:
    """One fault-tolerance event: what happened, to whom, and when."""

    time: float
    kind: str
    rank: Optional[int] = None
    step: Optional[int] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f" rank={self.rank}" if self.rank is not None else ""
        at = f" step={self.step}" if self.step is not None else ""
        return f"FaultEvent(t={self.time:.3f} {self.kind}{where}{at} {self.detail})"


class EventLog:
    """Append-only record of fault/retry/recovery events.

    The log owns (or shares) a :class:`SimClock`; every recorded event is
    stamped with the clock's current simulated time.
    """

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock if clock is not None else SimClock()
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------ #
    def record(
        self,
        kind: str,
        rank: Optional[int] = None,
        step: Optional[int] = None,
        **detail,
    ) -> FaultEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}")
        event = FaultEvent(
            time=self.clock.now(), kind=kind, rank=rank, step=step, detail=detail
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------ #
    # Query helpers for assertions
    # ------------------------------------------------------------------ #
    def kinds(self) -> List[str]:
        """Event kinds in log order."""
        return [e.kind for e in self.events]

    def of_kind(self, kind: str) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return len(self.of_kind(kind))

    def has_sequence(self, kinds: Sequence[str]) -> bool:
        """True when ``kinds`` appears in order (not necessarily contiguous)."""
        it = iter(self.kinds())
        return all(any(k == logged for logged in it) for k in kinds)

    def summary(self) -> Dict[str, int]:
        """Event counts by kind (only kinds that occurred)."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)
