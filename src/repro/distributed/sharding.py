"""ZeRO-style gradient bucketing and optimizer-state sharding.

The paper's scale-out result (Fig. 2) assumes the distributed layer moves
gradients efficiently; a per-parameter allreduce pays the per-message
latency once per *tensor*, and replicating Adam's m/v state on every rank
pays 2x the model size per rank in memory.  This module removes both, the
way ZeRO (Rajbhandari et al., 2020) does:

* :class:`GradientBucketer` packs parameter gradients into fixed-byte flat
  buckets — deterministic partition by registration order, dtype-
  segregated — so a step performs O(num_buckets) collectives instead of
  O(num_tensors).
* :class:`ShardedAdam` / :class:`ShardedAdamW` partition optimizer state
  across ranks: each rank owns a contiguous shard of every bucket, steps
  only the parameters in its shard, and the updated parameter shards are
  reassembled through ``SimComm.allgather_flat``.  Because every Adam
  operation is elementwise, the sharded step is *bit-identical* to dense
  Adam in no-fault runs — the determinism tests assert exact equality.
* :func:`bf16_roundtrip` emulates bfloat16 payload compression (round-to-
  nearest-even on the top 16 bits of the float32 encoding) with a provable
  round-trip relative error bound of 2^-8 for values in the float32 normal
  range (:data:`BF16_RELATIVE_ERROR_BOUND`).

The wire protocol per bucket is reduce-scatter (each rank receives its
shard of the averaged gradient) followed by allgather (each rank
broadcasts its updated parameter shard) — together exactly one ring
allreduce of traffic, but with optimizer state and the second half's
payload sharded N ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.comm import SimComm
from repro.nn.module import Parameter
from repro.optim.adam import Adam

#: Default bucket capacity: 4 MiB, the same order torch.DDP uses (25 MB)
#: scaled to this reproduction's model sizes.
DEFAULT_BUCKET_BYTES = 4 << 20

#: bfloat16 keeps 8 significand bits (7 explicit + 1 implicit), so round-
#: to-nearest introduces at most 2^-8 relative error for normal values.
BF16_RELATIVE_ERROR_BOUND = 2.0 ** -8


# --------------------------------------------------------------------------- #
# bf16 payload-compression emulation
# --------------------------------------------------------------------------- #
def bf16_compress(values: np.ndarray) -> np.ndarray:
    """Encode an array as bfloat16 payload (uint16 of the high float32 bits).

    Round-to-nearest-even on bit 16 of the float32 encoding — the exact
    rounding hardware bf16 conversions perform.  NaNs are preserved as
    quiet NaNs.
    """
    f32 = np.asarray(values, dtype=np.float32)
    bits = f32.view(np.uint32)
    # round-to-nearest-even: add 0x7FFF + lsb of the surviving mantissa.
    rounded = bits + 0x7FFF + ((bits >> 16) & 1)
    out = (rounded >> 16).astype(np.uint16)
    nan_mask = np.isnan(f32)
    if nan_mask.any():
        out = np.where(nan_mask, np.uint16(0x7FC0), out)
    return out

def bf16_decompress(payload: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Decode a bf16 payload back to ``dtype`` (zero-extended mantissa)."""
    bits = np.asarray(payload, dtype=np.uint16).astype(np.uint32) << 16
    return bits.view(np.float32).astype(dtype)


def bf16_roundtrip(values: np.ndarray) -> np.ndarray:
    """Round-trip an array through the emulated bf16 wire format.

    Returns an array of the input's dtype whose values carry the bf16
    quantization the compressed collective would introduce; the relative
    error is bounded by :data:`BF16_RELATIVE_ERROR_BOUND` for inputs in
    the float32 normal range.
    """
    arr = np.asarray(values)
    return bf16_decompress(bf16_compress(arr), dtype=arr.dtype)


def bf16_roundtrip_error(values: np.ndarray) -> float:
    """Measured max relative round-trip error of ``values`` (0 for empty)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    rt = bf16_roundtrip(arr)
    denom = np.maximum(np.abs(arr), np.finfo(np.float32).tiny)
    return float(np.max(np.abs(rt - arr) / denom))


# --------------------------------------------------------------------------- #
# Bucketing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BucketSegment:
    """One parameter's slot inside a bucket's flat layout."""

    param_index: int
    offset: int  # element offset within the bucket
    size: int  # elements
    shape: Tuple[int, ...]


@dataclass(frozen=True)
class Bucket:
    """A fixed-byte group of same-dtype parameters, flattened contiguously."""

    index: int
    dtype: np.dtype
    segments: Tuple[BucketSegment, ...]
    size: int  # total elements

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize


class GradientBucketer:
    """Deterministic fixed-byte bucketing of a parameter list.

    Parameters are walked in registration order and packed greedily into
    buckets of at most ``bucket_bytes`` bytes, one open bucket per dtype
    (payloads of different dtypes cannot share a flat buffer).  A single
    parameter larger than ``bucket_bytes`` gets a bucket of its own.  The
    partition is a disjoint exact cover of every parameter element and is
    a pure function of (shapes, dtypes, order, bucket_bytes) — two
    bucketers built from identical parameter lists always agree, which is
    what lets the strategy and the sharded optimizer partition
    independently yet stay aligned.
    """

    def __init__(
        self, params: Sequence[Parameter], bucket_bytes: int = DEFAULT_BUCKET_BYTES
    ):
        if bucket_bytes < 1:
            raise ValueError(f"bucket_bytes must be >= 1, got {bucket_bytes}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("bucketer received no parameters")
        self.bucket_bytes = int(bucket_bytes)
        self.buckets: List[Bucket] = self._partition()

    def _partition(self) -> List[Bucket]:
        open_segments: Dict[np.dtype, List[BucketSegment]] = {}
        open_elems: Dict[np.dtype, int] = {}
        dtype_order: List[np.dtype] = []
        closed: List[Tuple[np.dtype, List[BucketSegment], int]] = []

        def close(dtype: np.dtype) -> None:
            segs = open_segments.pop(dtype, [])
            if segs:
                closed.append((dtype, segs, open_elems.pop(dtype)))
            else:
                open_elems.pop(dtype, None)

        for i, p in enumerate(self.params):
            data = np.asarray(p.data)
            dtype = data.dtype
            if dtype not in open_segments:
                open_segments[dtype] = []
                open_elems[dtype] = 0
                if dtype not in dtype_order:
                    dtype_order.append(dtype)
            current = open_elems[dtype]
            if (
                open_segments[dtype]
                and (current + data.size) * dtype.itemsize > self.bucket_bytes
            ):
                close(dtype)
                open_segments[dtype] = []
                open_elems[dtype] = 0
                current = 0
            open_segments[dtype].append(
                BucketSegment(
                    param_index=i,
                    offset=current,
                    size=int(data.size),
                    shape=tuple(data.shape),
                )
            )
            open_elems[dtype] = current + int(data.size)
        for dtype in dtype_order:
            close(dtype)
        # Deterministic bucket order: by first segment's param index, i.e.
        # registration order interleaved across dtypes.
        closed.sort(key=lambda entry: entry[1][0].param_index)
        return [
            Bucket(index=b, dtype=dtype, segments=tuple(segs), size=total)
            for b, (dtype, segs, total) in enumerate(closed)
        ]

    # ------------------------------------------------------------------ #
    def flatten(
        self,
        bucket: Bucket,
        arrays: Callable[[int], Optional[np.ndarray]],
    ) -> np.ndarray:
        """Pack per-parameter arrays into the bucket's flat layout.

        ``arrays(param_index)`` returns the tensor for one parameter (or
        None, packed as zeros — a missing gradient contributes nothing to
        the reduction, matching dense DDP's zeros_like fallback).
        """
        flat = np.zeros(bucket.size, dtype=bucket.dtype)
        for seg in bucket.segments:
            arr = arrays(seg.param_index)
            if arr is not None:
                flat[seg.offset : seg.offset + seg.size] = np.ravel(arr)
        return flat

    def flatten_grads(self, bucket: Bucket, grads: Sequence[Optional[np.ndarray]]) -> np.ndarray:
        """Pack one rank's per-parameter gradient list (aligned with params)."""
        return self.flatten(bucket, lambda i: grads[i])

    def flatten_params(self, bucket: Bucket) -> np.ndarray:
        """Pack the current parameter values of a bucket."""
        return self.flatten(bucket, lambda i: self.params[i].data)

    def assign_grads(self, bucket: Bucket, flat: np.ndarray) -> None:
        """Unpack a reduced flat bucket back onto ``param.grad``."""
        if flat.size != bucket.size:
            raise ValueError(
                f"bucket {bucket.index}: flat size {flat.size} != {bucket.size}"
            )
        for seg in bucket.segments:
            self.params[seg.param_index].grad = (
                flat[seg.offset : seg.offset + seg.size].reshape(seg.shape).copy()
            )

    def assign_params(self, bucket: Bucket, flat: np.ndarray) -> None:
        """Write a gathered flat bucket back into ``param.data``."""
        if flat.size != bucket.size:
            raise ValueError(
                f"bucket {bucket.index}: flat size {flat.size} != {bucket.size}"
            )
        for seg in bucket.segments:
            np.copyto(
                self.params[seg.param_index].data,
                flat[seg.offset : seg.offset + seg.size].reshape(seg.shape),
            )

    # ------------------------------------------------------------------ #
    def shard_bounds(self, bucket: Bucket, world_size: int) -> List[Tuple[int, int]]:
        """Per-rank [lo, hi) element bounds of one bucket (exact cover)."""
        return SimComm.shard_bounds(bucket.size, world_size)

    def segment_slices(
        self, bucket: Bucket, lo: int, hi: int
    ) -> List[Tuple[BucketSegment, int, int]]:
        """Segments overlapping bucket range [lo, hi), with per-parameter
        flat offsets: yields (segment, param_lo, param_hi)."""
        out = []
        for seg in bucket.segments:
            a = max(lo, seg.offset)
            b = min(hi, seg.offset + seg.size)
            if a < b:
                out.append((seg, a - seg.offset, b - seg.offset))
        return out

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    def total_elements(self) -> int:
        return sum(b.size for b in self.buckets)

    def describe(self) -> str:
        lines = [
            f"{len(self.buckets)} buckets over {len(self.params)} params, "
            f"cap {self.bucket_bytes} B"
        ]
        for b in self.buckets:
            lines.append(
                f"  bucket {b.index}: dtype={b.dtype.name}, "
                f"{len(b.segments)} tensors, {b.nbytes} B"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Sharded optimizer
# --------------------------------------------------------------------------- #
def _flat_view(arr: np.ndarray) -> np.ndarray:
    """A flat *view* of a C-contiguous array (raises if a copy would be made)."""
    view = arr.view()
    view.shape = (-1,)
    return view


class ShardedAdam(Adam):
    """Adam with ZeRO-style optimizer-state sharding.

    Each simulated rank owns a contiguous shard of every gradient bucket;
    only the owner steps the parameters in its shard, then the updated
    parameter shards are reassembled through the communicator's fault-
    aware ``allgather_flat``.  Every update operation is elementwise, so
    the result is bit-identical to dense :class:`~repro.optim.Adam` on
    the same gradients — sharding changes who computes, not what.

    Per-rank optimizer state is ~``2 * P / N`` (m and v over the owned
    shard) instead of dense Adam's ``2 * P``; :meth:`state_bytes` reports
    both for the memory accounting in the benches.

    Parameters
    ----------
    comm:
        Communicator used for the parameter allgather; its world size
        defines the shard partition.  Defaults to a single-rank world
        (sharding degenerates to dense Adam, still bit-identical).
    bucket_bytes / bucketer:
        Bucket layout; built from the parameter list when not supplied.
        Must match the strategy's layout when a bucketed
        ``DDPStrategy`` feeds this optimizer (both are deterministic in
        (params, bucket_bytes), so equal knobs mean equal layouts).

    ``update_clip`` is rejected: StableAdamW's clip needs the per-tensor
    RMS of the whole update, which is not shard-local.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        amsgrad: bool = False,
        comm: Optional[SimComm] = None,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        bucketer: Optional[GradientBucketer] = None,
    ) -> None:
        super().__init__(
            params,
            lr,
            betas=betas,
            eps=eps,
            weight_decay=weight_decay,
            amsgrad=amsgrad,
            update_clip=None,
        )
        self.comm = comm if comm is not None else SimComm(1)
        self.bucketer = (
            bucketer
            if bucketer is not None
            else GradientBucketer(self.params, bucket_bytes=bucket_bytes)
        )
        if self.bucketer.params is not self.params:
            # An externally supplied bucketer must describe the same tensors.
            if len(self.bucketer.params) != len(self.params):
                raise ValueError("bucketer covers a different parameter list")

    # ------------------------------------------------------------------ #
    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        world = self.comm.world_size
        for bucket in self.bucketer.buckets:
            bounds = self.bucketer.shard_bounds(bucket, world)
            for lo, hi in bounds:
                self._step_shard(bucket, lo, hi, bias1, bias2)
            # Reassemble the updated parameters: each rank contributes the
            # shard it owns; the fault-aware ring allgather moves
            # (N-1)/N * bucket bytes per rank and retries injected faults.
            flat = self.bucketer.flatten_params(bucket)
            shards = [flat[lo:hi] for lo, hi in bounds]
            gathered = self.comm.allgather_flat(shards)
            self.bucketer.assign_params(bucket, gathered[0])

    def _step_shard(
        self, bucket: Bucket, lo: int, hi: int, bias1: float, bias2: float
    ) -> None:
        """One rank's Adam update over its owned slice of one bucket.

        Mirrors the dense reference update exactly, restricted to the flat
        range [lo, hi): identical elementwise expressions on identical
        values produce identical bits.
        """
        for seg, a, b in self.bucketer.segment_slices(bucket, lo, hi):
            p = self.params[seg.param_index]
            if p.grad is None:
                continue
            state = self.state.setdefault(seg.param_index, {})
            if "m" not in state:
                state["m"] = np.zeros_like(p.data)
                state["v"] = np.zeros_like(p.data)
                if self.amsgrad:
                    state["vmax"] = np.zeros_like(p.data)
            sl = slice(a, b)
            g = _flat_view(p.grad)[sl]
            pdata = _flat_view(p.data)
            if self.weight_decay and not self._decoupled:
                g = g + self.weight_decay * pdata[sl]
            m = _flat_view(state["m"])[sl]
            v = _flat_view(state["v"])[sl]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / bias1
            if self.amsgrad:
                vmax = _flat_view(state["vmax"])[sl]
                np.maximum(vmax, v, out=vmax)
                v_hat = vmax / bias2
            else:
                v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay and self._decoupled:
                pdata[sl] -= self.lr * self.weight_decay * pdata[sl]
            pdata[sl] -= self.lr * update

    # ------------------------------------------------------------------ #
    def shard_ownership(self, rank: Optional[int] = None) -> List[Tuple[int, int, int]]:
        """(bucket, lo, hi) slices owned by ``rank`` (or all ranks' slices)."""
        world = self.comm.world_size
        out = []
        for bucket in self.bucketer.buckets:
            bounds = self.bucketer.shard_bounds(bucket, world)
            if rank is None:
                out.extend((bucket.index, lo, hi) for lo, hi in bounds)
            else:
                lo, hi = bounds[rank]
                out.append((bucket.index, lo, hi))
        return out

    def state_bytes(self, rank: Optional[int] = None) -> int:
        """Optimizer-state bytes held by one rank (or replicated-dense total).

        ``rank=None`` reports what dense Adam replicates on *every* rank;
        a specific rank reports only its owned shard — the ZeRO memory win.
        """
        per_entry = 3 if self.amsgrad else 2  # m, v (, vmax)
        if rank is None:
            return per_entry * sum(
                b.size * b.dtype.itemsize for b in self.bucketer.buckets
            )
        world = self.comm.world_size
        total = 0
        for bucket in self.bucketer.buckets:
            lo, hi = self.bucketer.shard_bounds(bucket, world)[rank]
            total += per_entry * (hi - lo) * bucket.dtype.itemsize
        return total


class ShardedAdamW(ShardedAdam):
    """Sharded Adam with decoupled weight decay (ZeRO AdamW)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-2,
        amsgrad: bool = False,
        comm: Optional[SimComm] = None,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        bucketer: Optional[GradientBucketer] = None,
    ) -> None:
        super().__init__(
            params,
            lr,
            betas=betas,
            eps=eps,
            weight_decay=weight_decay,
            amsgrad=amsgrad,
            comm=comm,
            bucket_bytes=bucket_bytes,
            bucketer=bucketer,
        )
        self._decoupled = True
