"""``SimComm``: an in-process, MPI-flavoured communicator.

Rank-local values are held as Python lists indexed by rank; collectives
compute exactly what their MPI counterparts would and additionally meter
traffic (message counts and bytes, ring-allreduce accounting), which the
performance model consumes.  The interface intentionally shadows mpi4py's
lower-case object API (``allreduce``, ``bcast``, ``gather``, ...).

Fault tolerance: when a :class:`~repro.distributed.faults.FaultInjector`
is attached, ``allreduce`` runs under retry-with-exponential-backoff
semantics.  Injected timeouts and corrupted contributions are detected,
logged to the shared event log, waited out on the *simulated* clock (no
real sleeps), and retried; rank crashes raise :class:`RankCrash` so the
strategy layer can either drop the rank elastically (``shrink``) or
escalate to checkpoint recovery.  Without an injector the healthy fast
path is byte-for-byte the original behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.distributed.events import (
    BACKOFF,
    CORRUPT,
    CRASH,
    GIVE_UP,
    RANK_DROP,
    RETRY,
    TIMEOUT,
    EventLog,
    SimClock,
)
from repro.distributed.faults import (
    AllreduceTimeout,
    FaultInjector,
    RankCrash,
    RetryPolicy,
)


@dataclass
class TrafficLog:
    """Accumulated communication metering."""

    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    bcast_calls: int = 0
    bcast_bytes: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    retry_calls: int = 0
    retry_bytes: int = 0

    def reset(self) -> None:
        self.allreduce_calls = 0
        self.allreduce_bytes = 0
        self.bcast_calls = 0
        self.bcast_bytes = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0
        self.retry_calls = 0
        self.retry_bytes = 0


class SimComm:
    """A simulated communicator over ``world_size`` ranks.

    Collectives take per-rank sequences (index = rank) and return per-rank
    results, mirroring SPMD semantics without processes.  All byte counts
    use the ring-allreduce volume 2 * (N-1)/N * payload per rank, the
    algorithm oneCCL/NCCL use for large tensors.

    Parameters
    ----------
    world_size:
        Rank count.  Mutable through :meth:`shrink`/:meth:`restore_world`
        (elastic fault handling); ``initial_world_size`` keeps the original.
    injector:
        Optional fault injector; its event log and simulated clock become
        this communicator's ``events``/``clock``.
    retry:
        Retry/backoff semantics for fault-aware allreduce.
    """

    def __init__(
        self,
        world_size: int,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.initial_world_size = world_size
        self.traffic = TrafficLog()
        self.injector = injector
        self.retry = retry if retry is not None else RetryPolicy()
        self._allreduce_index = 0
        #: Optional :class:`~repro.observability.Tracer` (duck-typed; set by
        #: the trainer when an Observer is attached).  Each ``allreduce``
        #: call — one gradient bucket — then becomes a ``comm.allreduce``
        #: span covering the full retry loop, with byte/retry attributes.
        self.tracer = None

    # ------------------------------------------------------------------ #
    @property
    def events(self) -> Optional[EventLog]:
        return self.injector.events if self.injector is not None else None

    @property
    def clock(self) -> Optional[SimClock]:
        return self.injector.clock if self.injector is not None else None

    # ------------------------------------------------------------------ #
    def _check(self, values: Sequence) -> None:
        if len(values) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} per-rank values, got {len(values)}"
            )

    @staticmethod
    def _nbytes(value) -> int:
        arr = np.asarray(value)
        return int(arr.nbytes)

    # ------------------------------------------------------------------ #
    # Elastic world management
    # ------------------------------------------------------------------ #
    def shrink(self, dead_rank: int) -> int:
        """Drop one rank from the world (elastic degradation); returns the new size."""
        if self.world_size <= 1:
            raise ValueError("cannot shrink a single-rank world")
        self.world_size -= 1
        if self.events is not None:
            self.events.record(RANK_DROP, rank=dead_rank, world_size=self.world_size)
        return self.world_size

    def restore_world(self) -> int:
        """Bring the world back to full strength (checkpoint recovery restarts ranks)."""
        self.world_size = self.initial_world_size
        if self.injector is not None:
            self.injector.revive_all()
        return self.world_size

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    @staticmethod
    def _reduce(arrays: List[np.ndarray], op: str) -> np.ndarray:
        if op == "sum":
            return np.sum(arrays, axis=0)
        if op == "mean":
            return np.mean(arrays, axis=0)
        if op == "max":
            return np.max(arrays, axis=0)
        if op == "min":
            return np.min(arrays, axis=0)
        raise ValueError(f"unsupported op {op!r}")

    def _meter_allreduce(self, payload: int, wasted: bool = False) -> None:
        volume = 0
        if self.world_size > 1:
            volume = int(
                2 * (self.world_size - 1) / self.world_size * payload * self.world_size
            )
        if wasted:
            self.traffic.retry_calls += 1
            self.traffic.retry_bytes += volume
        else:
            self.traffic.allreduce_calls += 1
            self.traffic.allreduce_bytes += volume

    def allreduce(self, values: Sequence[np.ndarray], op: str = "sum") -> List[np.ndarray]:
        """Reduce across ranks; every rank receives the result.

        With a fault injector attached, failed attempts back off on the
        simulated clock and retry up to ``retry.max_retries`` times; an
        injected crash raises :class:`RankCrash` immediately (a dead rank
        cannot be waited back), and an exhausted retry budget raises
        :class:`AllreduceTimeout`.
        """
        self._check(values)
        arrays = [np.asarray(v, dtype=np.float64) for v in values]
        # Validate the op up front so bad ops fail identically on both paths.
        if op not in ("sum", "mean", "max", "min"):
            raise ValueError(f"unsupported op {op!r}")
        payload = self._nbytes(arrays[0])
        if self.tracer is None:
            return self._allreduce(arrays, op, payload)
        with self.tracer.span(
            "comm.allreduce", bytes=payload, ranks=self.world_size, op=op
        ):
            return self._allreduce(arrays, op, payload)

    def _allreduce(
        self, arrays: List[np.ndarray], op: str, payload: int
    ) -> List[np.ndarray]:
        if self.injector is None:
            result = self._reduce(arrays, op)
            self._meter_allreduce(payload)
            return [result.copy() for _ in range(self.world_size)]

        call_index = self._allreduce_index
        self._allreduce_index += 1
        for attempt in range(self.retry.max_retries + 1):
            fault = self.injector.poll(call_index, attempt)
            if fault is None:
                result = self._reduce(arrays, op)
                self._meter_allreduce(payload)
                return [result.copy() for _ in range(self.world_size)]
            if fault.kind == CRASH:
                self.events.record(
                    CRASH, rank=fault.rank, call=call_index, attempt=attempt
                )
                raise RankCrash(fault.rank)
            if fault.kind == TIMEOUT:
                self.events.record(TIMEOUT, call=call_index, attempt=attempt)
            else:  # CORRUPT: poison the victim's contribution and detect it.
                victim = fault.rank % len(arrays)
                poisoned = list(arrays)
                poisoned[victim] = np.full_like(arrays[victim], np.nan)
                trial = self._reduce(poisoned, op)
                corrupted = not bool(np.isfinite(trial).all())
                self.events.record(
                    CORRUPT,
                    rank=fault.rank,
                    call=call_index,
                    attempt=attempt,
                    detected=corrupted,
                )
            # The failed attempt moved (wasted) bytes; account for them.
            self._meter_allreduce(payload, wasted=True)
            if self.tracer is not None:
                self.tracer.incr("retries")
            wait = self.retry.backoff(attempt)
            self.injector.clock.advance(wait)
            self.events.record(BACKOFF, call=call_index, seconds=wait)
            self.events.record(RETRY, call=call_index, attempt=attempt + 1)
        self.events.record(GIVE_UP, call=call_index)
        raise AllreduceTimeout(
            f"allreduce call {call_index} failed after "
            f"{self.retry.max_retries + 1} attempts"
        )

    def bcast(self, value, root: int = 0) -> List:
        """Every rank receives the root's value."""
        if not 0 <= root < self.world_size:
            raise ValueError(f"invalid root {root}")
        self.traffic.bcast_calls += 1
        if self.world_size > 1:
            self.traffic.bcast_bytes += self._nbytes(value) * (self.world_size - 1)
        arr = np.asarray(value)
        return [arr.copy() for _ in range(self.world_size)]

    def gather(self, values: Sequence, root: int = 0) -> List:
        """Root receives the list of per-rank values; others receive None."""
        self._check(values)
        self.traffic.p2p_messages += self.world_size - 1
        self.traffic.p2p_bytes += sum(self._nbytes(v) for i, v in enumerate(values) if i != root)
        return [list(values) if rank == root else None for rank in range(self.world_size)]

    def allgather(self, values: Sequence) -> List[List]:
        """Every rank receives every rank's value."""
        self._check(values)
        self.traffic.p2p_messages += self.world_size * (self.world_size - 1)
        self.traffic.p2p_bytes += sum(self._nbytes(v) for v in values) * (self.world_size - 1)
        return [list(values) for _ in range(self.world_size)]

    def scatter(self, values: Sequence, root: int = 0) -> List:
        """Rank r receives values[r] (values live on the root)."""
        self._check(values)
        self.traffic.p2p_messages += self.world_size - 1
        self.traffic.p2p_bytes += sum(self._nbytes(v) for i, v in enumerate(values) if i != root)
        return list(values)

    def reduce_scalar(self, values: Sequence[float], op: Callable = sum) -> float:
        """Convenience: reduce python scalars (metric aggregation)."""
        self._check(values)
        return float(op(values))

    def barrier(self) -> None:
        """No-op in simulation; present to keep call sites SPMD-shaped."""
