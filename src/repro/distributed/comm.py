"""``SimComm``: an in-process, MPI-flavoured communicator.

Rank-local values are held as Python lists indexed by rank; collectives
compute exactly what their MPI counterparts would and additionally meter
traffic (message counts and bytes, ring-allreduce accounting), which the
performance model consumes.  The interface intentionally shadows mpi4py's
lower-case object API (``allreduce``, ``bcast``, ``gather``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np


@dataclass
class TrafficLog:
    """Accumulated communication metering."""

    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    bcast_calls: int = 0
    bcast_bytes: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0

    def reset(self) -> None:
        self.allreduce_calls = 0
        self.allreduce_bytes = 0
        self.bcast_calls = 0
        self.bcast_bytes = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0


class SimComm:
    """A simulated communicator over ``world_size`` ranks.

    Collectives take per-rank sequences (index = rank) and return per-rank
    results, mirroring SPMD semantics without processes.  All byte counts
    use the ring-allreduce volume 2 * (N-1)/N * payload per rank, the
    algorithm oneCCL/NCCL use for large tensors.
    """

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.traffic = TrafficLog()

    # ------------------------------------------------------------------ #
    def _check(self, values: Sequence) -> None:
        if len(values) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} per-rank values, got {len(values)}"
            )

    @staticmethod
    def _nbytes(value) -> int:
        arr = np.asarray(value)
        return int(arr.nbytes)

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    def allreduce(self, values: Sequence[np.ndarray], op: str = "sum") -> List[np.ndarray]:
        """Reduce across ranks; every rank receives the result."""
        self._check(values)
        arrays = [np.asarray(v, dtype=np.float64) for v in values]
        if op == "sum":
            result = np.sum(arrays, axis=0)
        elif op == "mean":
            result = np.mean(arrays, axis=0)
        elif op == "max":
            result = np.max(arrays, axis=0)
        elif op == "min":
            result = np.min(arrays, axis=0)
        else:
            raise ValueError(f"unsupported op {op!r}")
        payload = self._nbytes(arrays[0])
        self.traffic.allreduce_calls += 1
        if self.world_size > 1:
            self.traffic.allreduce_bytes += int(
                2 * (self.world_size - 1) / self.world_size * payload * self.world_size
            )
        return [result.copy() for _ in range(self.world_size)]

    def bcast(self, value, root: int = 0) -> List:
        """Every rank receives the root's value."""
        if not 0 <= root < self.world_size:
            raise ValueError(f"invalid root {root}")
        self.traffic.bcast_calls += 1
        if self.world_size > 1:
            self.traffic.bcast_bytes += self._nbytes(value) * (self.world_size - 1)
        arr = np.asarray(value)
        return [arr.copy() for _ in range(self.world_size)]

    def gather(self, values: Sequence, root: int = 0) -> List:
        """Root receives the list of per-rank values; others receive None."""
        self._check(values)
        self.traffic.p2p_messages += self.world_size - 1
        self.traffic.p2p_bytes += sum(self._nbytes(v) for i, v in enumerate(values) if i != root)
        return [list(values) if rank == root else None for rank in range(self.world_size)]

    def allgather(self, values: Sequence) -> List[List]:
        """Every rank receives every rank's value."""
        self._check(values)
        self.traffic.p2p_messages += self.world_size * (self.world_size - 1)
        self.traffic.p2p_bytes += sum(self._nbytes(v) for v in values) * (self.world_size - 1)
        return [list(values) for _ in range(self.world_size)]

    def scatter(self, values: Sequence, root: int = 0) -> List:
        """Rank r receives values[r] (values live on the root)."""
        self._check(values)
        self.traffic.p2p_messages += self.world_size - 1
        self.traffic.p2p_bytes += sum(self._nbytes(v) for i, v in enumerate(values) if i != root)
        return list(values)

    def reduce_scalar(self, values: Sequence[float], op: Callable = sum) -> float:
        """Convenience: reduce python scalars (metric aggregation)."""
        self._check(values)
        return float(op(values))

    def barrier(self) -> None:
        """No-op in simulation; present to keep call sites SPMD-shaped."""
