"""``SimComm``: an in-process, MPI-flavoured communicator.

Rank-local values are held as Python lists indexed by rank; collectives
compute exactly what their MPI counterparts would and additionally meter
traffic (message counts and bytes, ring-allreduce accounting), which the
performance model consumes.  The interface intentionally shadows mpi4py's
lower-case object API (``allreduce``, ``bcast``, ``gather``, ...).

Fault tolerance: when a :class:`~repro.distributed.faults.FaultInjector`
is attached, ``allreduce`` — and the bucket collectives
``reduce_scatter`` / ``allgather_flat`` the ZeRO-sharded gradient path
uses — run under retry-with-exponential-backoff semantics.  Injected
timeouts and corrupted contributions are detected, logged to the shared
event log, waited out on the *simulated* clock (no real sleeps), and
retried; rank crashes raise :class:`RankCrash` so the strategy layer can
either drop the rank elastically (``shrink``) or escalate to checkpoint
recovery.  Without an injector the healthy fast path is byte-for-byte
the original behaviour.

Traffic accounting separates *useful* bytes (the volume one successful
pass of each collective moves) from *wasted* bytes (traffic burned by
attempts that failed and were retried): useful volume is metered per
collective kind (``allreduce_bytes``, ``reduce_scatter_bytes``,
``allgather_bytes``), wasted volume lands in ``retry_bytes`` only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.distributed.events import (
    BACKOFF,
    CORRUPT,
    CRASH,
    GIVE_UP,
    RANK_DROP,
    RETRY,
    TIMEOUT,
    EventLog,
    SimClock,
)
from repro.distributed.faults import (
    AllreduceTimeout,
    FaultInjector,
    RankCrash,
    RetryPolicy,
)


@dataclass
class TrafficLog:
    """Accumulated communication metering.

    Useful traffic is metered per collective kind; ``retry_calls`` /
    ``retry_bytes`` meter *wasted* traffic — attempts that failed under
    fault injection and were retried — across every collective kind, so
    goodput and overhead can be read independently.
    """

    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    reduce_scatter_calls: int = 0
    reduce_scatter_bytes: int = 0
    allgather_calls: int = 0
    allgather_bytes: int = 0
    bcast_calls: int = 0
    bcast_bytes: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    retry_calls: int = 0
    retry_bytes: int = 0

    def reset(self) -> None:
        self.allreduce_calls = 0
        self.allreduce_bytes = 0
        self.reduce_scatter_calls = 0
        self.reduce_scatter_bytes = 0
        self.allgather_calls = 0
        self.allgather_bytes = 0
        self.bcast_calls = 0
        self.bcast_bytes = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0
        self.retry_calls = 0
        self.retry_bytes = 0

    @property
    def collective_calls(self) -> int:
        """Successful gradient/param collective messages (no p2p, no waste)."""
        return self.allreduce_calls + self.reduce_scatter_calls + self.allgather_calls

    @property
    def useful_bytes(self) -> int:
        """Bytes that contributed to completed collectives."""
        return (
            self.allreduce_bytes
            + self.reduce_scatter_bytes
            + self.allgather_bytes
            + self.bcast_bytes
            + self.p2p_bytes
        )

    @property
    def wasted_bytes(self) -> int:
        """Bytes moved by failed attempts that had to be retried."""
        return self.retry_bytes


class SimComm:
    """A simulated communicator over ``world_size`` ranks.

    Collectives take per-rank sequences (index = rank) and return per-rank
    results, mirroring SPMD semantics without processes.  All byte counts
    use the ring-allreduce volume 2 * (N-1)/N * payload per rank, the
    algorithm oneCCL/NCCL use for large tensors; ``reduce_scatter`` and
    ``allgather_flat`` each meter one ring half ((N-1)/N * payload per
    rank), so a reduce-scatter + allgather pair moves exactly what one
    allreduce does.

    Parameters
    ----------
    world_size:
        Rank count.  Mutable through :meth:`shrink`/:meth:`restore_world`
        (elastic fault handling); ``initial_world_size`` keeps the original.
    injector:
        Optional fault injector; its event log and simulated clock become
        this communicator's ``events``/``clock``.  All fault-aware
        collectives draw faults from one shared call-index stream.
    retry:
        Retry/backoff semantics for fault-aware collectives.
    """

    def __init__(
        self,
        world_size: int,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.initial_world_size = world_size
        self.traffic = TrafficLog()
        self.injector = injector
        self.retry = retry if retry is not None else RetryPolicy()
        #: Shared fault-aware collective call counter: allreduce,
        #: reduce_scatter, and allgather_flat all consume indices from this
        #: stream, so a fault profile's horizon covers bucketed runs too.
        self._collective_index = 0
        #: Optional :class:`~repro.observability.Tracer` (duck-typed; set by
        #: the trainer when an Observer is attached).  Each fault-aware
        #: collective call — one gradient bucket — then becomes a
        #: ``comm.<collective>`` span covering the full retry loop, with
        #: byte/retry attributes.
        self.tracer = None

    # ------------------------------------------------------------------ #
    @property
    def events(self) -> Optional[EventLog]:
        return self.injector.events if self.injector is not None else None

    @property
    def clock(self) -> Optional[SimClock]:
        return self.injector.clock if self.injector is not None else None

    # ------------------------------------------------------------------ #
    def _check(self, values: Sequence) -> None:
        if len(values) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} per-rank values, got {len(values)}"
            )

    @staticmethod
    def _nbytes(value) -> int:
        """Payload bytes of one rank's contribution.

        Ragged sequences (e.g. per-bucket shard lists whose last shard is
        shorter) cannot be converted to a rectangular array; ``np.asarray``
        would either raise or produce an *object* array whose ``nbytes`` is
        pointer size — both wrong for metering.  Sum the elements instead.
        """
        if isinstance(value, np.ndarray):
            if value.dtype == object:
                return sum(SimComm._nbytes(v) for v in value.tolist())
            return int(value.nbytes)
        if isinstance(value, (list, tuple)):
            try:
                arr = np.asarray(value)
            except ValueError:  # ragged
                return sum(SimComm._nbytes(v) for v in value)
            if arr.dtype == object:
                return sum(SimComm._nbytes(v) for v in value)
            return int(arr.nbytes)
        return int(np.asarray(value).nbytes)

    # ------------------------------------------------------------------ #
    # Elastic world management
    # ------------------------------------------------------------------ #
    def shrink(self, dead_rank: int) -> int:
        """Drop one rank from the world (elastic degradation); returns the new size."""
        if self.world_size <= 1:
            raise ValueError("cannot shrink a single-rank world")
        self.world_size -= 1
        if self.events is not None:
            self.events.record(RANK_DROP, rank=dead_rank, world_size=self.world_size)
        return self.world_size

    def restore_world(self) -> int:
        """Bring the world back to full strength (checkpoint recovery restarts ranks)."""
        self.world_size = self.initial_world_size
        if self.injector is not None:
            self.injector.revive_all()
        return self.world_size

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    @staticmethod
    def _reduce(arrays: List[np.ndarray], op: str) -> np.ndarray:
        if op == "sum":
            return np.sum(arrays, axis=0)
        if op == "mean":
            return np.mean(arrays, axis=0)
        if op == "max":
            return np.max(arrays, axis=0)
        if op == "min":
            return np.min(arrays, axis=0)
        raise ValueError(f"unsupported op {op!r}")

    def _meter(self, kind: str, volume: int, wasted: bool = False) -> None:
        """Account one collective pass: useful by kind, wasted to retry_*."""
        if wasted:
            self.traffic.retry_calls += 1
            self.traffic.retry_bytes += volume
            return
        setattr(
            self.traffic, f"{kind}_calls", getattr(self.traffic, f"{kind}_calls") + 1
        )
        setattr(
            self.traffic, f"{kind}_bytes", getattr(self.traffic, f"{kind}_bytes") + volume
        )

    def _ring_volume(self, payload: int, halves: int = 2) -> int:
        """Total ring traffic for one collective over the current world.

        ``halves=2`` is a full allreduce (reduce-scatter + allgather);
        ``halves=1`` is either half on its own.
        """
        if self.world_size <= 1:
            return 0
        return int(
            halves
            * (self.world_size - 1)
            / self.world_size
            * payload
            * self.world_size
        )

    def _meter_allreduce(self, payload: int, wasted: bool = False) -> None:
        self._meter("allreduce", self._ring_volume(payload, halves=2), wasted=wasted)

    def _run_with_faults(
        self,
        kind: str,
        arrays: List[np.ndarray],
        attempt_fn: Callable[[List[np.ndarray]], List[np.ndarray]],
        meter: Callable[[bool], None],
    ) -> List[np.ndarray]:
        """Run one collective under the shared retry/backoff fault semantics.

        ``attempt_fn(arrays)`` computes the per-rank results of one healthy
        pass; it is re-invoked on a poisoned contribution set to model a
        corruption (results discarded, detection logged).  Healthy path
        (no injector) is a single metered call.
        """
        if self.injector is None:
            result = attempt_fn(arrays)
            meter(False)
            return result

        call_index = self._collective_index
        self._collective_index += 1
        for attempt in range(self.retry.max_retries + 1):
            fault = self.injector.poll(call_index, attempt)
            if fault is None:
                result = attempt_fn(arrays)
                meter(False)
                return result
            if fault.kind == CRASH:
                self.events.record(
                    CRASH, rank=fault.rank, call=call_index, attempt=attempt
                )
                raise RankCrash(fault.rank)
            if fault.kind == TIMEOUT:
                self.events.record(TIMEOUT, call=call_index, attempt=attempt)
            else:  # CORRUPT: poison the victim's contribution and detect it.
                victim = fault.rank % len(arrays)
                poisoned = list(arrays)
                poisoned[victim] = np.full_like(arrays[victim], np.nan)
                trial = attempt_fn(poisoned)
                corrupted = not all(
                    bool(np.isfinite(np.asarray(t)).all()) for t in trial
                )
                self.events.record(
                    CORRUPT,
                    rank=fault.rank,
                    call=call_index,
                    attempt=attempt,
                    detected=corrupted,
                )
            # The failed attempt moved (wasted) bytes; account for them.
            meter(True)
            if self.tracer is not None:
                self.tracer.incr("retries")
            wait = self.retry.backoff(attempt)
            self.injector.clock.advance(wait)
            self.events.record(BACKOFF, call=call_index, seconds=wait)
            self.events.record(RETRY, call=call_index, attempt=attempt + 1)
        self.events.record(GIVE_UP, call=call_index)
        raise AllreduceTimeout(
            f"{kind} call {call_index} failed after "
            f"{self.retry.max_retries + 1} attempts"
        )

    def allreduce(self, values: Sequence[np.ndarray], op: str = "sum") -> List[np.ndarray]:
        """Reduce across ranks; every rank receives the result.

        With a fault injector attached, failed attempts back off on the
        simulated clock and retry up to ``retry.max_retries`` times; an
        injected crash raises :class:`RankCrash` immediately (a dead rank
        cannot be waited back), and an exhausted retry budget raises
        :class:`AllreduceTimeout`.
        """
        self._check(values)
        arrays = [np.asarray(v, dtype=np.float64) for v in values]
        # Validate the op up front so bad ops fail identically on both paths.
        if op not in ("sum", "mean", "max", "min"):
            raise ValueError(f"unsupported op {op!r}")
        payload = self._nbytes(arrays[0])
        if self.tracer is None:
            return self._allreduce(arrays, op, payload)
        with self.tracer.span(
            "comm.allreduce", bytes=payload, ranks=self.world_size, op=op
        ):
            return self._allreduce(arrays, op, payload)

    def _allreduce(
        self, arrays: List[np.ndarray], op: str, payload: int
    ) -> List[np.ndarray]:
        def attempt(contribs: List[np.ndarray]) -> List[np.ndarray]:
            result = self._reduce(contribs, op)
            return [result.copy() for _ in range(self.world_size)]

        return self._run_with_faults(
            "allreduce",
            arrays,
            attempt,
            lambda wasted: self._meter_allreduce(payload, wasted=wasted),
        )

    # ------------------------------------------------------------------ #
    # Bucketed (ZeRO) collectives
    # ------------------------------------------------------------------ #
    @staticmethod
    def shard_bounds(n: int, world_size: int) -> List[tuple]:
        """Contiguous per-rank [lo, hi) partition of ``n`` flat elements.

        Deterministic exact cover: the first ``n % world_size`` ranks own
        one extra element.  Shared by ``reduce_scatter`` and the sharded
        optimizer so gradient shards and state shards always align.
        """
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        base, rem = divmod(n, world_size)
        bounds = []
        lo = 0
        for r in range(world_size):
            hi = lo + base + (1 if r < rem else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def reduce_scatter(
        self,
        values: Sequence[np.ndarray],
        op: str = "sum",
        wire_bytes: Optional[int] = None,
    ) -> List[np.ndarray]:
        """Reduce across ranks; rank ``r`` receives shard ``r`` of the result.

        One ring half: each rank moves (N-1)/N of the payload.  Fault
        semantics match :meth:`allreduce` (shared call-index stream, retry
        with backoff, crash escalation).  ``wire_bytes`` overrides the
        metered payload — the bf16 compression emulation transmits half-
        precision bytes while the simulation carries full-precision arrays.
        """
        self._check(values)
        if op not in ("sum", "mean", "max", "min"):
            raise ValueError(f"unsupported op {op!r}")
        arrays = [np.asarray(v) for v in values]
        n = int(arrays[0].size)
        for a in arrays:
            if a.ndim != 1 or a.size != n:
                raise ValueError("reduce_scatter expects equal-length flat arrays")
        payload = wire_bytes if wire_bytes is not None else self._nbytes(arrays[0])
        bounds = self.shard_bounds(n, self.world_size)

        def attempt(contribs: List[np.ndarray]) -> List[np.ndarray]:
            reduced = self._reduce(contribs, op)
            return [reduced[lo:hi].copy() for lo, hi in bounds]

        def run() -> List[np.ndarray]:
            return self._run_with_faults(
                "reduce_scatter",
                arrays,
                attempt,
                lambda wasted: self._meter(
                    "reduce_scatter", self._ring_volume(payload, halves=1), wasted
                ),
            )

        if self.tracer is None:
            return run()
        with self.tracer.span(
            "comm.reduce_scatter", bytes=payload, ranks=self.world_size, op=op
        ):
            return run()

    def allgather_flat(
        self, shards: Sequence[np.ndarray], wire_bytes: Optional[int] = None
    ) -> List[np.ndarray]:
        """Every rank receives the concatenation of all ranks' flat shards.

        The inverse of :meth:`reduce_scatter`: one ring half, metered at
        (N-1)/N of the concatenated payload per rank, fault semantics
        shared with :meth:`allreduce`.
        """
        self._check(shards)
        arrays = [np.atleast_1d(np.asarray(s)) for s in shards]
        payload = (
            wire_bytes
            if wire_bytes is not None
            else sum(self._nbytes(a) for a in arrays)
        )

        def attempt(contribs: List[np.ndarray]) -> List[np.ndarray]:
            full = (
                np.concatenate(contribs) if len(contribs) > 1 else contribs[0].copy()
            )
            return [full.copy() for _ in range(self.world_size)]

        def run() -> List[np.ndarray]:
            return self._run_with_faults(
                "allgather",
                arrays,
                attempt,
                lambda wasted: self._meter(
                    "allgather", self._ring_volume(payload, halves=1), wasted
                ),
            )

        if self.tracer is None:
            return run()
        with self.tracer.span(
            "comm.allgather", bytes=payload, ranks=self.world_size
        ):
            return run()

    # ------------------------------------------------------------------ #
    def bcast(self, value, root: int = 0) -> List:
        """Every rank receives the root's value."""
        if not 0 <= root < self.world_size:
            raise ValueError(f"invalid root {root}")
        self.traffic.bcast_calls += 1
        if self.world_size > 1:
            self.traffic.bcast_bytes += self._nbytes(value) * (self.world_size - 1)
        arr = np.asarray(value)
        return [arr.copy() for _ in range(self.world_size)]

    def gather(self, values: Sequence, root: int = 0) -> List:
        """Root receives the list of per-rank values; others receive None."""
        self._check(values)
        self.traffic.p2p_messages += self.world_size - 1
        self.traffic.p2p_bytes += sum(self._nbytes(v) for i, v in enumerate(values) if i != root)
        return [list(values) if rank == root else None for rank in range(self.world_size)]

    def allgather(self, values: Sequence) -> List[List]:
        """Every rank receives every rank's value."""
        self._check(values)
        self.traffic.p2p_messages += self.world_size * (self.world_size - 1)
        self.traffic.p2p_bytes += sum(self._nbytes(v) for v in values) * (self.world_size - 1)
        return [list(values) for _ in range(self.world_size)]

    def scatter(self, values: Sequence, root: int = 0) -> List:
        """Rank r receives values[r] (values live on the root)."""
        self._check(values)
        self.traffic.p2p_messages += self.world_size - 1
        self.traffic.p2p_bytes += sum(self._nbytes(v) for i, v in enumerate(values) if i != root)
        return list(values)

    def reduce_scalar(self, values: Sequence[float], op: Callable = sum) -> float:
        """Convenience: reduce python scalars (metric aggregation)."""
        self._check(values)
        return float(op(values))

    def barrier(self) -> None:
        """No-op in simulation; present to keep call sites SPMD-shaped."""
