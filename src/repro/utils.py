"""Shared utilities: deterministic RNG management and small helpers."""

from __future__ import annotations

from typing import List

import numpy as np


def seed_everything(seed: int) -> np.random.Generator:
    """Return a root generator for ``seed``.

    The library never touches numpy's global RNG; every stochastic component
    takes a ``Generator``.  This function is the single entry point examples
    and benches use to make runs reproducible.
    """
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators.

    Used to give each DDP rank / dataset / module its own stream, mirroring
    per-process seeding in real distributed training.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Simple trailing moving average used when summarizing training curves."""
    values = np.asarray(values, dtype=np.float64)
    if window <= 1 or values.size == 0:
        return values.copy()
    kernel = np.ones(min(window, values.size)) / min(window, values.size)
    return np.convolve(values, kernel, mode="valid")


def human_count(n: float) -> str:
    """Format large counts: 2_000_000 -> '2.0M'."""
    for unit, scale in (("B", 1e9), ("M", 1e6), ("k", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:.1f}{unit}"
    return f"{n:.0f}"
