"""Experiment workflows — one function per paper experiment family.

Every workflow takes a config dataclass, builds the full pipeline
(dataset -> transform -> task -> strategy -> trainer), runs it, and returns
a structured result the benches print and assert on.  The pretrained
encoder is shared between downstream experiments through an on-disk cache
(``cached_pretrained_encoder``), mirroring how the paper reuses one
20-epoch pretraining run everywhere.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import (
    EncoderConfig,
    FinetuneConfig,
    MultiTaskConfig,
    OptimizerConfig,
    PretrainConfig,
)
from repro.core.pipeline import (
    build_encoder_from_config,
    make_train_loader,
    make_val_loader,
)
from repro.data.dataset import ConcatDataset
from repro.data.splits import train_val_split
from repro.data.transforms import StructureToGraph
from repro.data.transforms.features import TargetNormalizer
from repro.datasets import (
    CarolinaSurrogate,
    LiPSSurrogate,
    MaterialsProjectSurrogate,
    OC20Surrogate,
    OC22Surrogate,
    SymmetryPointCloudDataset,
    build_dataset,
)
from repro.distributed import (
    DDPStrategy,
    EventLog,
    FaultInjector,
    FaultProfile,
    ShardedAdamW,
    SimClock,
    SimComm,
    SingleProcessStrategy,
)
from repro.analysis import (
    UMAPLite,
    cluster_spread,
    embed_datasets,
    neighbor_overlap_matrix,
    silhouette_by_label,
)
from repro.compiler import compiled_enabled, use_compiled
from repro.observability import Observer
from repro.optim import AdamW, MultiGroupOptimizer, WarmupExponential, scale_lr_for_ddp
from repro.stability import StabilityConfig, StabilityGuard
from repro.tasks import (
    MultiClassClassificationTask,
    MultiTaskModule,
    ScalarRegressionTask,
    TaskSpec,
)
from repro.training import (
    FaultEventMonitor,
    History,
    LRMonitor,
    RecoveryConfig,
    SpikeDetector,
    ThroughputMeter,
    Trainer,
    TrainerConfig,
    finetune_lr,
)

#: Transform used for the symmetry clouds (unit-scale geometry).
SYMMETRY_CUTOFF = 2.5
#: Transform used for material structures (angstrom-scale geometry).
MATERIALS_CUTOFF = 4.5


def _build_finetune_optimizer(task, opt_cfg, base_lr: float, pretrained: bool):
    """One AdamW for scratch; encoder-at-lr/10 grouped AdamW when pretrained.

    The paper divides the fine-tuning base rate by ten to mitigate
    forgetting; the reproduction applies that to the transplanted encoder
    while the freshly initialized heads train at the full rate (they have
    nothing to forget — see EXPERIMENTS.md).
    """
    kwargs = dict(betas=opt_cfg.betas, eps=opt_cfg.eps, weight_decay=opt_cfg.weight_decay)
    if not pretrained:
        return AdamW(task.parameters(), lr=base_lr, **kwargs)
    encoder_ids = {id(p) for p in task.encoder.parameters()}
    head_params = [p for p in task.parameters() if id(p) not in encoder_ids]
    encoder_opt = AdamW(
        task.encoder.parameters(), lr=finetune_lr(base_lr), **kwargs
    )
    head_opt = AdamW(head_params, lr=base_lr, **kwargs)
    return MultiGroupOptimizer(
        [(encoder_opt, 1.0 / 10.0), (head_opt, 1.0)]
    )


# --------------------------------------------------------------------------- #
# Pretraining (Sec. 5.2, Figs. 3 & 6)
# --------------------------------------------------------------------------- #
@dataclass
class PretrainResult:
    """Artifacts of a pretraining run: trained task, curves, diagnostics."""

    task: MultiClassClassificationTask
    history: History
    spikes: SpikeDetector
    throughput: ThroughputMeter
    lr_trace: List[tuple]
    config: PretrainConfig
    #: Fault/recovery event log; None for healthy runs.
    events: Optional[EventLog] = None
    #: Numerical stability guard; None unless ``config.stability_guard``.
    guard: Optional[StabilityGuard] = None
    #: Observability handle (tracer / metrics / op profiler); None unless
    #: ``config.profile`` or ``config.trace_out``.
    observer: Optional[Observer] = None

    @property
    def final_val_ce(self) -> Optional[float]:
        return self.history.last("val", "ce")

    @property
    def best_val_ce(self) -> Optional[float]:
        return self.history.best("val", "ce")


def pretrain_symmetry(config: PretrainConfig) -> PretrainResult:
    """Train the symmetry-group classifier under simulated DDP.

    The learning rate follows the paper exactly: eta = eta_base * N with a
    linear warmup and gamma = 0.8 exponential decay per epoch.
    """
    rng = np.random.default_rng(config.seed)
    common = dict(
        group_names=config.group_names,
        max_points=config.max_points,
        noise_sigma=config.noise_sigma,
        radius_range=config.radius_range,
        randomize_species=config.randomize_species,
    )
    train_ds = SymmetryPointCloudDataset(
        config.train_samples, seed=config.seed, **common
    ).materialize()
    val_ds = SymmetryPointCloudDataset(
        config.val_samples, seed=config.seed + 10_000, **common
    ).materialize()
    num_classes = SymmetryPointCloudDataset(
        1, group_names=config.group_names
    ).num_classes

    cutoff = SYMMETRY_CUTOFF if config.radius_range[1] <= 2.5 else MATERIALS_CUTOFF
    transform = StructureToGraph(cutoff=cutoff)
    train_loader = make_train_loader(
        train_ds, config.effective_batch, transform, seed=config.seed
    )
    val_loader = make_val_loader(val_ds, 32, transform)

    encoder = build_encoder_from_config(config.encoder, rng=rng)
    task = MultiClassClassificationTask(
        encoder,
        num_classes=num_classes,
        hidden_dim=config.head_hidden_dim,
        num_blocks=config.head_blocks,
        rng=rng,
    )

    opt_cfg = config.optimizer
    target_lr = scale_lr_for_ddp(opt_cfg.base_lr, config.world_size)

    events: Optional[EventLog] = None
    recovery: Optional[RecoveryConfig] = None
    profile = FaultProfile.parse(config.fault_profile)
    # Any non-None profile — even an empty one ("") — routes gradients
    # through the instrumented explicit-allreduce path, so a healthy
    # baseline can be made bit-comparable to a fault-injected run.
    if config.fault_profile is not None:
        if config.on_fault not in ("recover", "elastic"):
            raise ValueError(
                f"on_fault must be 'recover' or 'elastic', got {config.on_fault!r}"
            )
        clock = SimClock()
        events = EventLog(clock)
        injector = FaultInjector(
            profile,
            config.world_size,
            seed=config.fault_seed,
            horizon=config.fault_horizon,
            events=events,
            clock=clock,
        )
        comm = SimComm(config.world_size, injector=injector)
        strategy = DDPStrategy(
            config.world_size,
            comm=comm,
            elastic=(config.on_fault == "elastic"),
            bucket_bytes=config.bucket_bytes if config.zero else None,
            shard_optimizer=config.zero,
        )
        if config.on_fault == "recover":
            ckpt_dir = config.checkpoint_dir
            if ckpt_dir is None:
                import tempfile

                ckpt_dir = tempfile.mkdtemp(prefix="repro-recovery-")
            recovery = RecoveryConfig(
                checkpoint_dir=ckpt_dir, checkpoint_every_n_steps=1, events=events
            )
    elif config.zero:
        # ZeRO sharding always runs the (bucketed) DDP strategy, even at
        # world_size 1: the bucket collectives degrade to identity there.
        strategy = DDPStrategy(
            config.world_size,
            bucket_bytes=config.bucket_bytes,
            shard_optimizer=True,
        )
    else:
        strategy = (
            DDPStrategy(config.world_size)
            if config.world_size > 1
            else SingleProcessStrategy()
        )

    if config.zero:
        if opt_cfg.update_clip is not None:
            raise ValueError(
                "update_clip (StableAdamW) is not supported with ZeRO sharding: "
                "the per-tensor update RMS is not shard-local"
            )
        optimizer = ShardedAdamW(
            task.parameters(),
            lr=target_lr,
            betas=opt_cfg.betas,
            eps=opt_cfg.eps,
            weight_decay=opt_cfg.weight_decay,
            amsgrad=opt_cfg.amsgrad,
            comm=strategy.comm,
            bucket_bytes=config.bucket_bytes,
        )
    else:
        optimizer = AdamW(
            task.parameters(),
            lr=target_lr,
            betas=opt_cfg.betas,
            eps=opt_cfg.eps,
            weight_decay=opt_cfg.weight_decay,
            amsgrad=opt_cfg.amsgrad,
            update_clip=opt_cfg.update_clip,
        )
    scheduler = WarmupExponential(
        optimizer,
        warmup_epochs=opt_cfg.warmup_epochs,
        gamma=opt_cfg.gamma,
        target_lr=target_lr,
    )
    guard: Optional[StabilityGuard] = None
    if config.stability_guard:
        if events is None:
            events = EventLog(SimClock())
        stability_cfg = config.stability
        if stability_cfg is None:
            stability_cfg = StabilityConfig(policy=config.on_spike)
        guard = StabilityGuard(stability_cfg, events=events)
        if guard.policy.name == "rollback" and recovery is None:
            # Rollback restores the same CRC-checked recovery points the
            # fault-tolerance path writes; provision them if absent.
            ckpt_dir = config.checkpoint_dir
            if ckpt_dir is None:
                import tempfile

                ckpt_dir = tempfile.mkdtemp(prefix="repro-stability-")
            recovery = RecoveryConfig(
                checkpoint_dir=ckpt_dir, checkpoint_every_n_steps=1, events=events
            )

    spikes = SpikeDetector(monitor="ce")
    throughput = ThroughputMeter()
    lr_monitor = LRMonitor()
    callbacks = [spikes, throughput, lr_monitor]
    if events is not None:
        callbacks.append(FaultEventMonitor(events))
    observer: Optional[Observer] = None
    if config.profile or config.trace_out is not None:
        observer = Observer(profile_ops=config.profile)
        callbacks.append(observer.reporter(every_n_steps=25))
    trainer = Trainer(
        TrainerConfig(
            max_epochs=config.max_epochs,
            max_steps=config.max_steps,
            val_every_n_steps=config.val_every_n_steps,
            grad_clip_norm=opt_cfg.grad_clip_norm,
            detect_anomaly=config.detect_anomaly,
            log_every_n_steps=5,
        ),
        strategy=strategy,
        callbacks=callbacks,
        recovery=recovery,
        stability=guard,
        observer=observer,
    )
    with use_compiled(config.compile or compiled_enabled()):
        if observer is not None:
            with observer.profile():
                history = trainer.fit(
                    task, train_loader, val_loader, optimizer, scheduler
                )
            observer.finalize(strategy=strategy, guard=guard)
            if config.trace_out is not None:
                observer.export_chrome_trace(config.trace_out)
        else:
            history = trainer.fit(task, train_loader, val_loader, optimizer, scheduler)
    return PretrainResult(
        task=task,
        history=history,
        spikes=spikes,
        throughput=throughput,
        lr_trace=lr_monitor.trace,
        config=config,
        events=events,
        guard=guard,
        observer=observer,
    )


def transfer_pretrain_recipe() -> PretrainConfig:
    """The pretraining recipe behind every downstream experiment.

    CPU-scale stand-in for the paper's 20-epoch, 2M-sample run: all 32
    point groups, seed shells widened to interatomic scale (1.5-4.0 A) so
    the geometry filters see materials-like distances, single-worker
    optimization for clean convergence (the scale-out *dynamics* are
    studied separately in the Fig. 3/6 benches).
    """
    return PretrainConfig(
        encoder=EncoderConfig(hidden_dim=32, num_layers=3, position_dim=12),
        optimizer=OptimizerConfig(
            base_lr=3e-3, warmup_epochs=3, gamma=0.97, weight_decay=1e-4
        ),
        group_names=None,
        train_samples=768,
        val_samples=128,
        world_size=1,
        batch_per_worker=16,
        max_epochs=15,
        head_hidden_dim=32,
        head_blocks=2,
        seed=7,
        radius_range=(1.5, 4.0),
        max_points=24,
    )


def cached_pretrained_encoder(
    config: Optional[PretrainConfig] = None,
    cache_path: Optional[str] = None,
) -> Dict[str, np.ndarray]:
    """Encoder state from the shared pretraining run, cached on disk.

    Downstream benches all fine-tune from the *same* pretrained model, as
    the paper does; the cache keys on the encoder geometry and seed so
    incompatible configs never collide.
    """
    config = config or transfer_pretrain_recipe()
    if cache_path is None:
        enc = config.encoder
        # The encoder name leads the tag: different encoder families with
        # the same geometry/seed must never share a cached state.
        tag = (
            f"{enc.name}_h{enc.hidden_dim}_l{enc.num_layers}"
            f"_p{enc.position_dim}_s{config.seed}"
        )
        cache_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "..", ".cache")
        cache_dir = os.path.abspath(cache_dir)
        cache_path = os.path.join(cache_dir, f"pretrained_{tag}.npz")
    if os.path.exists(cache_path):
        with np.load(cache_path) as data:
            return {k: data[k].copy() for k in data.files}
    result = pretrain_symmetry(config)
    state = result.task.encoder_state()
    os.makedirs(os.path.dirname(cache_path), exist_ok=True)
    np.savez(cache_path, **state)
    return state


# --------------------------------------------------------------------------- #
# Single-task fine-tuning (Sec. 5.4, Fig. 5)
# --------------------------------------------------------------------------- #
@dataclass
class FinetuneResult:
    """A fine-tuning run: trained task plus its validation-MAE curve."""

    task: ScalarRegressionTask
    history: History
    curve_steps: List[int] = field(default_factory=list)
    curve_mae: List[float] = field(default_factory=list)
    config: Optional[FinetuneConfig] = None

    @property
    def final_mae(self) -> float:
        return self.curve_mae[-1]

    @property
    def best_mae(self) -> float:
        return min(self.curve_mae)

    def mae_at_fraction(self, fraction: float) -> float:
        """Validation MAE after ``fraction`` of training (early-stopping view)."""
        idx = min(int(len(self.curve_mae) * fraction), len(self.curve_mae) - 1)
        return self.curve_mae[idx]


def train_property(
    config: FinetuneConfig,
    pretrained_state: Optional[Dict[str, np.ndarray]] = None,
) -> FinetuneResult:
    """Single-property regression on any registered materials dataset.

    ``config.dataset`` selects the dataset (DATASET_REGISTRY name) and
    ``config.target`` the scalar label — the Table-1 bench sweeps both
    across encoders.  Only the encoder initialization (and, per the paper's
    recipe, the 10x smaller fine-tuning learning rate) differs between the
    pretrained and scratch arms; data order, head init and everything else
    share the same seed.
    """
    rng = np.random.default_rng(config.seed)
    full = build_dataset(
        config.dataset,
        num_samples=config.train_samples + config.val_samples,
        seed=config.seed,
    ).materialize()
    train_ds, val_ds = train_val_split(
        full,
        val_fraction=config.val_samples / (config.train_samples + config.val_samples),
        rng=np.random.default_rng((config.seed, 55)),
    )
    normalizer = TargetNormalizer([config.target]).fit(
        train_ds[i] for i in range(len(train_ds))
    )

    transform = StructureToGraph(cutoff=MATERIALS_CUTOFF)
    train_loader = make_train_loader(train_ds, config.batch_size, transform, seed=config.seed)
    val_loader = make_val_loader(val_ds, 32, transform)

    encoder = build_encoder_from_config(config.encoder, rng=rng)
    task = ScalarRegressionTask(
        encoder,
        target=config.target,
        hidden_dim=config.head_hidden_dim,
        num_blocks=config.head_blocks,
        normalizer=normalizer,
        rng=rng,
    )
    pretrained = pretrained_state is not None
    if pretrained:
        task.load_encoder_state(pretrained_state)
    lr = scale_lr_for_ddp(config.optimizer.base_lr, config.world_size)
    optimizer = _build_finetune_optimizer(task, config.optimizer, lr, pretrained)
    scheduler = WarmupExponential(
        optimizer,
        warmup_epochs=config.optimizer.warmup_epochs,
        gamma=config.optimizer.gamma,
        target_lr=lr,
    )
    trainer = Trainer(TrainerConfig(max_epochs=config.max_epochs, log_every_n_steps=10))
    with use_compiled(config.compile or compiled_enabled()):
        history = trainer.fit(task, train_loader, val_loader, optimizer, scheduler)
    steps, curve = history.series("val", f"{config.target}_mae")
    return FinetuneResult(
        task=task, history=history, curve_steps=steps, curve_mae=curve, config=config
    )


def train_band_gap(
    config: FinetuneConfig,
    pretrained_state: Optional[Dict[str, np.ndarray]] = None,
) -> FinetuneResult:
    """Fig. 5: band-gap regression, pretrained vs from-scratch.

    The historical single-task entry point — identical to
    :func:`train_property` with the default Materials Project / band-gap
    configuration (golden metrics pin its numbers).
    """
    return train_property(config, pretrained_state)


# --------------------------------------------------------------------------- #
# Multi-task, multi-dataset fine-tuning (Sec. 5.4, Table 1, Fig. 7)
# --------------------------------------------------------------------------- #
#: The five Table-1 objectives.
TABLE1_SPECS = [
    TaskSpec("band_gap", "band_gap", "regression", dataset="materials_project"),
    TaskSpec("fermi", "fermi_energy", "regression", dataset="materials_project"),
    TaskSpec("mp_eform", "formation_energy", "regression", dataset="materials_project"),
    TaskSpec("stability", "is_stable", "binary", dataset="materials_project"),
    TaskSpec("cmd_eform", "formation_energy", "regression", dataset="carolina"),
]

#: Table-1 metric keys in paper column order.
TABLE1_METRICS = [
    "band_gap_mae",
    "fermi_mae",
    "mp_eform_mae",
    "stability_bce",
    "cmd_eform_mae",
]


@dataclass
class MultiTaskResult:
    """A multi-task run: trained module, history, final Table-1 metrics."""

    task: MultiTaskModule
    history: History
    final_metrics: Dict[str, float]
    config: Optional[MultiTaskConfig] = None

    def table_row(self) -> List[float]:
        return [self.final_metrics.get(k, float("nan")) for k in TABLE1_METRICS]


def train_multitask(
    config: MultiTaskConfig,
    pretrained_state: Optional[Dict[str, np.ndarray]] = None,
) -> MultiTaskResult:
    """Joint training over MP {gap, zeta, E_form, stability} + CMD {E_form}."""
    rng = np.random.default_rng(config.seed)
    mp = MaterialsProjectSurrogate(config.mp_samples, seed=config.seed).materialize()
    cmd = CarolinaSurrogate(config.carolina_samples, seed=config.seed + 1).materialize()
    mp_train, mp_val = train_val_split(
        mp, config.val_fraction, np.random.default_rng((config.seed, 56))
    )
    cmd_train, cmd_val = train_val_split(
        cmd, config.val_fraction, np.random.default_rng((config.seed, 57))
    )
    train_ds = ConcatDataset([mp_train, cmd_train])
    val_ds = ConcatDataset([mp_val, cmd_val])

    normalizer = None
    if config.normalize_targets:
        normalizer = TargetNormalizer(
            ["band_gap", "fermi_energy", "formation_energy"]
        ).fit(train_ds[i] for i in range(len(train_ds)))

    transform = StructureToGraph(cutoff=MATERIALS_CUTOFF)
    train_loader = make_train_loader(train_ds, config.batch_size, transform, seed=config.seed)
    val_loader = make_val_loader(val_ds, 32, transform)

    encoder = build_encoder_from_config(config.encoder, rng=rng)
    task = MultiTaskModule(
        encoder,
        specs=TABLE1_SPECS,
        hidden_dim=config.head_hidden_dim,
        num_blocks=config.head_blocks,
        normalizer=normalizer,
        rng=rng,
    )
    pretrained = pretrained_state is not None
    if pretrained:
        task.load_encoder_state(pretrained_state)
    lr = scale_lr_for_ddp(config.optimizer.base_lr, config.world_size)
    optimizer = _build_finetune_optimizer(task, config.optimizer, lr, pretrained)
    scheduler = WarmupExponential(
        optimizer,
        warmup_epochs=config.optimizer.warmup_epochs,
        gamma=config.optimizer.gamma,
        target_lr=lr,
    )
    trainer = Trainer(TrainerConfig(max_epochs=config.max_epochs, log_every_n_steps=10))
    history = trainer.fit(task, train_loader, val_loader, optimizer, scheduler)
    final = {}
    for key in TABLE1_METRICS + ["stability_acc"]:
        value = history.last("val", key)
        if value is not None:
            final[key] = value
    return MultiTaskResult(task=task, history=history, final_metrics=final, config=config)


# --------------------------------------------------------------------------- #
# Dataset exploration (Sec. 5.3, Fig. 4)
# --------------------------------------------------------------------------- #
@dataclass
class ExplorationResult:
    """Fig.-4 artifacts: embeddings, projection, and cluster metrics."""

    names: List[str]
    embeddings: np.ndarray
    labels: np.ndarray
    projection: np.ndarray
    overlap: np.ndarray
    silhouettes: Dict[int, float]
    spreads: Dict[int, float]

    def by_name(self, table: Dict[int, float]) -> Dict[str, float]:
        return {self.names[k]: v for k, v in table.items()}


def explore_datasets(
    encoder,
    samples_per_dataset: int = 40,
    seed: int = 17,
    umap_neighbors: int = 15,
    umap_min_dist: float = 0.05,
    umap_epochs: int = 120,
) -> ExplorationResult:
    """Embed all five datasets, project with UMAP-lite, quantify Fig. 4.

    ``umap_min_dist`` defaults to the paper's 0.05; ``n_neighbors`` scales
    with the (much smaller) per-dataset sample counts used on CPU.
    """
    datasets = [
        OC20Surrogate(samples_per_dataset, seed=seed),
        OC22Surrogate(samples_per_dataset, seed=seed + 1),
        MaterialsProjectSurrogate(samples_per_dataset, seed=seed + 2),
        CarolinaSurrogate(samples_per_dataset, seed=seed + 3),
        LiPSSurrogate(samples_per_dataset, seed=seed + 4),
    ]
    transform = StructureToGraph(cutoff=MATERIALS_CUTOFF)
    embeddings, labels, names = embed_datasets(
        encoder, datasets, transform, batch_size=16
    )
    umap = UMAPLite(
        n_neighbors=umap_neighbors,
        min_dist=umap_min_dist,
        n_epochs=umap_epochs,
        seed=seed,
    )
    projection = umap.fit_transform(embeddings)
    return ExplorationResult(
        names=names,
        embeddings=embeddings,
        labels=labels,
        projection=projection,
        overlap=neighbor_overlap_matrix(projection, labels),
        silhouettes=silhouette_by_label(projection, labels),
        spreads=cluster_spread(projection, labels),
    )


def explore_chemical_space(
    multitask_config: Optional[MultiTaskConfig] = None,
    samples_per_dataset: int = 30,
    seed: int = 17,
    umap_epochs: int = 120,
) -> ExplorationResult:
    """The paper's proposed extension of the Fig. 4 analysis (Sec. 5.3):

        "The same analysis could be done using an encoder trained with
        chemical information, for example Materials Project, to find
        dataset gaps in chemical space."

    Trains a multi-task encoder on the Materials Project + Carolina
    surrogates (so its embedding carries band-gap/Fermi/E_form chemistry,
    not just structural motifs), then reruns the dataset exploration with
    it.  Compared against the structure-pretrained map, datasets separate
    along composition rather than motif.
    """
    config = multitask_config or MultiTaskConfig(
        encoder=EncoderConfig(hidden_dim=32, num_layers=3, position_dim=12),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=3, gamma=0.9),
        mp_samples=96,
        carolina_samples=48,
        max_epochs=8,
        world_size=1,
        head_hidden_dim=32,
        head_blocks=2,
        seed=seed,
    )
    trained = train_multitask(config)
    return explore_datasets(
        trained.task.encoder,
        samples_per_dataset=samples_per_dataset,
        seed=seed,
        umap_epochs=umap_epochs,
    )
