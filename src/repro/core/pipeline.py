"""Pipeline plumbing shared by the workflows."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.config import EncoderConfig
from repro.data.dataset import Dataset
from repro.data.loaders import DataLoader
from repro.data.transforms import StructureToGraph
from repro.models import build_encoder
from repro.models.encoder import Encoder


def default_transform(cutoff: float = 4.5, cache=None) -> Callable:
    """The canonical structure -> radius-graph transform.

    Pass ``cache="default"`` to memoize neighbour search in the
    process-wide LRU cache (see :mod:`repro.data.cache`) — epochs after
    the first skip the kd-tree work entirely.
    """
    return StructureToGraph(cutoff=cutoff, cache=cache)


def make_train_loader(
    dataset: Dataset,
    batch_size: int,
    transform: Callable,
    seed: int = 0,
    drop_last: bool = True,
) -> DataLoader:
    """Shuffling loader that yields *lists of samples* (strategy collates)."""
    return DataLoader(
        dataset,
        batch_size=batch_size,
        shuffle=True,
        rng=np.random.default_rng((seed, 101)),
        collate_fn=list,
        transform=transform,
        drop_last=drop_last,
    )


def make_val_loader(
    dataset: Dataset,
    batch_size: int,
    transform: Callable,
) -> DataLoader:
    """Deterministic validation loader (lists of samples)."""
    return DataLoader(
        dataset,
        batch_size=batch_size,
        collate_fn=list,
        transform=transform,
    )


def build_encoder_from_config(
    config: EncoderConfig, rng: Optional[np.random.Generator] = None
) -> Encoder:
    """Instantiate the configured encoder through the registry."""
    return build_encoder(config.name, rng=rng, **config.build_kwargs())
