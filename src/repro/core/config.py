"""Experiment configuration dataclasses.

Paper values are noted next to each field; CPU-scale defaults are chosen so
the full benchmark suite runs on one core in minutes.  Benches that need
the paper's exact settings override explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class EncoderConfig:
    """E(n)-GNN size.  Paper: hidden 256, position 64, 3 layers."""

    name: str = "egnn"
    hidden_dim: int = 48
    num_layers: int = 3
    position_dim: int = 16
    num_species: int = 100

    def build_kwargs(self) -> dict:
        kwargs = {
            "hidden_dim": self.hidden_dim,
            "num_layers": self.num_layers,
            "num_species": self.num_species,
        }
        # Only the E(n)-GNN carries an equivariant coordinate channel;
        # SchNet and GAANet reject the kwarg.
        if self.name == "egnn":
            kwargs["position_dim"] = self.position_dim
        return kwargs


@dataclass
class OptimizerConfig:
    """AdamW settings.  Paper: defaults betas, eta_base 1e-3 or 1e-5."""

    base_lr: float = 1e-3
    weight_decay: float = 1e-2
    betas: tuple = (0.9, 0.999)
    eps: float = 1e-8
    warmup_epochs: int = 8
    gamma: float = 0.8
    grad_clip_norm: Optional[float] = None
    #: Stable-variant switches (see repro.optim.Adam): AMSGrad second-moment
    #: maximum and StableAdamW-style RMS update clipping.
    amsgrad: bool = False
    update_clip: Optional[float] = None


@dataclass
class PretrainConfig:
    """Symmetry pretraining (Sec. 5.2).

    Paper: 2M samples, N up to 512, B_eff up to 16384, 20 epochs.  The
    defaults here are the CPU-scale equivalents that preserve the dynamics.
    """

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    group_names: Optional[Sequence[str]] = None  # None = all 32 groups
    train_samples: int = 512
    val_samples: int = 128
    max_points: int = 32
    noise_sigma: float = 0.02
    #: Shell radii for seed particles.  The transfer recipe widens this to
    #: interatomic scale (1.5-4.0 A) so the pretrained geometry filters see
    #: the same distance distribution materials data produces.
    radius_range: tuple = (0.8, 2.2)
    #: See SymmetryPointCloudDataset.randomize_species.
    randomize_species: bool = False
    world_size: int = 16
    batch_per_worker: int = 2
    max_epochs: int = 20
    max_steps: Optional[int] = None
    val_every_n_steps: Optional[int] = None
    head_hidden_dim: int = 48
    head_blocks: int = 3
    seed: int = 7
    #: Fault-injection spec, e.g. ``"crash:1"`` or ``"timeout:2,corrupt:1"``
    #: (None = healthy run).  See repro.distributed.faults.FaultProfile.
    fault_profile: Optional[str] = None
    fault_seed: int = 0
    #: Faults land on seeded allreduce-call indices within this horizon.
    fault_horizon: int = 12
    #: "recover": crashes escalate to checkpoint restore-and-retry (exact);
    #: "elastic": the dead rank is dropped, the batch re-shards over the
    #: survivors and the LR re-scales by the Goyal rule.
    on_fault: str = "recover"
    #: Recovery-point directory; a temporary directory when None.
    checkpoint_dir: Optional[str] = None
    #: Attach the numerical stability guard (loss-spike detection with
    #: cross-rank agreement, optimizer-statistics monitors, recovery).
    stability_guard: bool = False
    #: Recovery policy when the guard confirms a spike:
    #: "skip_batch" | "lr_backoff" | "rollback".
    on_spike: str = "lr_backoff"
    #: Run training under ``repro.autograd.detect_anomaly`` so non-finite
    #: tape values are pinpointed to their creating op (slower; routed to
    #: the guard when one is attached).
    detect_anomaly: bool = False
    #: Full guard threshold overrides; built from ``on_spike`` when None.
    #: (Typed loosely to keep this module import-light.)
    stability: Optional[object] = None
    #: Attach the observability layer (trace spans + metrics registry) and,
    #: additionally, the per-op autograd profiler.  ``profile`` implies
    #: spans; ``trace_out`` writes the Chrome-trace JSON after the run.
    profile: bool = False
    trace_out: Optional[str] = None
    #: ZeRO sharding: pack gradients into fixed-byte buckets reduced via
    #: reduce_scatter, shard Adam's m/v state across ranks, and allgather
    #: updated parameters (repro.distributed.sharding).  Bit-identical to
    #: the dense path in no-fault runs — the golden-metrics guard pins it.
    zero: bool = False
    #: Bucket capacity in MiB for the ZeRO gradient bucketer.
    bucket_mb: float = 1.0
    #: Run training steps through the tape compiler (repro.compiler):
    #: trace once per batch shape, replay a validated fused/planned
    #: instruction list afterwards.  Bit-identical to eager — every
    #: cached plan survived a bitwise validation replay.
    compile: bool = False

    @property
    def bucket_bytes(self) -> int:
        return max(1, int(self.bucket_mb * (1 << 20)))

    @property
    def effective_batch(self) -> int:
        return self.world_size * self.batch_per_worker


@dataclass
class FinetuneConfig:
    """Single-task fine-tuning (Fig. 5: Materials Project band gap)."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    optimizer: OptimizerConfig = field(default_factory=lambda: OptimizerConfig(base_lr=1e-3))
    #: Registered dataset name (repro.datasets.DATASET_REGISTRY) — the
    #: Table-1 bench sweeps this over materials_project / carolina / lips /
    #: oc20 while the Fig. 5 default stays Materials Project.
    dataset: str = "materials_project"
    target: str = "band_gap"
    train_samples: int = 256
    val_samples: int = 64
    batch_size: int = 16
    max_epochs: int = 30
    #: Simulated DDP worker count: the learning rate is scaled by it (Goyal
    #: et al.), matching the paper's distributed fine-tuning.  Execution is
    #: single-process — sharded gradient averaging is bit-identical.
    world_size: int = 16
    head_hidden_dim: int = 48
    head_blocks: int = 3
    seed: int = 11
    #: See PretrainConfig.compile.
    compile: bool = False


@dataclass
class MultiTaskConfig:
    """Multi-task multi-dataset fine-tuning (Table 1 / Fig. 7)."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    optimizer: OptimizerConfig = field(default_factory=lambda: OptimizerConfig(base_lr=1e-3))
    mp_samples: int = 192
    carolina_samples: int = 96
    val_fraction: float = 0.25
    batch_size: int = 16
    max_epochs: int = 30
    #: See FinetuneConfig.world_size.
    world_size: int = 16
    head_hidden_dim: int = 48
    head_blocks: int = 6  # Appendix A: six blocks in the multi-task setting
    seed: int = 13
    #: Train heads against raw physical units (False) or z-scored targets
    #: (True).  Raw units reproduce the paper's loss balance, where the
    #: narrow CMD formation-energy distribution contributes tiny gradients
    #: and survives optimization turbulence that wrecks the wide MP targets.
    normalize_targets: bool = False
