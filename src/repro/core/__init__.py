"""The toolkit composition layer (the paper's Fig. 1).

``repro.core`` wires datasets, transforms, tasks, strategies and the
trainer into the experiment workflows the paper runs: symmetry pretraining
(Sec. 5.2), dataset exploration (Sec. 5.3), and single-/multi-task
fine-tuning (Sec. 5.4).  Benches and examples call these functions instead
of re-plumbing the pipeline.
"""

from repro.core.config import (
    EncoderConfig,
    OptimizerConfig,
    PretrainConfig,
    FinetuneConfig,
    MultiTaskConfig,
)
from repro.core.pipeline import (
    default_transform,
    make_train_loader,
    make_val_loader,
    build_encoder_from_config,
)
from repro.core.workflows import (
    PretrainResult,
    pretrain_symmetry,
    FinetuneResult,
    train_band_gap,
    train_property,
    MultiTaskResult,
    train_multitask,
    explore_datasets,
    explore_chemical_space,
    ExplorationResult,
    cached_pretrained_encoder,
    transfer_pretrain_recipe,
)

__all__ = [
    "EncoderConfig",
    "OptimizerConfig",
    "PretrainConfig",
    "FinetuneConfig",
    "MultiTaskConfig",
    "default_transform",
    "make_train_loader",
    "make_val_loader",
    "build_encoder_from_config",
    "PretrainResult",
    "pretrain_symmetry",
    "FinetuneResult",
    "train_band_gap",
    "train_property",
    "MultiTaskResult",
    "train_multitask",
    "explore_datasets",
    "explore_chemical_space",
    "ExplorationResult",
    "cached_pretrained_encoder",
    "transfer_pretrain_recipe",
]
