"""Symmetry and crystal-geometry substrate.

Provides the 3-D orthogonal symmetry operations and the 32 crystallographic
point groups that the paper's synthetic pretraining task samples from, plus
Bravais-lattice utilities used by the surrogate materials datasets.
"""

from repro.geometry.operations import (
    identity,
    inversion,
    rotation_matrix,
    reflection_matrix,
    improper_rotation,
    is_orthogonal,
    canonical_key,
    random_rotation,
)
from repro.geometry.point_groups import (
    PointGroup,
    build_point_group,
    crystallographic_point_groups,
    CRYSTAL_POINT_GROUP_NAMES,
    POINT_GROUP_ORDERS,
)
from repro.geometry.detection import (
    detect_point_group,
    is_invariant_under,
    symmetry_operations_of,
    symmetry_order_profile,
)
from repro.geometry.lattice import (
    Lattice,
    BRAVAIS_FAMILIES,
    random_lattice,
    fractional_to_cartesian,
    minimum_image_distances,
    supercell,
)

__all__ = [
    "identity",
    "inversion",
    "rotation_matrix",
    "reflection_matrix",
    "improper_rotation",
    "is_orthogonal",
    "canonical_key",
    "random_rotation",
    "PointGroup",
    "build_point_group",
    "detect_point_group",
    "is_invariant_under",
    "symmetry_operations_of",
    "symmetry_order_profile",
    "crystallographic_point_groups",
    "CRYSTAL_POINT_GROUP_NAMES",
    "POINT_GROUP_ORDERS",
    "Lattice",
    "BRAVAIS_FAMILIES",
    "random_lattice",
    "fractional_to_cartesian",
    "minimum_image_distances",
    "supercell",
]
