"""Point-group detection: identify the symmetry group of a point cloud.

The inverse of the synthetic-data generator: given particle positions (in
the generator's canonical orientation, principal axis = z), find the
largest crystallographic point group whose every operation maps the cloud
onto itself within a tolerance.  Used to audit the pretraining dataset
(every generated cloud's label must be a subgroup of its detected group —
seeds that accidentally land on symmetry elements can only *raise* the
symmetry) and available as a library utility for users' own structures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.point_groups import (
    PointGroup,
    crystallographic_point_groups,
)


def is_invariant_under(
    points: np.ndarray, operation: np.ndarray, tol: float = 1e-3
) -> bool:
    """True when ``operation`` maps the point set onto itself.

    Matches each transformed point to its nearest original; the set is
    invariant when every match is within ``tol`` AND the matching is a
    bijection (no two transformed points claiming one original).
    """
    points = np.asarray(points, dtype=np.float64)
    if len(points) == 0:
        return True
    transformed = points @ np.asarray(operation, dtype=np.float64).T
    tree = cKDTree(points)
    dist, idx = tree.query(transformed, k=1)
    if np.any(dist > tol):
        return False
    return len(np.unique(idx)) == len(points)


def symmetry_operations_of(
    points: np.ndarray, group: PointGroup, tol: float = 1e-3
) -> int:
    """Number of the group's operations that leave the cloud invariant."""
    return sum(1 for op in group.operations if is_invariant_under(points, op, tol))


def detect_point_group(
    points: np.ndarray,
    candidates: Optional[Sequence[str]] = None,
    tol: float = 1e-3,
    center: bool = True,
) -> PointGroup:
    """Largest crystallographic point group the cloud is invariant under.

    Parameters
    ----------
    points:
        (n, 3) coordinates in the canonical orientation (principal axis z,
        mirrors/2-fold axes as the generator places them).  Detection is
        orientation-dependent by design — reorienting arbitrary structures
        is a separate (much harder) problem.
    candidates:
        Group names to test; defaults to all 32.
    tol:
        Geometric matching tolerance.  Should exceed any noise the cloud
        carries (the dataset default noise is sigma = 0.02, so tol ~ 0.1
        suits generated data).

    Returns the highest-order invariant group; ties break toward the group
    listed first in the canonical name order.  C1 (order 1) always matches,
    so a group is always returned.
    """
    points = np.asarray(points, dtype=np.float64)
    if center and len(points):
        points = points - points.mean(axis=0, keepdims=True)
    groups = crystallographic_point_groups(
        list(candidates) if candidates is not None else None
    )
    best: Optional[PointGroup] = None
    for group in groups:
        if best is not None and group.order <= best.order:
            continue
        if symmetry_operations_of(points, group, tol) == group.order:
            best = group
    if best is None:  # only possible with a restricted candidate list
        raise ValueError("no candidate group leaves the cloud invariant")
    return best


def symmetry_order_profile(
    points: np.ndarray, tol: float = 1e-3
) -> List[tuple]:
    """(name, satisfied_ops, order) for every group — a symmetry fingerprint.

    Useful for diagnosing near-symmetric structures: a cloud that is
    "almost" D4h shows up with 15/16 operations satisfied.
    """
    points = np.asarray(points, dtype=np.float64)
    if len(points):
        points = points - points.mean(axis=0, keepdims=True)
    profile = []
    for group in crystallographic_point_groups():
        profile.append(
            (group.name, symmetry_operations_of(points, group, tol), group.order)
        )
    return profile
