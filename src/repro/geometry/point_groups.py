"""The 32 crystallographic point groups, built from generators by closure.

The synthetic pretraining task (paper Sec. 3.1) samples a point group,
scatters seed particles, and replicates them under every group operation;
the model learns to classify the generating group.  This module provides the
groups as explicit operation sets with verified group axioms.

Generator conventions (Schoenflies, z as the principal axis):

* ``Cn``   — n-fold rotation about z.
* ``Cnv``  — Cn plus a vertical mirror (normal x).
* ``Cnh``  — Cn plus the horizontal mirror (normal z).
* ``Sn``   — n-fold rotoreflection about z.
* ``Dn``   — Cn plus a perpendicular 2-fold axis along x.
* ``Dnh``  — Dn plus the horizontal mirror.
* ``Dnd``  — D(n) generated from S(2n) about z plus C2 along x.
* ``T/Th/Td/O/Oh`` — tetrahedral and octahedral groups from 2-, 3- and
  4-fold axes of the cube, with inversion (Th, Oh) or an S4 (Td).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.geometry.operations import (
    canonical_key,
    identity,
    improper_rotation,
    inversion,
    is_orthogonal,
    reflection_matrix,
    rotation_matrix,
)

X = np.array([1.0, 0.0, 0.0])
Y = np.array([0.0, 1.0, 0.0])
Z = np.array([0.0, 0.0, 1.0])
DIAG_111 = np.array([1.0, 1.0, 1.0])


@dataclass(frozen=True)
class PointGroup:
    """A finite subgroup of O(3) given as explicit matrices.

    Attributes
    ----------
    name:
        Schoenflies symbol, e.g. ``"C4v"``.
    operations:
        Array of shape ``(order, 3, 3)``; the first entry is the identity.
    """

    name: str
    operations: np.ndarray = field(repr=False)

    @property
    def order(self) -> int:
        return len(self.operations)

    def orbit(self, points: np.ndarray) -> np.ndarray:
        """Apply every operation to ``points`` (n, 3) -> (order * n, 3)."""
        points = np.asarray(points, dtype=np.float64)
        # (g, 3, 3) @ (3, n) -> (g, 3, n) -> (g*n, 3); einsum keeps it one pass.
        transformed = np.einsum("gij,nj->gni", self.operations, points)
        return transformed.reshape(-1, 3)

    def contains(self, op: np.ndarray) -> bool:
        key = canonical_key(op)
        return key in {canonical_key(o) for o in self.operations}

    def is_subgroup_of(self, other: "PointGroup") -> bool:
        other_keys = {canonical_key(o) for o in other.operations}
        return all(canonical_key(o) in other_keys for o in self.operations)

    def multiplication_table(self) -> np.ndarray:
        """(order, order) index table: table[i, j] = index of op_i @ op_j."""
        keys = {canonical_key(op): i for i, op in enumerate(self.operations)}
        n = self.order
        table = np.empty((n, n), dtype=np.int64)
        for i, a in enumerate(self.operations):
            for j, b in enumerate(self.operations):
                table[i, j] = keys[canonical_key(a @ b)]
        return table

    def has_inversion(self) -> bool:
        return self.contains(inversion())

    def is_chiral(self) -> bool:
        """True when every operation is a proper rotation (det +1)."""
        return bool(np.all(np.linalg.det(self.operations) > 0))


def build_point_group(name: str, generators: Iterable[np.ndarray]) -> PointGroup:
    """Close a generator set under multiplication.

    The closure loop multiplies all known elements pairwise until no new
    operation appears; crystallographic groups have order <= 48 so this
    terminates in a handful of passes.
    """
    elements: Dict[Tuple[float, ...], np.ndarray] = {canonical_key(identity()): identity()}
    frontier: List[np.ndarray] = [identity()]
    for g in generators:
        g = np.asarray(g, dtype=np.float64)
        if not is_orthogonal(g):
            raise ValueError(f"generator for {name} is not orthogonal:\n{g}")
        key = canonical_key(g)
        if key not in elements:
            elements[key] = g
            frontier.append(g)
    while frontier:
        new_frontier: List[np.ndarray] = []
        current = list(elements.values())
        for a in frontier:
            for b in current:
                for prod in (a @ b, b @ a):
                    key = canonical_key(prod)
                    if key not in elements:
                        if len(elements) > 200:
                            raise RuntimeError(
                                f"group {name} exceeded order 200 — bad generators?"
                            )
                        elements[key] = prod
                        new_frontier.append(prod)
        frontier = new_frontier
    ops = list(elements.values())
    # Put the identity first, then sort deterministically by key for stable
    # downstream hashing/serialization.
    ops.sort(key=lambda op: (not np.allclose(op, np.eye(3)), canonical_key(op)))
    return PointGroup(name=name, operations=np.array(ops))


def _cn(n: int) -> np.ndarray:
    return rotation_matrix(Z, 2.0 * math.pi / n)


def _c2x() -> np.ndarray:
    return rotation_matrix(X, math.pi)


def _sigma_h() -> np.ndarray:
    return reflection_matrix(Z)


def _sigma_v() -> np.ndarray:
    return reflection_matrix(X)


def _s2n(n: int) -> np.ndarray:
    return improper_rotation(Z, math.pi / n)


def _generator_table() -> Dict[str, List[np.ndarray]]:
    c3_111 = rotation_matrix(DIAG_111, 2.0 * math.pi / 3.0)
    table: Dict[str, List[np.ndarray]] = {
        "C1": [],
        "Ci": [inversion()],
        "Cs": [_sigma_h()],
        "C2": [_cn(2)],
        "C3": [_cn(3)],
        "C4": [_cn(4)],
        "C6": [_cn(6)],
        "C2v": [_cn(2), _sigma_v()],
        "C3v": [_cn(3), _sigma_v()],
        "C4v": [_cn(4), _sigma_v()],
        "C6v": [_cn(6), _sigma_v()],
        "C2h": [_cn(2), _sigma_h()],
        "C3h": [_cn(3), _sigma_h()],
        "C4h": [_cn(4), _sigma_h()],
        "C6h": [_cn(6), _sigma_h()],
        "S4": [improper_rotation(Z, math.pi / 2.0)],
        "S6": [improper_rotation(Z, math.pi / 3.0)],
        "D2": [_cn(2), _c2x()],
        "D3": [_cn(3), _c2x()],
        "D4": [_cn(4), _c2x()],
        "D6": [_cn(6), _c2x()],
        "D2h": [_cn(2), _c2x(), _sigma_h()],
        "D3h": [_cn(3), _c2x(), _sigma_h()],
        "D4h": [_cn(4), _c2x(), _sigma_h()],
        "D6h": [_cn(6), _c2x(), _sigma_h()],
        "D2d": [_s2n(2), _c2x()],
        "D3d": [_s2n(3), _c2x()],
        "T": [rotation_matrix(Z, math.pi), c3_111],
        "Th": [rotation_matrix(Z, math.pi), c3_111, inversion()],
        "Td": [rotation_matrix(Z, math.pi), c3_111, improper_rotation(Z, math.pi / 2.0)],
        "O": [rotation_matrix(Z, math.pi / 2.0), c3_111],
        "Oh": [rotation_matrix(Z, math.pi / 2.0), c3_111, inversion()],
    }
    return table


#: Schoenflies names of the 32 crystallographic point groups, in a fixed
#: order that defines the pretraining class index.
CRYSTAL_POINT_GROUP_NAMES: Tuple[str, ...] = tuple(_generator_table().keys())

#: Known group orders, used as a structural test of the closure construction.
POINT_GROUP_ORDERS: Dict[str, int] = {
    "C1": 1, "Ci": 2, "Cs": 2,
    "C2": 2, "C3": 3, "C4": 4, "C6": 6,
    "C2v": 4, "C3v": 6, "C4v": 8, "C6v": 12,
    "C2h": 4, "C3h": 6, "C4h": 8, "C6h": 12,
    "S4": 4, "S6": 6,
    "D2": 4, "D3": 6, "D4": 8, "D6": 12,
    "D2h": 8, "D3h": 12, "D4h": 16, "D6h": 24,
    "D2d": 8, "D3d": 12,
    "T": 12, "Th": 24, "Td": 24, "O": 24, "Oh": 48,
}

_CACHE: Dict[str, PointGroup] = {}


def crystallographic_point_groups(
    names: Sequence[str] | None = None,
) -> List[PointGroup]:
    """Return the requested point groups (all 32 by default), cached."""
    names = list(names) if names is not None else list(CRYSTAL_POINT_GROUP_NAMES)
    table = _generator_table()
    groups = []
    for name in names:
        if name not in table:
            raise KeyError(f"unknown point group {name!r}")
        if name not in _CACHE:
            _CACHE[name] = build_point_group(name, table[name])
        groups.append(_CACHE[name])
    return groups
