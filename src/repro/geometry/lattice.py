"""Bravais lattices and periodic geometry.

The surrogate materials datasets generate crystals as (lattice, fractional
coordinates, species) triples; this module supplies lattice construction for
the seven crystal families, fractional/cartesian conversion, supercell
expansion, and minimum-image distances — the periodic substrate the
surrogate DFT label engine computes pair energies with.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: The seven crystal families used by :func:`random_lattice`.
BRAVAIS_FAMILIES: Tuple[str, ...] = (
    "cubic",
    "tetragonal",
    "orthorhombic",
    "hexagonal",
    "trigonal",
    "monoclinic",
    "triclinic",
)


@dataclass(frozen=True)
class Lattice:
    """A 3-D lattice given by a row-vector cell matrix (rows are a, b, c)."""

    matrix: np.ndarray

    def __post_init__(self):
        m = np.asarray(self.matrix, dtype=np.float64)
        if m.shape != (3, 3):
            raise ValueError(f"cell matrix must be 3x3, got {m.shape}")
        if abs(np.linalg.det(m)) < 1e-12:
            raise ValueError("cell matrix is singular")
        object.__setattr__(self, "matrix", m)

    @property
    def volume(self) -> float:
        return float(abs(np.linalg.det(self.matrix)))

    @property
    def lengths(self) -> np.ndarray:
        return np.linalg.norm(self.matrix, axis=1)

    @property
    def angles(self) -> np.ndarray:
        """Cell angles (alpha, beta, gamma) in degrees."""
        a, b, c = self.matrix
        alpha = _angle(b, c)
        beta = _angle(a, c)
        gamma = _angle(a, b)
        return np.array([alpha, beta, gamma])

    @classmethod
    def from_parameters(
        cls, a: float, b: float, c: float, alpha: float, beta: float, gamma: float
    ) -> "Lattice":
        """Build a cell from lengths (angstrom) and angles (degrees)."""
        al, be, ga = np.radians([alpha, beta, gamma])
        v1 = np.array([a, 0.0, 0.0])
        v2 = np.array([b * math.cos(ga), b * math.sin(ga), 0.0])
        cx = c * math.cos(be)
        cy = c * (math.cos(al) - math.cos(be) * math.cos(ga)) / math.sin(ga)
        cz_sq = c * c - cx * cx - cy * cy
        if cz_sq <= 0:
            raise ValueError(f"impossible cell angles ({alpha}, {beta}, {gamma})")
        v3 = np.array([cx, cy, math.sqrt(cz_sq)])
        return cls(np.array([v1, v2, v3]))

    @classmethod
    def cubic(cls, a: float) -> "Lattice":
        return cls(np.eye(3) * a)


def _angle(u: np.ndarray, v: np.ndarray) -> float:
    cosv = np.dot(u, v) / (np.linalg.norm(u) * np.linalg.norm(v))
    return math.degrees(math.acos(np.clip(cosv, -1.0, 1.0)))


def random_lattice(
    family: str,
    rng: np.random.Generator,
    a_range: Tuple[float, float] = (3.5, 7.5),
) -> Lattice:
    """Sample a lattice of the given crystal family with realistic lengths."""
    a = rng.uniform(*a_range)
    if family == "cubic":
        return Lattice.from_parameters(a, a, a, 90, 90, 90)
    if family == "tetragonal":
        c = a * rng.uniform(0.6, 1.8)
        return Lattice.from_parameters(a, a, c, 90, 90, 90)
    if family == "orthorhombic":
        b = a * rng.uniform(0.7, 1.5)
        c = a * rng.uniform(0.7, 1.5)
        return Lattice.from_parameters(a, b, c, 90, 90, 90)
    if family == "hexagonal":
        c = a * rng.uniform(0.8, 2.0)
        return Lattice.from_parameters(a, a, c, 90, 90, 120)
    if family == "trigonal":
        alpha = rng.uniform(50, 110)
        return Lattice.from_parameters(a, a, a, alpha, alpha, alpha)
    if family == "monoclinic":
        b = a * rng.uniform(0.7, 1.5)
        c = a * rng.uniform(0.7, 1.5)
        beta = rng.uniform(95, 125)
        return Lattice.from_parameters(a, b, c, 90, beta, 90)
    if family == "triclinic":
        b = a * rng.uniform(0.7, 1.5)
        c = a * rng.uniform(0.7, 1.5)
        # Rejection-sample angle triples until the cell closes.
        for _ in range(100):
            alpha, beta, gamma = rng.uniform(70, 110, size=3)
            try:
                return Lattice.from_parameters(a, b, c, alpha, beta, gamma)
            except ValueError:
                continue
        raise RuntimeError("failed to sample a valid triclinic cell")
    raise KeyError(f"unknown crystal family {family!r}; choose from {BRAVAIS_FAMILIES}")


def fractional_to_cartesian(lattice: Lattice, frac: np.ndarray) -> np.ndarray:
    """Convert fractional coordinates (n, 3) to cartesian angstroms."""
    frac = np.asarray(frac, dtype=np.float64)
    return frac @ lattice.matrix


def minimum_image_distances(lattice: Lattice, frac: np.ndarray) -> np.ndarray:
    """All-pairs minimum-image distance matrix for fractional coordinates.

    Scans the 27 neighbouring images, which is exact for cells whose shortest
    lattice vector exceeds twice the interaction cutoff — true for the cell
    sizes the surrogate generators emit.  Fully vectorized: (n, n, 27)
    intermediate, fine for the n <= 64 atoms per structure used here.
    """
    frac = np.asarray(frac, dtype=np.float64)
    delta_frac = frac[:, None, :] - frac[None, :, :]  # (n, n, 3)
    shifts = np.array(list(itertools.product((-1.0, 0.0, 1.0), repeat=3)))  # (27, 3)
    # (n, n, 27, 3) fractional displacements -> cartesian -> lengths.
    disp = delta_frac[:, :, None, :] + shifts[None, None, :, :]
    cart = disp @ lattice.matrix
    dists = np.linalg.norm(cart, axis=-1)
    return dists.min(axis=-1)


def supercell(
    lattice: Lattice, frac: np.ndarray, species: np.ndarray, reps: Tuple[int, int, int]
) -> Tuple[Lattice, np.ndarray, np.ndarray]:
    """Tile a cell ``reps`` times along each axis.

    Returns the enlarged lattice, fractional coordinates in the new cell, and
    the repeated species array.  Used to build slab structures for the OCP
    surrogates and the LiPS simulation cell.
    """
    na, nb, nc = reps
    if min(reps) < 1:
        raise ValueError(f"repetitions must be >= 1, got {reps}")
    frac = np.asarray(frac, dtype=np.float64)
    species = np.asarray(species)
    offsets = np.array(list(itertools.product(range(na), range(nb), range(nc))), dtype=np.float64)
    tiled = (frac[None, :, :] + offsets[:, None, :]).reshape(-1, 3)
    tiled /= np.array([na, nb, nc], dtype=np.float64)
    new_matrix = lattice.matrix * np.array([[na], [nb], [nc]], dtype=np.float64)
    new_species = np.tile(species, len(offsets))
    return Lattice(new_matrix), tiled, new_species
