"""Orthogonal symmetry operations in 3-D.

Every point-group element is a 3x3 orthogonal matrix: proper rotations
(det +1), reflections and improper rotations (det -1), and the inversion.
Matrices are deduplicated via :func:`canonical_key`, which rounds entries to
a fixed tolerance so closure computations terminate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_DECIMALS = 6


def identity() -> np.ndarray:
    """The identity operation E."""
    return np.eye(3)


def inversion() -> np.ndarray:
    """The inversion i: x -> -x."""
    return -np.eye(3)


def rotation_matrix(axis, angle: float) -> np.ndarray:
    """Proper rotation by ``angle`` radians about ``axis`` (Rodrigues)."""
    axis = np.asarray(axis, dtype=np.float64)
    norm = np.linalg.norm(axis)
    if norm == 0:
        raise ValueError("rotation axis must be nonzero")
    x, y, z = axis / norm
    c, s = np.cos(angle), np.sin(angle)
    cc = 1.0 - c
    return np.array(
        [
            [c + x * x * cc, x * y * cc - z * s, x * z * cc + y * s],
            [y * x * cc + z * s, c + y * y * cc, y * z * cc - x * s],
            [z * x * cc - y * s, z * y * cc + x * s, c + z * z * cc],
        ]
    )


def reflection_matrix(normal) -> np.ndarray:
    """Mirror through the plane with unit ``normal``: H = I - 2 n n^T."""
    normal = np.asarray(normal, dtype=np.float64)
    norm = np.linalg.norm(normal)
    if norm == 0:
        raise ValueError("mirror normal must be nonzero")
    n = normal / norm
    return np.eye(3) - 2.0 * np.outer(n, n)


def improper_rotation(axis, angle: float) -> np.ndarray:
    """Rotoreflection S(angle) = sigma_h · C(angle) about ``axis``."""
    return reflection_matrix(axis) @ rotation_matrix(axis, angle)


def is_orthogonal(op: np.ndarray, atol: float = 1e-8) -> bool:
    """Check O^T O = I, the defining property of a point operation."""
    op = np.asarray(op, dtype=np.float64)
    return op.shape == (3, 3) and np.allclose(op.T @ op, np.eye(3), atol=atol)


def canonical_key(op: np.ndarray) -> Tuple[float, ...]:
    """Hashable rounded form of an operation, for set membership.

    Rounding to 6 decimals keeps distinct crystallographic operations apart
    (the closest pair among all 32 groups differs by ~0.13 in some entry)
    while absorbing floating-point noise from repeated multiplication.
    """
    rounded = np.round(np.asarray(op, dtype=np.float64), _DECIMALS)
    rounded += 0.0  # normalize -0.0 to +0.0 so keys compare equal
    return tuple(rounded.ravel())


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform (Haar) random proper rotation, for augmentation & equivariance tests."""
    # QR of a Gaussian matrix with sign correction gives Haar measure on O(3);
    # flip a column if needed to land in SO(3).
    a = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q
