"""The compiled training step: lookup -> replay, or trace -> build -> validate.

:func:`compiled_training_step` owns the *whole* step — forward and
backward — so strategies call it in place of their forward/backward span
pair and must not call ``loss.backward()`` again.  Control flow:

* **hit** — replay the cached plan (``compile.replay`` span) and run the
  engine backward on the rebuilt tape;
* **miss with trace budget** — run the step eagerly under the tape
  recorder (``compile.trace``), build a plan (``compile.build``), then
  *validate* it (``compile.validate``): parameter grads are set aside,
  dropout generators rewound to their recorded pre-draw states, the plan
  replayed and differentiated, and the loss, outputs, and every parameter
  gradient compared **bitwise** against the eager step.  Only a plan that
  reproduces the eager step exactly is cached; eager state (grads, rng
  streams) is restored either way, so a validation failure costs time but
  never changes training;
* **anything else** — tainted tape (baked param-dependent constants,
  running-stat mutation), unsupported node, exhausted trace budget, or
  active anomaly mode — runs the plain eager step.

The eager step executed on a miss *is* the step's result, so compiled
training is bit-identical to eager even before any plan validates.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

import importlib

_tensor_core = importlib.import_module("repro.autograd.tensor")
from repro.compiler.cache import get_plan_cache, plan_key
from repro.compiler.passes import optimize
from repro.compiler.plan import CompiledPlan, build_plan
from repro.compiler.planner import plan_memory
from repro.compiler.recorder import Trace, record_tape
from repro.compiler.registry import UnsupportedOp
from repro.observability.tracer import maybe_span


def _bitwise_equal(a, b) -> bool:
    a = np.asarray(a)
    b = np.asarray(b)
    return (
        a.shape == b.shape and a.dtype == b.dtype and a.tobytes() == b.tobytes()
    )


def validate_plan(
    plan: CompiledPlan, eager_loss, eager_outputs, pre_grads=None
) -> bool:
    """Replay the plan against the just-finished eager step, bitwise.

    Assumes the eager backward has run (param grads hold the eager
    result).  ``pre_grads`` maps ``id(param) -> grad copy`` captured
    *before* the eager backward; the replay is seeded with those so the
    comparison holds under gradient accumulation (DDP's fast path runs
    several rank backwards into the same parameters).  Restores grads and
    dropout generator states on exit.
    """
    params = plan.grad_leaves
    saved = [(p, p.grad) for p in params]
    for p, _ in saved:
        pre = None if pre_grads is None else pre_grads.get(id(p))
        p.grad = None if pre is None else pre.copy()
    restore = plan.rewind_dropout()
    try:
        loss_c, outputs_c = plan.replay()
        loss_c.backward()
        ok = _bitwise_equal(loss_c.data, eager_loss.data)
        for name, tensor in outputs_c.items():
            ok = ok and _bitwise_equal(tensor.data, eager_outputs[name].data)
        for p, eager_grad in saved:
            replay_grad = p.grad
            if eager_grad is None or replay_grad is None:
                ok = ok and eager_grad is None and replay_grad is None
            else:
                ok = ok and _bitwise_equal(replay_grad, eager_grad)
        return ok
    except Exception:
        return False
    finally:
        for p, eager_grad in saved:
            p.grad = eager_grad
        for rng, state in restore:
            rng.bit_generator.state = state


def compile_trace(
    trace: Trace, loss, outputs: Dict[str, object], rewrite: bool = True
) -> CompiledPlan:
    """Optimize + plan + build.  Raises UnsupportedOp on any gap."""
    program = optimize(trace, loss, outputs, rewrite=rewrite)
    memory = plan_memory(program)
    return build_plan(program, memory)


def _eager_step(task, batch, tracer) -> Tuple[object, Dict[str, float]]:
    with maybe_span(tracer, "forward"):
        loss, metrics = task.training_step(batch)
    with maybe_span(tracer, "backward"):
        loss.backward()
    return loss, metrics


def compiled_training_step(
    task, batch, tracer=None
) -> Tuple[object, Dict[str, float]]:
    """One training step through the plan cache.

    Returns ``(loss_tensor, metrics)`` with gradients already accumulated
    on the parameters — callers must NOT run ``loss.backward()`` again.
    """
    if _tensor_core._ANOMALY_DEPTH:
        # Anomaly mode re-checks every hop; replaying a prebuilt plan would
        # bypass the wrapped entry points' forward checks.  Stay eager.
        return _eager_step(task, batch, tracer)

    cache = get_plan_cache()
    key = plan_key(task, batch)
    plan = cache.get(key)
    if plan is not None:
        with maybe_span(tracer, "forward") as span:
            with maybe_span(tracer, "compile.replay"):
                loss, outputs = plan.replay()
            if span is not None:
                span.attrs["compile"] = "hit"
        with maybe_span(tracer, "backward"):
            loss.backward()
        metrics = task.training_metrics_from_outputs(
            {name: t.data for name, t in outputs.items()}, batch
        )
        return loss, metrics

    if not cache.may_trace():
        cache.fallbacks += 1
        return _eager_step(task, batch, tracer)

    cache.traces += 1
    with maybe_span(tracer, "forward") as span:
        with maybe_span(tracer, "compile.trace"):
            with record_tape() as trace:
                loss, metrics, outputs = task.training_step_traced(batch)
        if span is not None:
            span.attrs["compile"] = "trace"
    # Snapshot grads before the eager backward so validation can seed the
    # replay identically — callers may be accumulating (DDP fast path).
    pre_grads = {
        id(p): (None if p.grad is None else p.grad.copy())
        for p in task.parameters()
    }
    with maybe_span(tracer, "backward"):
        loss.backward()

    if trace.tainted is not None or outputs is None:
        cache.taints += 1
        return loss, metrics
    try:
        with maybe_span(tracer, "compile.build"):
            plan = compile_trace(trace, loss, outputs)
    except UnsupportedOp:
        cache.fallbacks += 1
        return loss, metrics
    with maybe_span(tracer, "compile.validate"):
        if validate_plan(plan, loss, outputs, pre_grads):
            cache.put(key, plan)
        else:
            cache.validation_failures += 1
    return loss, metrics


class TraceResult:
    """What :func:`trace_function` hands to the differential test harness."""

    __slots__ = ("plan", "loss", "outputs", "tainted", "trace")

    def __init__(self, plan, loss, outputs, tainted, trace):
        self.plan = plan
        self.loss = loss
        self.outputs = outputs
        self.tainted = tainted
        self.trace = trace


def trace_function(fn, rewrite: bool = True) -> TraceResult:
    """Record ``fn() -> loss | (loss, outputs)`` and compile it directly.

    Test-harness entry point: no caching, no validation — the caller
    decides what to compare.  ``plan`` is None when the tape was tainted.
    Raises UnsupportedOp when a recorded node has no replay builder.
    """
    with record_tape() as trace:
        result = fn()
    if isinstance(result, tuple):
        loss, outputs = result
    else:
        loss, outputs = result, {}
    if trace.tainted is not None:
        return TraceResult(None, loss, outputs, trace.tainted, trace)
    plan = compile_trace(trace, loss, outputs or {}, rewrite=rewrite)
    return TraceResult(plan, loss, outputs, None, trace)
