"""Plan caching keyed by shape-signature fingerprints, plus compile stats.

Same idiom as :mod:`repro.data.cache`: a sha1 content hash over dtype +
shape + bytes.  The *batch* side hashes every array a
:class:`~repro.data.structures.GraphBatch` carries (positions, species,
connectivity, optional edge features, sorted targets) — a hit therefore
guarantees the replayed step sees byte-identical inputs.  The *task* side
hashes parameter shapes/dtypes (not values — parameters change every
step), the task class, the kernel-dispatch mode, and a plan-format
version, so reconfiguring anything that changes the recorded graph can
never serve a stale plan.  The key is stable across processes for
identical shape signatures because it contains no ``id()``s or pointers.

Trace attempts are budgeted per cache instance: shuffled loaders produce
a new fingerprint almost every step, and tracing costs an extra replay —
after ``trace_budget`` misses that traced, further misses run eager.

Counters mirror the data-cache stats surface and are exported through the
metrics registry via :func:`publish_compile_metrics`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

#: Bump when the plan format / pass pipeline changes incompatibly.
PLAN_VERSION = 1

DEFAULT_PLAN_CAPACITY = 32
DEFAULT_TRACE_BUDGET = 64


def batch_fingerprint(batch) -> str:
    """Content hash of a GraphBatch: every array, plus graph count."""
    digest = hashlib.sha1()

    def update(tag: str, arr) -> None:
        arr = np.ascontiguousarray(arr)
        digest.update(tag.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())

    update("positions", batch.positions)
    update("species", batch.species)
    update("edge_src", batch.edge_src)
    update("edge_dst", batch.edge_dst)
    update("node_graph", batch.node_graph)
    digest.update(f"num_graphs={int(batch.num_graphs)}".encode())
    if batch.edge_attr is not None:
        update("edge_attr", batch.edge_attr)
    for name in sorted(batch.targets):
        update(f"target:{name}", batch.targets[name])
    return digest.hexdigest()


def task_fingerprint(task) -> str:
    """Shape signature of the model: parameter shapes/dtypes + mode flags."""
    from repro.kernels.dispatch import fused_enabled

    digest = hashlib.sha1()
    digest.update(f"plan-v{PLAN_VERSION}".encode())
    digest.update(type(task).__name__.encode())
    digest.update(f"fused={int(fused_enabled())}".encode())
    digest.update(f"training={int(getattr(task, 'training', True))}".encode())
    for param in task.parameters():
        digest.update(str(param.data.dtype).encode())
        digest.update(str(param.data.shape).encode())
    return digest.hexdigest()


def plan_key(task, batch) -> str:
    """Content-addressed cache key: task signature + batch byte fingerprint."""
    return task_fingerprint(task) + ":" + batch_fingerprint(batch)


class PlanCache:
    """LRU cache of compiled plans with a bounded trace budget."""

    def __init__(
        self,
        capacity: int = DEFAULT_PLAN_CAPACITY,
        trace_budget: int = DEFAULT_TRACE_BUDGET,
        name: str = "plans",
    ):
        self.capacity = int(capacity)
        self.trace_budget = int(trace_budget)
        self.name = name
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.traces = 0
        self.taints = 0
        self.validation_failures = 0
        self.fallbacks = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return plan

    def put(self, key: str, plan) -> None:
        plan.fingerprint = key
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def may_trace(self) -> bool:
        """Whether the trace budget allows compiling another plan."""
        with self._lock:
            return self.traces < self.trace_budget

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": float(self.hits),
                "misses": float(self.misses),
                "hit_rate": self.hits / total if total else 0.0,
                "traces": float(self.traces),
                "taints": float(self.taints),
                "validation_failures": float(self.validation_failures),
                "fallbacks": float(self.fallbacks),
                "evictions": float(self.evictions),
                "plans": float(len(self._entries)),
            }


# --------------------------------------------------------------------------- #
# Process-wide cache (the dispatch path in repro.compiler.step uses this)
# --------------------------------------------------------------------------- #
_CACHE: Optional[PlanCache] = None
_CACHE_LOCK = threading.Lock()


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache (created on first use, thread-safe)."""
    global _CACHE
    with _CACHE_LOCK:
        if _CACHE is None:
            _CACHE = PlanCache()
        return _CACHE


def reset_plan_cache() -> PlanCache:
    """Drop all plans and zero the counters (tests, reconfig)."""
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = PlanCache()
        return _CACHE


def compile_stats() -> Dict[str, float]:
    """Counter snapshot for the process-wide plan cache."""
    return get_plan_cache().stats()


def publish_compile_metrics(registry, prefix: str = "compile") -> None:
    """Export plan-cache stats as gauges (mirrors publish_cache_metrics)."""
    cache = get_plan_cache()
    for key, value in cache.stats().items():
        registry.gauge(f"{prefix}.{cache.name}.{key}").set(value)
