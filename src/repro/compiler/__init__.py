"""Tape compiler: record a training step's autograd tape, optimize it
(CSE, fused-kernel rewrites, dead-node pruning), plan its memory into a
reusable buffer arena, and replay it — proven bit-identical to eager by a
trace-time validation replay and the differential fuzz harness.

See DESIGN.md §14 for the graph IR, rewrite rules, liveness/arena
algorithm, and fallback semantics.
"""

from repro.compiler.cache import (
    PlanCache,
    batch_fingerprint,
    compile_stats,
    get_plan_cache,
    plan_key,
    publish_compile_metrics,
    reset_plan_cache,
    task_fingerprint,
)
from repro.compiler.dispatch import compiled_enabled, set_compiled, use_compiled
from repro.compiler.passes import Program, optimize
from repro.compiler.plan import CompiledPlan, build_plan
from repro.compiler.planner import MemoryPlan, plan_memory
from repro.compiler.recorder import Trace, record_tape
from repro.compiler.registry import UnsupportedOp
from repro.compiler.step import (
    TraceResult,
    compile_trace,
    compiled_training_step,
    trace_function,
    validate_plan,
)

__all__ = [
    "PlanCache",
    "batch_fingerprint",
    "compile_stats",
    "get_plan_cache",
    "plan_key",
    "publish_compile_metrics",
    "reset_plan_cache",
    "task_fingerprint",
    "compiled_enabled",
    "set_compiled",
    "use_compiled",
    "Program",
    "optimize",
    "CompiledPlan",
    "build_plan",
    "MemoryPlan",
    "plan_memory",
    "Trace",
    "record_tape",
    "UnsupportedOp",
    "TraceResult",
    "compile_trace",
    "compiled_training_step",
    "trace_function",
    "validate_plan",
]
