"""Compiled plans: prebuilt instruction lists replaying a recorded step.

A :class:`CompiledPlan` is the product of trace -> optimize -> plan_memory
-> :func:`build_plan`.  Each instruction re-invokes the original public op
entry point on live tensors held in a slot table, rebuilding a *real*
autograd tape every replay — so ``loss.backward()`` on the result is the
ordinary engine backward and bit-identity with eager holds by construction
for the identity/CSE/DCE passes (fusion rewrites are additionally gated by
the trace-time validation replay in :mod:`repro.compiler.step`).

Leaf binding semantics:

* requires-grad leaves are the live parameter tensors — replay reads
  ``.data`` at call time, so optimizer updates between hits are seen;
* non-grad leaves (batch arrays, baked constants) are the traced tensor
  objects.  The plan cache guarantees a hit only for a batch whose arrays
  are byte-identical to the traced one, so reading the traced copies is
  exact.

Dropout nodes replay through ``F.dropout`` on the *live* generator in
recorded order; ``dropout_rngs`` snapshots each generator's pre-draw state
(first draw per generator) so validation can rewind and reproduce the
eager masks exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compiler import registry
from repro.compiler.passes import Program
from repro.compiler.planner import MemoryPlan

_DROPOUT_OP = ("repro.autograd.functional", "dropout")


class CompiledPlan:
    """An executable plan: the optimized program, its memory plan, and the
    flat instruction list whose replay rebuilds a real autograd tape."""
    __slots__ = (
        "program",
        "memory",
        "instructions",
        "buffers",
        "loss_slot",
        "output_slots",
        "leaf_bindings",
        "grad_leaves",
        "dropout_rngs",
        "fingerprint",
        "replays",
    )

    def __init__(
        self,
        program: Program,
        memory: MemoryPlan,
        instructions,
        buffers,
        fingerprint: Optional[str] = None,
    ):
        self.program = program
        self.memory = memory
        self.instructions = instructions  # [(slot, run)]
        self.buffers = buffers  # realized arena arrays
        self.loss_slot = program.loss_slot
        self.output_slots = dict(program.output_slots)
        self.leaf_bindings = [
            (slot, program.entries[slot].tensor) for slot in program.leaf_slots
        ]
        self.grad_leaves = [
            tensor for _, tensor in self.leaf_bindings if tensor.requires_grad
        ]
        rngs: List[Tuple[object, dict]] = []
        seen = set()
        for slot in program.order:
            node = program.entries[slot]
            if node.op == _DROPOUT_OP and node.meta:
                rng = node.meta["rng"]
                if id(rng) not in seen:
                    seen.add(id(rng))
                    rngs.append((rng, node.meta["state"]))
        self.dropout_rngs = rngs
        self.fingerprint = fingerprint
        self.replays = 0

    def replay(self):
        """Execute the plan: returns ``(loss_tensor, outputs)`` with a live
        tape; the caller runs ``loss.backward()``."""
        slots: List[object] = [None] * len(self.program.entries)
        for slot, tensor in self.leaf_bindings:
            slots[slot] = tensor
        release_after = self.memory.release_after
        for index, (slot, run) in enumerate(self.instructions):
            slots[slot] = run(slots)
            for dead in release_after.get(index, ()):
                slots[dead] = None
        loss = slots[self.loss_slot]
        outputs = {name: slots[s] for name, s in self.output_slots.items()}
        self.replays += 1
        return loss, outputs

    def rewind_dropout(self):
        """Set every dropout generator to its recorded pre-draw state and
        return the states to restore afterwards (validation replay)."""
        restore = [(rng, rng.bit_generator.state) for rng, _ in self.dropout_rngs]
        for rng, pre_state in self.dropout_rngs:
            rng.bit_generator.state = pre_state
        return restore


def build_plan(program: Program, memory: MemoryPlan) -> CompiledPlan:
    """Realize arena buffers and build the instruction list.

    Raises :class:`~repro.compiler.registry.UnsupportedOp` when any kept
    node has no replay builder — the caller falls back to eager.
    """
    buffers = [
        np.empty(shape, dtype=dtype) for shape, dtype in memory.buffers
    ]
    instructions = []
    for slot in program.order:
        node = program.entries[slot]
        spec = registry.spec_for(node.op)
        buffer_index = memory.assignments.get(slot)
        if buffer_index is not None:
            run = spec.arena(node, program.resolve, buffers[buffer_index])
        else:
            run = spec.build(node, program.resolve)
        instructions.append((slot, run))
    return CompiledPlan(program, memory, instructions, buffers)
