"""Static memory planning: liveness intervals and a reusable buffer arena.

The planner assigns the outputs of whitelisted elementwise nodes (the ops
with arena mirror closures in :mod:`repro.compiler.registry`) to a pool of
preallocated buffers, reused across non-overlapping liveness intervals —
the allocation churn OpProfiler attributes to ``add``/``mul``/``sub`` on
the hot step.  Everything else stays *pinned*: freshly allocated by its
re-invoked op each replay, exactly as eager.

A node's liveness interval runs on a unified timeline of forward positions
``0..K-1`` followed by backward fire positions ``K..K+F-1``, where the
fire sequence is obtained by simulating the engine's exact iterative DFS
(``Tensor.backward``) over the optimized graph.  The interval [birth,
death] starts at the node's forward position and is extended by:

* every forward consumer's position (its ``run`` reads the buffer);
* the backward fire position of any consumer whose backward closure
  captured the buffer (``reads_inputs``: mul, matmul, log, norms...);
* the node's own fire position when its backward reads its output
  (``reads_out``: exp, tanh, softmax...);
* transitively, a view consumer's entire death (reshape/transpose/getitem
  outputs alias the buffer), computed in descending slot order;
* the end of time for the loss and task outputs.

Nodes that declared ``owns_buffers`` (fused kernels whose backward reads
buffers mutated in place during the forward — the latent-tape-issue fix)
are never arena candidates, nor are dropout nodes or views.

The same pass computes ``release_after``: the instruction index after
which the replay executor drops its slot-table reference to each tensor
(the tape keeps grad-path tensors alive through ``_parents``, mirroring
eager Python lifetime), so a replayed step never holds more than eager.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.compiler import registry
from repro.compiler.passes import Program
from repro.compiler.recorder import TapeNode

_DROPOUT_OP = ("repro.autograd.functional", "dropout")


class MemoryPlan:
    """Static memory plan: liveness intervals, arena buffer assignments,
    release points, and the pinned/arena/eager peak accounting."""
    __slots__ = (
        "assignments",
        "buffers",
        "intervals",
        "bwd_pos",
        "release_after",
        "eager_peak",
        "plan_peak",
        "arena_bytes",
        "pinned_bytes",
    )

    def __init__(self):
        self.assignments: Dict[int, int] = {}  # slot -> buffer index
        self.buffers: List[Tuple[Tuple[int, ...], object]] = []  # (shape, dtype)
        self.intervals: Dict[int, Tuple[int, int]] = {}  # slot -> [birth, death]
        self.bwd_pos: Dict[int, int] = {}
        self.release_after: Dict[int, Tuple[int, ...]] = {}
        self.eager_peak = 0
        self.plan_peak = 0
        self.arena_bytes = 0
        self.pinned_bytes = 0


def _backward_fire_positions(program: Program) -> Dict[int, int]:
    """Simulate ``Tensor.backward``'s iterative DFS over the optimized graph
    and return each node's fire position (offset past the forward range).

    The engine pushes ``(loss, False)``, marks visited at pop, re-pushes as
    processed, then pushes parents in order — but only requires-grad nodes
    retain ``_parents``, so traversal stops at non-grad tensors.  Fires are
    the requires-grad nodes of ``reversed(topo)``; every one reachable from
    the loss receives a gradient (each backward accumulates into all of its
    requires-grad parents), so reachability alone decides firing.
    """
    entries = program.entries
    topo: List[int] = []
    visited = set()
    stack: List[Tuple[int, bool]] = [(program.loss_slot, False)]
    while stack:
        slot, processed = stack.pop()
        if processed:
            topo.append(slot)
            continue
        if slot in visited:
            continue
        visited.add(slot)
        stack.append((slot, True))
        entry = entries[slot]
        if isinstance(entry, TapeNode) and entry.requires_grad:
            for parent in program.parents(entry):
                if parent not in visited:
                    stack.append((parent, False))
    K = len(program.order)
    bwd_pos: Dict[int, int] = {}
    for slot in reversed(topo):
        entry = entries[slot]
        if isinstance(entry, TapeNode) and entry.requires_grad:
            bwd_pos[slot] = K + len(bwd_pos)
    return bwd_pos


def plan_memory(program: Program) -> MemoryPlan:
    """Compute liveness (forward + backward reads) and first-fit arena
    assignments for every eligible slot of ``program``."""
    plan = MemoryPlan()
    entries = program.entries
    order = program.order
    pos = {slot: i for i, slot in enumerate(order)}
    bwd_pos = plan.bwd_pos = _backward_fire_positions(program)
    end_of_time = len(order) + len(bwd_pos) + 1
    keep_alive = {program.loss_slot} | set(program.output_slots.values())

    # -- liveness: death per slot, consumers first (descending slot order) -- #
    death: Dict[int, int] = {}
    for slot in reversed(order):
        node = entries[slot]
        spec = registry.spec_for(node.op)
        d = end_of_time if slot in keep_alive else pos[slot]
        if spec.reads_out and slot in bwd_pos:
            d = max(d, bwd_pos[slot])
        for consumer in program.consumers.get(slot, ()):
            d = max(d, pos[consumer])
            cspec = registry.spec_for(entries[consumer].op)
            if cspec.reads_inputs and consumer in bwd_pos:
                d = max(d, bwd_pos[consumer])
            if cspec.view:
                d = max(d, death[consumer])
        death[slot] = d
    plan.intervals = {slot: (pos[slot], death[slot]) for slot in order}

    # -- arena assignment: first fit over per-(shape, dtype) buffer pools --- #
    pools: Dict[Tuple, List[Tuple[int, List[Tuple[int, int]]]]] = {}
    for slot in order:
        node = entries[slot]
        spec = registry.spec_for(node.op)
        if (
            slot in keep_alive
            or node.op == _DROPOUT_OP
            or spec.view
            or registry.owns_buffers(node)
            or not registry.arena_eligible(node)
            or death[slot] >= end_of_time
        ):
            continue
        data = node.out.data
        key = (data.shape, data.dtype)
        interval = (pos[slot], death[slot])
        pool = pools.setdefault(key, [])
        for buffer_index, intervals in pool:
            if all(
                interval[1] < b or e < interval[0] for b, e in intervals
            ):
                intervals.append(interval)
                plan.assignments[slot] = buffer_index
                break
        else:
            buffer_index = len(plan.buffers)
            plan.buffers.append(key)
            pool.append((buffer_index, [interval]))
            plan.assignments[slot] = buffer_index

    # -- slot-table release schedule (forward-lifetime trimming) ------------ #
    release: Dict[int, List[int]] = {}
    for slot in order:
        if slot in keep_alive:
            continue
        last_use = max(
            (pos[c] for c in program.consumers.get(slot, ())), default=pos[slot]
        )
        release.setdefault(last_use, []).append(slot)
    plan.release_after = {i: tuple(s) for i, s in release.items()}

    # -- accounting --------------------------------------------------------- #
    plan.eager_peak = sum(int(entries[s].out.data.nbytes) for s in order)
    plan.arena_bytes = sum(
        int(np.dtype(dtype).itemsize) * int(np.prod(shape, dtype=np.int64))
        for shape, dtype in plan.buffers
    )
    plan.pinned_bytes = sum(
        int(entries[s].out.data.nbytes)
        for s in order
        if s not in plan.assignments
    )
    plan.plan_peak = plan.pinned_bytes + plan.arena_bytes
    return plan
