"""Graph optimization passes: CSE, fused-kernel rewrites, dead-node pruning.

Input is a :class:`~repro.compiler.recorder.Trace`; output is a
:class:`Program` — the ordered, pruned node list the planner and the
instruction builder consume.  Pass order:

1. **CSE** merges structurally identical pure nodes, restricted to nodes
   *outside* the loss ancestry: merging two grad-carrying nodes would
   reroute gradient accumulation through a single node, changing the IEEE
   summation order.  Restricted this way, CSE is bitwise-safe for every
   input by construction.
2. **Fusion** applies :data:`repro.kernels.patterns.PATTERNS`, scanning
   roots in descending slot order (a chain's last node matches before its
   interior could be claimed by a smaller pattern).  Matched interiors
   lose their only consumers and fall to DCE.
3. **DCE** keeps ancestors of the loss, the task outputs, and every
   dropout node.  Dropout is pinned even when its output is dead because
   replay must consume the generator stream exactly as eager did.

Slot numbering is preserved throughout (a synthetic fused node takes the
slot of the pattern's last member), so ascending slot order remains a
topological execution order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler import registry
from repro.compiler.recorder import TapeLeaf, TapeNode, Trace
from repro.compiler.registry import UnsupportedOp

_DROPOUT_OP = ("repro.autograd.functional", "dropout")


class Program:
    """The optimized graph: entries by slot plus derived execution data."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self.entries: List[object] = list(trace.entries)
        self.alias: Dict[int, int] = {}
        self.order: List[int] = []  # kept node slots, ascending (topological)
        self.consumers: Dict[int, Tuple[int, ...]] = {}
        self.loss_slot: int = -1
        self.output_slots: Dict[str, int] = {}
        self.leaf_slots: List[int] = []
        self.dropout_slots: List[int] = []
        self.stats: Dict[str, int] = {}

    # -- structural helpers (also the GraphView protocol for patterns) ------ #
    def resolve(self, slot: int) -> int:
        alias = self.alias
        while slot in alias:
            slot = alias[slot]
        return slot

    def node(self, slot: int) -> Optional[TapeNode]:
        entry = self.entries[self.resolve(slot)]
        return entry if isinstance(entry, TapeNode) else None

    def leaf(self, slot: int) -> Optional[TapeLeaf]:
        entry = self.entries[self.resolve(slot)]
        return entry if isinstance(entry, TapeLeaf) else None

    def parents(self, node: TapeNode) -> Tuple[int, ...]:
        return tuple(self.resolve(p) for p in node.parents)

    def shape(self, slot: int) -> Tuple[int, ...]:
        entry = self.entries[self.resolve(slot)]
        tensor = entry.out if isinstance(entry, TapeNode) else entry.tensor
        return tensor.data.shape

    def ndim(self, slot: int) -> int:
        return len(self.shape(slot))

    def protected(self, slot: int) -> bool:
        slot = self.resolve(slot)
        return slot in self._protected

    def consumers_of(self, slot: int) -> Tuple[int, ...]:
        return self.consumers.get(self.resolve(slot), ())

    def _rebuild_consumers(self, slots) -> Dict[int, List[int]]:
        consumers: Dict[int, List[int]] = {}
        for slot in slots:
            entry = self.entries[slot]
            if isinstance(entry, TapeNode):
                for p in self.parents(entry):
                    consumers.setdefault(p, []).append(slot)
        return consumers

    # kept as a plain attribute set during optimize()
    _protected: frozenset = frozenset()


def _loss_ancestry(program: Program, loss_slot: int) -> set:
    """Slots of requires-grad nodes reachable from the loss — the set whose
    backward closures fire (the engine only retains ``_parents`` on
    requires-grad tensors, so traversal stops at non-grad nodes)."""
    fires = set()
    stack = [loss_slot]
    seen = set()
    while stack:
        slot = stack.pop()
        if slot in seen:
            continue
        seen.add(slot)
        entry = program.entries[slot]
        if isinstance(entry, TapeNode) and entry.requires_grad:
            fires.add(slot)
            stack.extend(program.resolve(p) for p in entry.parents)
    return fires


def _cse(program: Program, fires: set) -> int:
    merged = 0
    seen: Dict[tuple, int] = {}
    for slot, entry in enumerate(program.entries):
        if not isinstance(entry, TapeNode) or slot in fires:
            continue
        if program.resolve(slot) != slot or program.protected(slot):
            continue
        try:
            spec = registry.spec_for(entry.op)
        except UnsupportedOp:
            continue
        if not spec.pure or spec.cse_args is None:
            continue
        args = spec.cse_args(entry)
        if args is None:
            continue
        key = (entry.op, program.parents(entry), args)
        try:
            hash(key)
        except TypeError:
            continue
        prior = seen.get(key)
        if prior is None:
            seen[key] = slot
        elif program.shape(prior) == entry.out_shape:
            program.alias[slot] = prior
            merged += 1
    return merged


def _fuse(program: Program) -> int:
    from repro.kernels.patterns import PATTERNS

    applied = 0
    consumed: set = set()
    node_slots = [
        s
        for s, e in enumerate(program.entries)
        if isinstance(e, TapeNode) and program.resolve(s) == s
    ]
    consumers = program._rebuild_consumers(node_slots)
    program.consumers = {s: tuple(c) for s, c in consumers.items()}
    for slot in reversed(node_slots):
        if slot in consumed:
            continue
        for pattern in PATTERNS:
            rewrite = pattern(slot, program)
            if rewrite is None:
                continue
            if rewrite.members & consumed:
                continue
            program.entries[slot] = rewrite.node
            consumed |= rewrite.members
            applied += 1
            # Interior nodes lost their only consumer; refresh the map so
            # later (smaller-slot) matches see the rewritten graph.
            consumers = program._rebuild_consumers(node_slots)
            program.consumers = {s: tuple(c) for s, c in consumers.items()}
            break
    return applied


def _dce(program: Program, roots) -> set:
    keep = set()
    stack = [program.resolve(r) for r in roots]
    while stack:
        slot = stack.pop()
        if slot in keep:
            continue
        keep.add(slot)
        entry = program.entries[slot]
        if isinstance(entry, TapeNode):
            stack.extend(program.parents(entry))
    return keep


def optimize(
    trace: Trace,
    loss,
    outputs: Dict[str, object],
    rewrite: bool = True,
) -> Program:
    """Run CSE -> fusion -> DCE over a recorded trace.

    ``rewrite=False`` skips the fusion pass (used by the differential
    fuzz harness to isolate the bitwise-by-construction passes).
    """
    program = Program(trace)
    loss_slot = trace.slot_for(loss)
    if loss_slot is None:
        raise UnsupportedOp("loss tensor was not recorded on the tape")
    program.dropout_slots = [
        s
        for s, e in enumerate(program.entries)
        if isinstance(e, TapeNode) and e.op == _DROPOUT_OP
    ]
    output_slots: Dict[str, int] = {}
    for name, tensor in (outputs or {}).items():
        slot = trace.slot_for(tensor)
        if slot is None:
            raise UnsupportedOp(f"output {name!r} was not recorded on the tape")
        output_slots[name] = slot
    program._protected = frozenset(
        [loss_slot] + list(output_slots.values()) + program.dropout_slots
    )

    fires = _loss_ancestry(program, loss_slot)
    program.stats["cse_merged"] = _cse(program, fires)
    program.stats["fused_rewrites"] = _fuse(program) if rewrite else 0

    roots = [loss_slot] + list(output_slots.values()) + program.dropout_slots
    keep = _dce(program, roots)
    total_nodes = sum(1 for e in program.entries if isinstance(e, TapeNode))

    program.loss_slot = program.resolve(loss_slot)
    program.output_slots = {n: program.resolve(s) for n, s in output_slots.items()}
    program.dropout_slots = [program.resolve(s) for s in program.dropout_slots]
    program.order = [
        s for s in sorted(keep) if isinstance(program.entries[s], TapeNode)
    ]
    program.leaf_slots = [
        s for s in sorted(keep) if isinstance(program.entries[s], TapeLeaf)
    ]
    program.stats["dce_removed"] = total_nodes - len(program.order)
    consumers = program._rebuild_consumers(program.order)
    program.consumers = {s: tuple(c) for s, c in consumers.items()}
    return program
