"""Replay builders: how each supported op is re-executed from a plan.

The compiled executor is a *re-invocation* replay: each instruction calls
the same public entry point the model called (``F.exp``,
``Tensor.__matmul__``, ``fused.linear_act``...) on live tensors, rebuilding
a real autograd tape.  Identity replay is therefore bitwise-equal to eager
by construction — same functions, same argument order, same engine — and
``loss.backward()`` on the replayed tape is the ordinary engine backward.

Each :class:`OpSpec` carries:

* ``build(node, resolve)`` — returns ``run(slots)`` computing the node's
  output tensor from the slot table;
* effect flags the memory planner consumes: does the backward closure read
  the op's *output* buffer (``reads_out``: exp, tanh, softmax...), its
  *input* buffers (``reads_inputs``: mul, matmul, log...), or is the
  output a numpy *view* of an input (``view``: reshape, transpose,
  getitem) so the input buffer must outlive every use of the view;
* ``arena(node, resolve, buffer)`` — optional mirror closure writing the
  forward value into a preallocated arena buffer via ``out=`` ufuncs
  (bitwise-identical values; backward replays the exact reference
  expressions), for the elementwise ops that dominate allocation churn;
* ``cse_args(node)`` — canonical non-parent arguments for common-
  subexpression elimination, or None when the op must never be CSE'd
  (dropout draws fresh randomness every invocation).

Fused kernels whose backward reads buffers mutated in place during the
forward (``fused.linear_act``'s GEMM result carries the bias add; see
DESIGN.md §14) declare ``owns_buffers`` in their recorded meta; the planner
pins such outputs out of the arena entirely.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.kernels import fused

MOD_TENSOR = "repro.autograd.tensor"
MOD_FUNC = "repro.autograd.functional"
MOD_FUSED = "repro.kernels.fused"


class UnsupportedOp(Exception):
    """Raised while building a plan for a node the registry cannot replay."""


class OpSpec:
    """Replay/analysis contract for one traced op: instruction builder plus
    the planner-facing flags (arena eligibility, CSE key, backward reads)."""
    __slots__ = (
        "name",
        "build",
        "arena",
        "cse_args",
        "reads_out",
        "reads_inputs",
        "view",
        "pure",
    )

    def __init__(
        self,
        name: str,
        build: Callable,
        *,
        arena: Optional[Callable] = None,
        cse_args: Optional[Callable] = None,
        reads_out: bool = False,
        reads_inputs: bool = False,
        view: bool = False,
        pure: bool = True,
    ):
        self.name = name
        self.build = build
        self.arena = arena
        self.cse_args = cse_args
        self.reads_out = reads_out
        self.reads_inputs = reads_inputs
        self.view = view
        self.pure = pure


REGISTRY: Dict[Tuple[str, str], OpSpec] = {}


def _register(module: str, name: str, **kwargs) -> None:
    REGISTRY[(module, name)] = OpSpec(name=name, **kwargs)


def spec_for(op: Tuple[str, str]) -> OpSpec:
    """Registry lookup; raises :class:`UnsupportedOp` for unknown ops."""
    spec = REGISTRY.get(op)
    if spec is None:
        raise UnsupportedOp(f"no replay builder for op {op[1]} ({op[0]})")
    return spec


def _fv(node, name):
    try:
        return node.fv[name]
    except KeyError:
        raise UnsupportedOp(f"{node.op[1]}: backward closure lacks {name!r}")


def _meta(node, name):
    if not node.meta or name not in node.meta:
        raise UnsupportedOp(f"{node.op[1]}: recorded without {name!r} annotation")
    return node.meta[name]


def _unary(node, resolve):
    (a,) = node.parents
    return resolve(a)


# --------------------------------------------------------------------------- #
# Tensor dunders and methods
# --------------------------------------------------------------------------- #
def _build_binop(apply_tt, apply_tc):
    """Builder for self-other dunders: tensor-tensor or tensor-constant."""

    def build(node, resolve):
        if len(node.parents) == 2:
            a, b = (resolve(p) for p in node.parents)
            return lambda slots: apply_tt(slots[a], slots[b])
        (a,) = (resolve(p) for p in node.parents)
        const = _meta(node, "const") if node.meta else _fv(node, "other_a")
        return lambda slots: apply_tc(slots[a], const)

    return build


def _binop_cse(node):
    if len(node.parents) == 2:
        return ()
    const = node.meta["const"] if node.meta else node.fv.get("other_a")
    return (id(const),)


def _arena_elementwise(forward_ufunc, make_backward_tt, make_backward_tc):
    """Arena mirror for a commutative-accumulation elementwise op."""

    def arena(node, resolve, buffer):
        if len(node.parents) == 2:
            a, b = (resolve(p) for p in node.parents)

            def run(slots):
                ta, tb = slots[a], slots[b]
                forward_ufunc(ta.data, tb.data, out=buffer)
                return Tensor._make(buffer, (ta, tb), make_backward_tt(ta, tb))

            return run
        (a,) = (resolve(p) for p in node.parents)
        const = node.meta["const"] if node.meta else node.fv.get("other_a")
        if const is None:
            raise UnsupportedOp(f"{node.op[1]}: missing constant operand")

        def run(slots):
            ta = slots[a]
            forward_ufunc(ta.data, const, out=buffer)
            return Tensor._make(buffer, (ta,), make_backward_tc(ta, const))

        return run

    return arena


def _add_bwd_tt(a, b):
    def backward(g):
        a._accumulate(g)
        b._accumulate(g)

    return backward


def _add_bwd_tc(a, const):
    def backward(g):
        a._accumulate(g)

    return backward


def _sub_bwd_tt(a, b):
    def backward(g):
        a._accumulate(g)
        b._accumulate(-g)

    return backward


def _mul_bwd_tt(a, b):
    a_data, b_data = a.data, b.data

    def backward(g):
        a._accumulate(g * b_data)
        b._accumulate(g * a_data)

    return backward


def _mul_bwd_tc(a, const):
    def backward(g):
        a._accumulate(g * const)

    return backward


_register(
    MOD_TENSOR,
    "Tensor.__add__",
    build=_build_binop(lambda a, b: a + b, lambda a, c: a + c),
    arena=_arena_elementwise(np.add, _add_bwd_tt, _add_bwd_tc),
    cse_args=_binop_cse,
)
_register(
    MOD_TENSOR,
    "Tensor.__sub__",
    build=_build_binop(lambda a, b: a - b, lambda a, c: a - c),
    arena=_arena_elementwise(np.subtract, _sub_bwd_tt, _add_bwd_tc),
    cse_args=_binop_cse,
)
_register(
    MOD_TENSOR,
    "Tensor.__mul__",
    build=_build_binop(lambda a, b: a * b, lambda a, c: a * c),
    arena=_arena_elementwise(np.multiply, _mul_bwd_tt, _mul_bwd_tc),
    reads_inputs=True,
    cse_args=_binop_cse,
)
_register(
    MOD_TENSOR,
    "Tensor.__truediv__",
    build=_build_binop(lambda a, b: a / b, lambda a, c: a / c),
    reads_inputs=True,
    cse_args=_binop_cse,
)


def _build_rsub(node, resolve):
    (a,) = (resolve(p) for p in node.parents)
    const = _meta(node, "const")
    return lambda slots: slots[a].__rsub__(const)


def _build_rtruediv(node, resolve):
    (a,) = (resolve(p) for p in node.parents)
    const = _fv(node, "other_a")
    return lambda slots: slots[a].__rtruediv__(const)


def _arena_neg(node, resolve, buffer):
    (a,) = (resolve(p) for p in node.parents)

    def run(slots):
        ta = slots[a]
        np.negative(ta.data, out=buffer)

        def backward(g):
            ta._accumulate(-g)

        return Tensor._make(buffer, (ta,), backward)

    return run


def _arena_rsub(node, resolve, buffer):
    (a,) = (resolve(p) for p in node.parents)
    const = _meta(node, "const")

    def run(slots):
        ta = slots[a]
        np.subtract(const, ta.data, out=buffer)

        def backward(g):
            ta._accumulate(-g)

        return Tensor._make(buffer, (ta,), backward)

    return run


_register(
    MOD_TENSOR,
    "Tensor.__rsub__",
    build=_build_rsub,
    arena=_arena_rsub,
    cse_args=_binop_cse,
)
_register(
    MOD_TENSOR,
    "Tensor.__rtruediv__",
    build=_build_rtruediv,
    reads_inputs=True,
    cse_args=lambda node: (id(node.fv.get("other_a")),),
)
_register(
    MOD_TENSOR,
    "Tensor.__neg__",
    build=lambda node, resolve: (lambda a: (lambda slots: -slots[a]))(
        _unary(node, resolve)
    ),
    arena=_arena_neg,
    cse_args=lambda node: (),
)


def _build_pow(node, resolve):
    a = _unary(node, resolve)
    exponent = _fv(node, "exponent")
    return lambda slots: slots[a] ** exponent


_register(
    MOD_TENSOR,
    "Tensor.__pow__",
    build=_build_pow,
    reads_inputs=True,
    cse_args=lambda node: (float(node.fv.get("exponent")),),
)
_register(
    MOD_TENSOR,
    "Tensor.__matmul__",
    build=_build_binop(lambda a, b: a @ b, lambda a, c: a @ c),
    reads_inputs=True,
    cse_args=_binop_cse,
)


def _build_reshape(node, resolve):
    a = _unary(node, resolve)
    shape = node.out_shape
    return lambda slots: slots[a].reshape(shape)


def _build_transpose(node, resolve):
    a = _unary(node, resolve)
    axes = _fv(node, "axes")
    if axes is None:
        return lambda slots: slots[a].transpose()
    return lambda slots: slots[a].transpose(axes)


# squeeze/unsqueeze only capture the input shape; replaying them as a
# reshape onto the recorded output shape runs the identical backward
# (``g.reshape(original)``) on identical values.
for _name in ("Tensor.reshape", "Tensor.squeeze", "Tensor.unsqueeze"):
    _register(
        MOD_TENSOR,
        _name,
        build=_build_reshape,
        view=True,
        cse_args=lambda node: (node.out_shape,),
    )
_register(
    MOD_TENSOR,
    "Tensor.transpose",
    build=_build_transpose,
    view=True,
    cse_args=lambda node: (node.fv.get("axes"),),
)


def _canon_index(index):
    if isinstance(index, tuple):
        return tuple(_canon_index(i) for i in index)
    if isinstance(index, np.ndarray):
        return ("arr", id(index))
    if isinstance(index, slice):
        return ("slice", index.start, index.stop, index.step)
    if isinstance(index, (int, np.integer)):
        return int(index)
    return ("other", id(index))


def _build_getitem(node, resolve):
    a = _unary(node, resolve)
    index = _fv(node, "index")
    return lambda slots: slots[a][index]


# Basic (slice) indexing yields numpy views; treated as a view op so the
# source buffer outlives any use of the result.
_register(
    MOD_TENSOR,
    "Tensor.__getitem__",
    build=_build_getitem,
    view=True,
    cse_args=lambda node: _canon_index(node.fv.get("index")),
)


def _build_sum(node, resolve):
    a = _unary(node, resolve)
    axis, keepdims = _fv(node, "axis"), _fv(node, "keepdims")
    return lambda slots: slots[a].sum(axis=axis, keepdims=keepdims)


def _build_max(node, resolve):
    a = _unary(node, resolve)
    axis, keepdims = _fv(node, "axis"), _fv(node, "keepdims")
    return lambda slots: slots[a].max(axis=axis, keepdims=keepdims)


def _axis_cse(node):
    axis = node.fv.get("axis")
    if isinstance(axis, list):
        axis = tuple(axis)
    return (axis, bool(node.fv.get("keepdims")))


_register(MOD_TENSOR, "Tensor.sum", build=_build_sum, cse_args=_axis_cse)
_register(
    MOD_TENSOR, "Tensor.max", build=_build_max, reads_inputs=True, reads_out=True,
    cse_args=_axis_cse,
)


# --------------------------------------------------------------------------- #
# Functional primitives
# --------------------------------------------------------------------------- #
def _build_unary_f(fn):
    def build(node, resolve):
        a = _unary(node, resolve)
        return lambda slots: fn(slots[a])

    return build


_UNARY_F = {
    # name -> (fn, reads_out, reads_inputs)
    "exp": (F.exp, True, False),
    "log": (F.log, False, True),
    "sqrt": (F.sqrt, True, False),
    "abs": (F.abs, False, True),
    "tanh": (F.tanh, True, False),
    "sigmoid": (F.sigmoid, True, False),
    "relu": (F.relu, False, False),
    "silu": (F.silu, True, False),
    "selu": (F.selu, False, False),
    "softplus": (F.softplus, False, False),
}
for _name, (_fn, _ro, _ri) in _UNARY_F.items():
    _register(
        MOD_FUNC,
        _name,
        build=_build_unary_f(_fn),
        reads_out=_ro,
        reads_inputs=_ri,
        cse_args=lambda node: (),
    )


def _build_clip(node, resolve):
    a = _unary(node, resolve)
    low, high = _meta(node, "low"), _meta(node, "high")
    return lambda slots: F.clip(slots[a], low, high)


_register(
    MOD_FUNC,
    "clip",
    build=_build_clip,
    cse_args=lambda node: (node.meta["low"], node.meta["high"]) if node.meta else None,
)


def _build_nary(fn):
    def build(node, resolve):
        parents = [resolve(p) for p in node.parents]
        axis = _fv(node, "axis")
        return lambda slots: fn([slots[p] for p in parents], axis=axis)

    return build


_register(
    MOD_FUNC, "concat", build=_build_nary(F.concat),
    cse_args=lambda node: (node.fv.get("axis"),),
)
_register(
    MOD_FUNC, "stack", build=_build_nary(F.stack),
    cse_args=lambda node: (node.fv.get("axis"),),
)


def _build_pad_rows(node, resolve):
    a = _unary(node, resolve)
    total_rows = node.out_shape[0]
    return lambda slots: F.pad_rows(slots[a], total_rows)


_register(
    MOD_FUNC, "pad_rows", build=_build_pad_rows,
    cse_args=lambda node: (node.out_shape[0],),
)


def _build_softmax(fn):
    def build(node, resolve):
        a = _unary(node, resolve)
        axis = _fv(node, "axis")
        return lambda slots: fn(slots[a], axis=axis)

    return build


_register(
    MOD_FUNC, "softmax", build=_build_softmax(F.softmax), reads_out=True,
    cse_args=lambda node: (node.fv.get("axis"),),
)
_register(
    MOD_FUNC, "log_softmax", build=_build_softmax(F.log_softmax),
    cse_args=lambda node: (node.fv.get("axis"),),
)


def _build_dropout(node, resolve):
    a = _unary(node, resolve)
    p, rng = _meta(node, "p"), _meta(node, "rng")
    return lambda slots: F.dropout(slots[a], p, rng, training=True)


# Dropout consumes generator state: never CSE'd, never dead-code-eliminated
# (pinning keeps the replayed random stream aligned with eager).
_register(MOD_FUNC, "dropout", build=_build_dropout, pure=False)


def _build_index_select(fn):
    def build(node, resolve):
        a = _unary(node, resolve)
        index = _fv(node, "index")
        return lambda slots: fn(slots[a], index)

    return build


def _build_segment_sum(fn):
    def build(node, resolve):
        a = _unary(node, resolve)
        segment_ids = _fv(node, "segment_ids")
        num_segments = node.out_shape[0]
        return lambda slots: fn(slots[a], segment_ids, num_segments)

    return build


_register(
    MOD_FUNC, "index_select", build=_build_index_select(F.index_select),
    cse_args=lambda node: (id(node.fv.get("index")),),
)
_register(
    MOD_FUNC, "segment_sum", build=_build_segment_sum(F.segment_sum),
    cse_args=lambda node: (id(node.fv.get("segment_ids")), node.out_shape[0]),
)


# --------------------------------------------------------------------------- #
# Fused kernels
# --------------------------------------------------------------------------- #
def _build_linear_act(node, resolve):
    act = _meta(node, "act")
    parents = [resolve(p) for p in node.parents]
    if len(parents) == 3:
        x, w, b = parents
        return lambda slots: fused.linear_act(slots[x], slots[w], slots[b], act)
    x, w = parents
    return lambda slots: fused.linear_act(slots[x], slots[w], None, act)


def _build_rms_norm(node, resolve):
    x, w = (resolve(p) for p in node.parents)
    eps = _meta(node, "eps")
    return lambda slots: fused.rms_norm(slots[x], slots[w], eps)


def _build_layer_norm(node, resolve):
    x, w, b = (resolve(p) for p in node.parents)
    eps = _meta(node, "eps")
    return lambda slots: fused.layer_norm(slots[x], slots[w], slots[b], eps)


def _build_softmax_ce(node, resolve):
    (logits,) = (resolve(p) for p in node.parents)
    targets = _fv(node, "targets")
    return lambda slots: fused.softmax_cross_entropy(slots[logits], targets)


def _build_gather_diff(node, resolve):
    (x,) = (resolve(p) for p in node.parents)
    src, dst = _fv(node, "src"), _fv(node, "dst")
    return lambda slots: fused.gather_diff(slots[x], src, dst)


def _build_gather_pair_concat(node, resolve):
    parents = [resolve(p) for p in node.parents]
    h, tails = parents[0], parents[1:]
    src, dst = _fv(node, "src"), _fv(node, "dst")
    return lambda slots: fused.gather_pair_concat(
        slots[h], src, dst, [slots[t] for t in tails]
    )


def _build_lstm_cell(node, resolve):
    x, h, c, w_x, w_h, b = (resolve(p) for p in node.parents)
    return lambda slots: fused.lstm_cell(
        slots[x], slots[h], slots[c], slots[w_x], slots[w_h], slots[b]
    )


def _build_mul_segment_sum(node, resolve):
    a, b = (resolve(p) for p in node.parents)
    segment_ids = _fv(node, "segment_ids")
    num_segments = node.out_shape[0]
    return lambda slots: fused.mul_segment_sum(
        slots[a], slots[b], segment_ids, num_segments
    )


_register(
    MOD_FUSED, "linear_act", build=_build_linear_act, reads_inputs=True,
    cse_args=lambda node: (node.meta["act"],) if node.meta else None,
)
_register(
    MOD_FUSED, "rms_norm", build=_build_rms_norm, reads_inputs=True,
    cse_args=lambda node: (node.meta["eps"],) if node.meta else None,
)
_register(
    MOD_FUSED, "layer_norm", build=_build_layer_norm, reads_inputs=True,
    cse_args=lambda node: (node.meta["eps"],) if node.meta else None,
)
_register(
    MOD_FUSED, "softmax_cross_entropy", build=_build_softmax_ce, reads_inputs=True,
    cse_args=lambda node: (id(node.fv.get("targets")),),
)
_register(
    MOD_FUSED, "gather_diff", build=_build_gather_diff,
    cse_args=lambda node: (id(node.fv.get("src")), id(node.fv.get("dst"))),
)
_register(
    MOD_FUSED,
    "row_sq_norm",
    build=_build_unary_f(fused.row_sq_norm),
    reads_inputs=True,
    cse_args=lambda node: (),
)
_register(
    MOD_FUSED, "gather_pair_concat", build=_build_gather_pair_concat,
    cse_args=lambda node: (id(node.fv.get("src")), id(node.fv.get("dst"))),
)
_register(
    MOD_FUSED, "index_select", build=_build_index_select(fused.index_select),
    cse_args=lambda node: (id(node.fv.get("index")),),
)
_register(
    MOD_FUSED, "segment_sum", build=_build_segment_sum(fused.segment_sum),
    cse_args=lambda node: (id(node.fv.get("segment_ids")), node.out_shape[0]),
)
_register(
    MOD_FUSED, "mul_segment_sum", build=_build_mul_segment_sum, reads_inputs=True,
    cse_args=lambda node: (id(node.fv.get("segment_ids")), node.out_shape[0]),
)
_register(
    MOD_FUSED, "lstm_cell", build=_build_lstm_cell, reads_inputs=True,
    cse_args=lambda node: (),
)


def arena_eligible(node) -> bool:
    """Whether the planner may place this node's output in the arena: a
    whitelisted elementwise op in a form its mirror closure supports."""
    spec = REGISTRY.get(node.op)
    if spec is None or spec.arena is None:
        return False
    name = node.op[1]
    if name == "Tensor.__neg__":
        return True
    if name == "Tensor.__rsub__":
        return bool(node.meta and "const" in node.meta)
    if len(node.parents) == 2:
        return True
    if node.meta and "const" in node.meta:
        return True
    return node.fv.get("other_a") is not None


def owns_buffers(node) -> bool:
    """Whether the node declared in-place-mutated buffers (satellite fix):
    its output must never be recycled into the arena."""
    return bool(node.meta and node.meta.get("owns_buffers"))
