"""Compiled-step selection: ``REPRO_COMPILE`` / set_compiled / use_compiled.

Mirror of :mod:`repro.kernels.dispatch`.  Default is *off* — the compiled
path must be opted into (``REPRO_COMPILE=1``, ``--compile``, or
``set_compiled(True)``); any unsupported node, taint, or validation
mismatch falls back to the eager step, so enabling it never changes
semantics, only how a supported step is executed.
"""

from __future__ import annotations

import contextlib
import os

_FALSY = {"0", "false", "off", "no"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_COMPILE", "0").strip().lower() not in _FALSY


_COMPILED = _env_enabled()


def compiled_enabled() -> bool:
    """Whether the tape compiler is currently selected."""
    return _COMPILED


def set_compiled(enabled: bool) -> bool:
    """Set the global compile flag; returns the previous value."""
    global _COMPILED
    previous = _COMPILED
    _COMPILED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_compiled(enabled: bool = True):
    """Scoped override of the compile flag."""
    previous = set_compiled(enabled)
    try:
        yield
    finally:
        set_compiled(previous)
