"""Tape export: record one training step's autograd tape as a graph.

``Tensor._make`` reports every created node to the active recorder —
including ``requires_grad=False`` nodes, whose parents and backward closure
the eager tape immediately discards.  The recorder snapshots, *eagerly*
(the engine nulls backward closures as it consumes them):

* the op identity, derived from the backward closure's module and
  qualname — e.g. ``("repro.autograd.tensor", "Tensor.__matmul__")``;
* the closure's free variables (``axis``, ``index`` arrays, constant
  operands...), which together with the explicit ``meta`` annotations are
  sufficient to re-invoke the op;
* the parent tensors, interned as *slots*.  Tensors first seen as parents
  are leaves: ``requires_grad`` leaves are live-bound parameters, the rest
  are batch/constant inputs whose bytes the plan cache keys on.

Strong references to every recorded tensor are held for the duration of the
trace so ``id()``-based interning cannot collide with recycled objects.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Tuple

import importlib

_tensor_core = importlib.import_module("repro.autograd.tensor")
from repro.autograd.tensor import Tensor


def op_key_of(backward) -> Tuple[str, str]:
    """Registry key for a backward closure: (module, op qualname prefix)."""
    qualname = getattr(backward, "__qualname__", "")
    return (getattr(backward, "__module__", ""), qualname.split(".<locals>")[0])


def freevars_of(backward) -> dict:
    """The backward closure's free variables, by name."""
    code = getattr(backward, "__code__", None)
    cells = getattr(backward, "__closure__", None)
    if code is None or cells is None:
        return {}
    return dict(zip(code.co_freevars, (c.cell_contents for c in cells)))


class TapeNode:
    """One recorded op: out slot, op identity, parent slots, replay args."""

    __slots__ = ("slot", "op", "parents", "fv", "meta", "out", "requires_grad")

    def __init__(self, slot, op, parents, fv, meta, out, requires_grad):
        self.slot = slot
        self.op = op
        self.parents = parents
        self.fv = fv
        self.meta = meta
        self.out = out
        self.requires_grad = requires_grad

    @property
    def out_shape(self) -> Tuple[int, ...]:
        return self.out.data.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TapeNode({self.slot}: {self.op[1]} <- {list(self.parents)})"


class TapeLeaf:
    """A tensor first seen as a parent: parameter (grad) or baked input."""

    __slots__ = ("slot", "tensor", "requires_grad")

    def __init__(self, slot, tensor):
        self.slot = slot
        self.tensor = tensor
        self.requires_grad = tensor.requires_grad


class Trace:
    """The recorded graph: slots holding :class:`TapeLeaf` / :class:`TapeNode`."""

    def __init__(self) -> None:
        self.entries: List[object] = []  # slot -> TapeLeaf | TapeNode
        self.slot_of: Dict[int, int] = {}  # id(tensor) -> slot
        self.tainted: Optional[str] = None

    # -- recorder protocol (called from Tensor._make / taint_trace) -------- #
    def on_node(self, out: Tensor, parents, backward, meta) -> None:
        parent_slots = tuple(self._intern_parent(p) for p in parents)
        slot = len(self.entries)
        node = TapeNode(
            slot,
            op_key_of(backward),
            parent_slots,
            freevars_of(backward),
            meta,
            out,
            out.requires_grad,
        )
        self.entries.append(node)
        self.slot_of[id(out)] = slot

    def taint(self, reason: str) -> None:
        if self.tainted is None:
            self.tainted = reason

    # -- helpers ----------------------------------------------------------- #
    def _intern_parent(self, tensor: Tensor) -> int:
        slot = self.slot_of.get(id(tensor))
        if slot is None:
            slot = len(self.entries)
            self.entries.append(TapeLeaf(slot, tensor))
            self.slot_of[id(tensor)] = slot
        return slot

    def nodes(self) -> List[TapeNode]:
        return [e for e in self.entries if isinstance(e, TapeNode)]

    def leaves(self) -> List[TapeLeaf]:
        return [e for e in self.entries if isinstance(e, TapeLeaf)]

    def slot_for(self, tensor: Tensor) -> Optional[int]:
        return self.slot_of.get(id(tensor))


@contextlib.contextmanager
def record_tape():
    """Scoped tape recording; yields the :class:`Trace` being filled."""
    trace = Trace()
    previous = _tensor_core._RECORDER
    _tensor_core._RECORDER = trace
    try:
        yield trace
    finally:
        _tensor_core._RECORDER = previous


def recording_active() -> bool:
    """Whether a recorder is currently installed (used by op meta guards)."""
    return _tensor_core._RECORDER is not None
