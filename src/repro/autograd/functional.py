"""Differentiable functional primitives.

These free functions complement the operator methods on
:class:`repro.autograd.Tensor`.  The segment reductions at the bottom of the
module (`segment_sum`, `segment_mean`, `index_select`) are the sparse
aggregation kernels that the Deep Graph Library provides in the original
toolkit; here they are expressed with ``np.add.at`` / ``np.bincount`` so the
same message-passing code path is exercised without compiled extensions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

import importlib

_tensor_core = importlib.import_module("repro.autograd.tensor")
from repro.autograd.tensor import Tensor, TensorLike, _as_array, taint_trace

__all__ = [
    "exp",
    "log",
    "sqrt",
    "abs",
    "tanh",
    "sigmoid",
    "relu",
    "silu",
    "selu",
    "softplus",
    "clip",
    "where",
    "concat",
    "stack",
    "pad_rows",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "l1_loss",
    "huber_loss",
    "dropout",
    "index_select",
    "segment_sum",
    "segment_mean",
    "segment_softmax",
    "pairwise_sq_dist",
]


def _ensure(value: TensorLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# --------------------------------------------------------------------------- #
# Elementwise
# --------------------------------------------------------------------------- #
def exp(x: TensorLike) -> Tensor:
    """Elementwise exponential."""
    x = _ensure(x)
    out_data = np.exp(x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * out_data)

    return Tensor._make(out_data, (x,), backward)


def log(x: TensorLike) -> Tensor:
    """Elementwise natural logarithm."""
    x = _ensure(x)
    x_data = x.data
    out_data = np.log(x_data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g / x_data)

    return Tensor._make(out_data, (x,), backward)


def sqrt(x: TensorLike) -> Tensor:
    """Elementwise square root."""
    x = _ensure(x)
    out_data = np.sqrt(x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * 0.5 / out_data)

    return Tensor._make(out_data, (x,), backward)


def abs(x: TensorLike) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (subgradient sign(x))."""
    x = _ensure(x)
    x_data = x.data
    out_data = np.abs(x_data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * np.sign(x_data))

    return Tensor._make(out_data, (x,), backward)


def tanh(x: TensorLike) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = _ensure(x)
    out_data = np.tanh(x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * (1.0 - out_data * out_data))

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: TensorLike) -> Tensor:
    """Numerically stable logistic sigmoid."""
    x = _ensure(x)
    # Numerically stable logistic.
    out_data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, -500, 500))),
        np.exp(np.clip(x.data, -500, 500)) / (1.0 + np.exp(np.clip(x.data, -500, 500))),
    )

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def relu(x: TensorLike) -> Tensor:
    """Rectified linear unit."""
    x = _ensure(x)
    mask = x.data > 0
    out_data = x.data * mask

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    return Tensor._make(out_data, (x,), backward)


def silu(x: TensorLike) -> Tensor:
    """SiLU / swish: ``x * sigmoid(x)`` — the global activation in the paper."""
    x = _ensure(x)
    xc = np.clip(x.data, -500, 500)
    sig = 1.0 / (1.0 + np.exp(-xc))
    out_data = x.data * sig

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * (sig + out_data * (1.0 - sig)))

    return Tensor._make(out_data, (x,), backward)


_SELU_ALPHA = 1.6732632423543772
_SELU_SCALE = 1.0507009873554805


def selu(x: TensorLike) -> Tensor:
    """SELU activation (Klambauer et al.), used by the output heads."""
    x = _ensure(x)
    pos = x.data > 0
    expx = np.exp(np.clip(x.data, -500, 0))
    out_data = _SELU_SCALE * np.where(pos, x.data, _SELU_ALPHA * (expx - 1.0))

    def backward(g: np.ndarray) -> None:
        local = _SELU_SCALE * np.where(pos, 1.0, _SELU_ALPHA * expx)
        x._accumulate(g * local)

    return Tensor._make(out_data, (x,), backward)


def softplus(x: TensorLike) -> Tensor:
    """log(1 + exp(x)), computed stably via logaddexp."""
    x = _ensure(x)
    out_data = np.logaddexp(0.0, x.data)
    sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -500, 500)))

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * sig)

    return Tensor._make(out_data, (x,), backward)


def clip(x: TensorLike, low: float, high: float) -> Tensor:
    """Clamp values to [low, high]; gradient passes only inside the range."""
    x = _ensure(x)
    mask = (x.data >= low) & (x.data <= high)
    out_data = np.clip(x.data, low, high)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    # The clip bounds are not recoverable from the backward closure (it only
    # captures the precomputed mask); annotate them for the tape recorder.
    meta = None
    if _tensor_core._RECORDER is not None:
        meta = {"low": low, "high": high}
    return Tensor._make(out_data, (x,), backward, meta)


def where(condition: np.ndarray, a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise select: a where condition else b (condition is constant)."""
    # The condition may be derived from parameter values (e.g. huber's
    # |diff| <= delta mask); a recorded graph would bake it as a constant
    # and replay stale branches, so compiled plans must not include it.
    taint_trace("where: condition is baked as a constant")
    condition = np.asarray(condition, dtype=bool)
    a_t = a if isinstance(a, Tensor) else None
    b_t = b if isinstance(b, Tensor) else None
    out_data = np.where(condition, _as_array(a), _as_array(b))

    def backward(g: np.ndarray) -> None:
        if a_t is not None:
            a_t._accumulate(g * condition)
        if b_t is not None:
            b_t._accumulate(g * ~condition)

    parents = tuple(t for t in (a_t, b_t) if t is not None)
    return Tensor._make(out_data, parents, backward)


# --------------------------------------------------------------------------- #
# Shape composition
# --------------------------------------------------------------------------- #
def concat(tensors: Sequence[TensorLike], axis: int = 0) -> Tensor:
    """Concatenate tensors along an axis; gradients split back per input."""
    tensors = [_ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(g[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[TensorLike], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        pieces = np.moveaxis(g, axis, 0)
        for t, piece in zip(tensors, pieces):
            t._accumulate(piece)

    return Tensor._make(out_data, tensors, backward)


def pad_rows(x: TensorLike, total_rows: int) -> Tensor:
    """Zero-pad a 2-D tensor along axis 0 up to ``total_rows`` rows."""
    x = _ensure(x)
    n, d = x.data.shape
    if total_rows < n:
        raise ValueError(f"cannot pad {n} rows down to {total_rows}")
    out_data = np.zeros((total_rows, d), dtype=np.float64)
    out_data[:n] = x.data

    def backward(g: np.ndarray) -> None:
        x._accumulate(g[:n])

    return Tensor._make(out_data, (x,), backward)


# --------------------------------------------------------------------------- #
# Softmax family and losses
# --------------------------------------------------------------------------- #
def softmax(x: TensorLike, axis: int = -1) -> Tensor:
    """Stable softmax along ``axis``."""
    x = _ensure(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    expd = np.exp(shifted)
    out_data = expd / expd.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (g - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: TensorLike, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis``."""
    x = _ensure(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsum
    soft = np.exp(out_data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(logits: TensorLike, targets: np.ndarray) -> Tensor:
    """Mean multiclass cross-entropy from raw logits and integer labels."""
    logits = _ensure(logits)
    targets = np.asarray(targets, dtype=np.int64)
    n = logits.data.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(n), targets]
    return -(picked.mean())


def binary_cross_entropy_with_logits(logits: TensorLike, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy from raw logits and {0,1} labels.

    Uses the stable formulation ``max(z,0) - z*y + log(1 + exp(-|z|))``.
    """
    logits = _ensure(logits)
    targets = np.asarray(targets, dtype=np.float64)
    z = logits.data
    out_data = np.maximum(z, 0.0) - z * targets + np.logaddexp(0.0, -np.abs(z))
    sig = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
    n = z.size

    def backward(g: np.ndarray) -> None:
        logits._accumulate(g * (sig - targets))

    per_element = Tensor._make(out_data, (logits,), backward)
    return per_element.mean()


def mse_loss(pred: TensorLike, target: TensorLike) -> Tensor:
    """Mean squared error against a constant target."""
    pred = _ensure(pred)
    target_a = _as_array(target)
    diff = pred - Tensor(target_a)
    return (diff * diff).mean()


def l1_loss(pred: TensorLike, target: TensorLike) -> Tensor:
    """Mean absolute error against a constant target."""
    pred = _ensure(pred)
    target_a = _as_array(target)
    return abs(pred - Tensor(target_a)).mean()


def huber_loss(pred: TensorLike, target: TensorLike, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``delta`` of the target, linear beyond."""
    pred = _ensure(pred)
    target_a = _as_array(target)
    diff = pred - Tensor(target_a)
    absdiff = abs(diff)
    quadratic = 0.5 * diff * diff
    linear = delta * absdiff - Tensor(0.5 * delta * delta)
    mask = absdiff.data <= delta
    return where(mask, quadratic, linear).mean()


def dropout(x: TensorLike, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    x = _ensure(x)
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    keep = 1.0 - p
    # Snapshot the generator state *before* drawing so a compiled plan can
    # reproduce this exact mask during its validation replay.
    meta = None
    if _tensor_core._RECORDER is not None:
        meta = {"p": p, "rng": rng, "state": rng.bit_generator.state}
    mask = (rng.random(x.data.shape) < keep).astype(np.float64) / keep
    out_data = x.data * mask

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    return Tensor._make(out_data, (x,), backward, meta)


# --------------------------------------------------------------------------- #
# Gather / scatter — the GNN sparse kernels
# --------------------------------------------------------------------------- #
def index_select(x: TensorLike, index: np.ndarray) -> Tensor:
    """Row gather: ``out[i] = x[index[i]]`` with scatter-add backward."""
    x = _ensure(x)
    index = np.asarray(index, dtype=np.int64)
    out_data = x.data[index]
    shape = x.data.shape

    def backward(g: np.ndarray) -> None:
        full = np.zeros(shape, dtype=np.float64)
        np.add.at(full, index, g)
        x._accumulate(full)

    return Tensor._make(out_data, (x,), backward)


def segment_sum(x: TensorLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets.

    ``out[s] = sum_i x[i] * [segment_ids[i] == s]``.  This is the message
    aggregation primitive: with ``segment_ids = dst_node_of_edge`` it sums
    incoming messages per node; with ``segment_ids = graph_of_node`` it
    implements size-extensive sum pooling.
    """
    x = _ensure(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if x.data.ndim == 1:
        out_data = np.bincount(segment_ids, weights=x.data, minlength=num_segments).astype(
            np.float64
        )
    else:
        d = x.data.shape[1]
        out_data = np.zeros((num_segments, d), dtype=np.float64)
        np.add.at(out_data, segment_ids, x.data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g[segment_ids])

    return Tensor._make(out_data, (x,), backward)


def segment_mean(x: TensorLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Per-segment mean; empty segments yield zeros."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    total = segment_sum(x, segment_ids, num_segments)
    if total.data.ndim == 1:
        return total * Tensor(1.0 / counts)
    return total * Tensor(1.0 / counts[:, None])


def segment_softmax(x: TensorLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax normalized within each segment (attention over edges)."""
    # The stabilizing per-segment shift below is computed from x's *values*
    # outside the tape; a recorded graph would bake it and replay a stale
    # shift once the parameters move, so compiled plans must not include it.
    taint_trace("segment_softmax: per-segment shift is baked as a constant")
    x = _ensure(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    # Stable: subtract per-segment max (computed outside the tape — constant
    # shifts do not change the softmax value or gradient).
    seg_max = np.full(num_segments, -np.inf, dtype=np.float64)
    np.maximum.at(seg_max, segment_ids, x.data if x.data.ndim == 1 else x.data.max(axis=-1))
    shift = seg_max[segment_ids]
    if x.data.ndim > 1:
        shift = shift[:, None]
    e = exp(x - Tensor(shift))
    denom = segment_sum(e, segment_ids, num_segments)
    denom_per_row = index_select(denom, segment_ids)
    return e / (denom_per_row + 1e-16)


def pairwise_sq_dist(x: TensorLike, src: np.ndarray, dst: np.ndarray) -> Tensor:
    """Squared distances ``||x[src] - x[dst]||^2`` per edge, differentiable in x."""
    x = _ensure(x)
    diff = index_select(x, src) - index_select(x, dst)
    return (diff * diff).sum(axis=-1, keepdims=True)
