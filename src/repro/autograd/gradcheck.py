"""Finite-difference gradient verification.

Every primitive in :mod:`repro.autograd.functional` is validated against
central differences in the test suite, which is the contract that lets the
rest of the library trust the tape.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int = 0,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    inputs = [np.asarray(x, dtype=np.float64) for x in inputs]
    base = inputs[wrt]
    grad = np.zeros_like(base)
    # zerosize_ok: empty inputs (e.g. an empty batch) have an empty — not
    # undefined — gradient, and the loop below correctly runs zero times.
    it = np.nditer(base, flags=["multi_index", "zerosize_ok"])
    while not it.finished:
        idx = it.multi_index
        orig = base[idx]
        base[idx] = orig + eps
        plus = float(fn(*[Tensor(x) for x in inputs]).data.sum())
        base[idx] = orig - eps
        minus = float(fn(*[Tensor(x) for x in inputs]).data.sum())
        base[idx] = orig
        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Check analytic gradients of ``sum(fn(*inputs))`` against differences.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns True on
    success so it can be used directly in asserts.
    """
    inputs = [np.asarray(x, dtype=np.float64) for x in inputs]
    tensors = [Tensor(x.copy(), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.sum().backward()
    for i, t in enumerate(tensors):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, [x.copy() for x in inputs], wrt=i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
