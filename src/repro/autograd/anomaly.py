"""Autograd anomaly tracing: pinpoint the op that produced a non-finite value.

``detect_anomaly()`` arms the tape so that every recorded op is tagged with
the name of its creating operation.  While armed:

* the **forward** value of every op is scanned; the first NaN/Inf raises
  :class:`NumericalAnomalyError` naming the op and the tensor shape, at the
  exact call site that produced it;
* during **backward**, after each tape node runs its gradient closure, the
  gradients it deposited into its parents are scanned; the first non-finite
  gradient raises :class:`NumericalAnomalyError` naming the receiving
  tensor's op, its shape, and the backward *hop* (the op whose vjp produced
  the bad gradient).

Both the graph construction and the ``backward()`` call must run inside the
context for ops to carry their tags (mirroring ``torch.autograd.detect_anomaly``).
The checks cost one ``isfinite`` scan per op, so the context is meant for
debugging and for the training stability guard's escalation path — not for
steady-state training.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional, Tuple


class NumericalAnomalyError(ArithmeticError):
    """A non-finite value surfaced on the autograd tape.

    Attributes
    ----------
    op:
        Name of the operation that created the offending tensor
        (``"leaf"`` for graph inputs/parameters).
    shape:
        Shape of the offending tensor (forward) or gradient (backward).
    phase:
        ``"forward"`` or ``"backward"``.
    hop:
        For backward anomalies, the op whose vector-Jacobian product
        produced the non-finite gradient; None for forward anomalies.
    """

    def __init__(
        self,
        op: str,
        shape: Tuple[int, ...],
        phase: str,
        hop: Optional[str] = None,
        detail: str = "",
    ) -> None:
        self.op = op
        self.shape = tuple(shape)
        self.phase = phase
        self.hop = hop
        msg = f"non-finite {phase} value in op {op!r} (shape {self.shape})"
        if hop is not None:
            msg = (
                f"non-finite gradient for op {op!r} (shape {self.shape}) "
                f"produced by backward hop {hop!r}"
            )
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


def op_name_of(backward: Callable) -> str:
    """Derive an op name from a backward closure's qualname.

    Every differentiable op in the tape defines a local ``backward``
    closure, so ``__qualname__`` reads ``exp.<locals>.backward`` or
    ``Tensor.__add__.<locals>.backward``; the op name is the segment
    before ``.<locals>`` with dunder underscores stripped.
    """
    qual = getattr(backward, "__qualname__", "")
    head = qual.split(".<locals>")[0]
    name = head.split(".")[-1]
    return name.strip("_") or "unknown"


def _tensor_module():
    # ``repro.autograd.tensor`` is shadowed by the ``tensor`` factory
    # function on the package, so resolve the module through sys.modules.
    import importlib

    return importlib.import_module("repro.autograd.tensor")


@contextlib.contextmanager
def detect_anomaly():
    """Context manager arming non-finite tracing on the autograd tape."""
    tensor_mod = _tensor_module()
    tensor_mod._ANOMALY_DEPTH += 1
    try:
        yield
    finally:
        tensor_mod._ANOMALY_DEPTH -= 1


def anomaly_enabled() -> bool:
    """Whether a ``detect_anomaly()`` context is currently active."""
    return _tensor_module()._ANOMALY_DEPTH > 0
