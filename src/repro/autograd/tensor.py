"""The ``Tensor`` class: a numpy array with a gradient tape.

Design notes
------------
* Values are stored as ``numpy.ndarray`` of ``float64``.  Double precision
  keeps finite-difference gradient checks tight and costs little on CPU for
  the model sizes used in this reproduction.
* The tape is implicit: every differentiable op records its parents and a
  closure that accumulates gradients into them.  ``backward()`` walks the
  graph in reverse topological order.
* Broadcasting follows numpy semantics; ``_unbroadcast`` folds gradients back
  onto the original operand shapes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Scalar = Union[int, float, np.floating, np.integer]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]

_GRAD_ENABLED = True

#: Depth of nested ``detect_anomaly()`` contexts (see repro.autograd.anomaly).
#: Non-zero depth makes ``_make`` tag each tape node with its creating op
#: and scan forward values / backward gradients for NaN/Inf.
_ANOMALY_DEPTH = 0

#: Active per-op profiler (see repro.observability.opprofile).  When set,
#: ``_make`` reports each created tensor (op tag + allocation bytes) and
#: ``backward`` times every hop, attributing it to the creating op.
_PROFILER = None

#: Active tape recorder (see repro.compiler.recorder).  When set, ``_make``
#: reports every created node — including ``requires_grad=False`` ones, whose
#: parents/backward are otherwise discarded — so one training step can be
#: exported as an explicit graph.  ``meta`` carries op arguments that the
#: backward closure does not capture (e.g. the constant operand of ``x + 2``).
_RECORDER = None


def taint_trace(reason: str) -> None:
    """Mark the active tape recording (if any) as non-compilable.

    Ops whose replay cannot be reproduced from the recorded graph alone —
    e.g. ones that bake values derived from parameters into constants, or
    that mutate module state — call this so the compiler falls back to the
    eager tape instead of caching a wrong plan.
    """
    recorder = _RECORDER
    if recorder is not None:
        recorder.taint(reason)


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently active."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used by validation loops and embedding extraction, exactly as
    ``torch.no_grad`` would be.
    """
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


#: When true, ``stable_matmul`` trades BLAS GEMM for a batch-invariant
#: reduction (see below).  Toggled by ``batch_invariant_kernels``.
_BATCH_INVARIANT = False


@contextlib.contextmanager
def batch_invariant_kernels():
    """Make matmul results independent of the batch (row) dimension.

    BLAS picks its GEMM kernel — and with it the ``k``-reduction order —
    based on the operand shapes: a ``(1, k) @ (k, n)`` product goes through
    a gemv-style path, small ``m`` through another, large blocked ``m``
    through a third.  The *value* of row ``i`` of ``A @ W`` therefore
    depends on how many other rows were in ``A``, at the last-ulp level.
    That is fatal for :mod:`repro.serving`, whose contract is that a sample
    served inside a coalesced micro-batch returns bit-identical results to
    the same sample predicted alone.

    Inside this context every 2-D matmul runs through ``np.einsum``, whose
    sum-of-products loop reduces each output element over ``k`` in a fixed
    order regardless of ``m`` (verified empirically across shapes up to
    200x200: rows are bit-stable under slicing, padding, and memory
    layout).  It is several times slower than BLAS, which is why this is a
    scoped inference-time mode rather than the default: training keeps the
    fast GEMM and its goldens, and only code that needs the
    batched == single guarantee (the serving layer and its bit-identity
    tests) opts in.
    """
    global _BATCH_INVARIANT
    prev = _BATCH_INVARIANT
    _BATCH_INVARIANT = True
    try:
        yield
    finally:
        _BATCH_INVARIANT = prev


def stable_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b``, batch-invariant when ``batch_invariant_kernels`` is active.

    Outside the context this is exactly ``np.matmul`` — same kernel, same
    bits as before the serving layer existed.  Inside it, matrix products
    use a fixed-order einsum reduction so each output row's bits do not
    depend on how many rows ride along in the batch.
    """
    if _BATCH_INVARIANT and a.ndim >= 2 and b.ndim >= 2:
        return np.einsum("...mk,...kn->...mn", a, b)
    return np.matmul(a, b)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: TensorLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A differentiable numpy array.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        When true, operations involving this tensor are recorded on the tape
        and ``backward()`` will populate ``.grad``.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "_op",
        # Weak referencability is what lets the op profiler track live
        # tensor bytes without keeping tensors alive.
        "__weakref__",
    )

    __array_priority__ = 100.0  # make numpy defer to our reflected operators

    def __init__(self, data: TensorLike, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name
        self._op = ""  # creating-op tag, populated under detect_anomaly()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __bool__(self) -> bool:
        raise TypeError(
            "the truth value of a Tensor is ambiguous; compare .data explicitly"
        )

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Tape machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        meta: Optional[dict] = None,
    ) -> "Tensor":
        """Create a result tensor, recording the op if the tape is live."""
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        if _PROFILER is not None:
            _PROFILER.on_tensor_created(out, backward)
        if _RECORDER is not None:
            _RECORDER.on_node(out, parents, backward, meta)
        if _ANOMALY_DEPTH:
            from repro.autograd.anomaly import NumericalAnomalyError, op_name_of

            out._op = op_name_of(backward)
            if not np.all(np.isfinite(out.data)):
                raise NumericalAnomalyError(
                    op=out._op, shape=np.shape(out.data), phase="forward"
                )
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """``_accumulate`` for a gradient the caller hands over outright.

        Caller contract: ``grad`` is freshly allocated, writable, aliases
        no other live array, and is not read or written by the caller
        after this call.  The first contribution is then adopted without
        the defensive copy ``_accumulate`` must make (values are identical
        either way — this only skips a full-array copy on the hot path).
        """
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1.0, which requires ``self`` to be a
            scalar (matching the usual loss-backward idiom).
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Reverse topological order via iterative DFS (avoids recursion limits
        # on deep graphs such as long MD rollouts).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        if _ANOMALY_DEPTH and self.grad is not None and not np.all(np.isfinite(self.grad)):
            from repro.autograd.anomaly import NumericalAnomalyError

            raise NumericalAnomalyError(
                op=self._op or "leaf", shape=self.data.shape, phase="backward", hop="seed"
            )
        profiler = _PROFILER
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                parents = node._parents
                if profiler is not None:
                    hop_start = profiler._now()
                    node._backward(node.grad)
                    profiler.record_backward(
                        node._op, profiler._now() - hop_start
                    )
                else:
                    node._backward(node.grad)
                if _ANOMALY_DEPTH:
                    from repro.autograd.anomaly import NumericalAnomalyError

                    for parent in parents:
                        if parent.grad is not None and not np.all(
                            np.isfinite(parent.grad)
                        ):
                            raise NumericalAnomalyError(
                                op=parent._op or "leaf",
                                shape=parent.data.shape,
                                phase="backward",
                                hop=node._op or "unknown",
                            )
                # Free tape references early; keeps long training loops O(1).
                node._backward = None
                node._parents = ()

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: TensorLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else None
        other_a = _as_array(other)
        out_data = self.data + other_a

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            if other_t is not None:
                other_t._accumulate(g)

        # The constant operand is not captured by ``backward``; annotate it
        # for the tape recorder (only when one is listening — hot path).
        meta = None
        if _RECORDER is not None and other_t is None:
            meta = {"const": other_a}
        return Tensor._make(
            out_data,
            (self, other_t) if other_t is not None else (self,),
            backward,
            meta,
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: TensorLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else None
        other_a = _as_array(other)
        out_data = self.data - other_a

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            if other_t is not None:
                other_t._accumulate(-g)

        meta = None
        if _RECORDER is not None and other_t is None:
            meta = {"const": other_a}
        return Tensor._make(
            out_data,
            (self, other_t) if other_t is not None else (self,),
            backward,
            meta,
        )

    def __rsub__(self, other: TensorLike) -> "Tensor":
        other_a = _as_array(other)
        out_data = other_a - self.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        meta = {"const": other_a} if _RECORDER is not None else None
        return Tensor._make(out_data, (self,), backward, meta)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else None
        other_a = _as_array(other)
        out_data = self.data * other_a
        self_data = self.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * other_a)
            if other_t is not None:
                other_t._accumulate(g * self_data)

        return Tensor._make(out_data, (self, other_t) if other_t is not None else (self,), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else None
        other_a = _as_array(other)
        out_data = self.data / other_a
        self_data = self.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / other_a)
            if other_t is not None:
                other_t._accumulate(-g * self_data / (other_a * other_a))

        return Tensor._make(out_data, (self, other_t) if other_t is not None else (self,), backward)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        other_a = _as_array(other)
        out_data = other_a / self.data
        self_data = self.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(-g * other_a / (self_data * self_data))

        return Tensor._make(out_data, (self,), backward)

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(log(x) * y)")
        exponent = float(exponent)
        out_data = self.data**exponent
        self_data = self.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self_data ** (exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else None
        other_a = _as_array(other)
        out_data = stable_matmul(self.data, other_a)
        self_data = self.data

        def backward(g: np.ndarray) -> None:
            if self_data.ndim == 1 and other_a.ndim == 1:
                # Dot product: g is scalar.
                self._accumulate(g * other_a)
                if other_t is not None:
                    other_t._accumulate(g * self_data)
                return
            # Promote 1-D operands to matrices, matching numpy matmul rules,
            # then apply d(AB) = (g B^T, A^T g).  ``_accumulate`` unbroadcasts
            # batched gradients back onto the original shapes.
            a = self_data[None, :] if self_data.ndim == 1 else self_data
            b = other_a[:, None] if other_a.ndim == 1 else other_a
            g2 = g
            if self_data.ndim == 1:
                g2 = np.expand_dims(g2, -2)
            if other_a.ndim == 1:
                g2 = np.expand_dims(g2, -1)
            grad_a = stable_matmul(g2, np.swapaxes(b, -1, -2))
            grad_b = stable_matmul(np.swapaxes(a, -1, -2), g2)
            if self_data.ndim == 1:
                grad_a = grad_a.reshape(grad_a.shape[:-2] + (grad_a.shape[-1],))
            if other_a.ndim == 1:
                grad_b = grad_b.reshape(grad_b.shape[:-1])
            self._accumulate(grad_a)
            if other_t is not None:
                other_t._accumulate(grad_b)

        return Tensor._make(out_data, (self, other_t) if other_t is not None else (self,), backward)

    # ------------------------------------------------------------------ #
    # Comparisons (non-differentiable, return numpy bool arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: TensorLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: TensorLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: TensorLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: TensorLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes) if axes else self.data.T

        def backward(g: np.ndarray) -> None:
            if axes is None:
                self._accumulate(g.T)
            else:
                inverse = np.argsort(axes)
                self._accumulate(g.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        original = self.data.shape
        out_data = self.data.squeeze(axis)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)
        original = self.data.shape

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        shape = self.data.shape

        def backward(g: np.ndarray) -> None:
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, index, g)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray) -> None:
            if axis is None:
                self._accumulate(np.broadcast_to(g, shape))
                return
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            g_expanded = g
            if not keepdims:
                for ax in sorted(a % len(shape) for a in axes):
                    g_expanded = np.expand_dims(g_expanded, ax)
            self._accumulate(np.broadcast_to(g_expanded, shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        self_data = self.data

        def backward(g: np.ndarray) -> None:
            if axis is None:
                mask = (self_data == out_data).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * g)
                return
            out_keep = self_data.max(axis=axis, keepdims=True)
            mask = (self_data == out_keep).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            self._accumulate(mask * g_expanded)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # Convenience wrappers so model code reads naturally; the heavy lifting
    # lives in repro.autograd.functional.
    def exp(self) -> "Tensor":
        from repro.autograd import functional as F

        return F.exp(self)

    def log(self) -> "Tensor":
        from repro.autograd import functional as F

        return F.log(self)

    def sqrt(self) -> "Tensor":
        from repro.autograd import functional as F

        return F.sqrt(self)

    def tanh(self) -> "Tensor":
        from repro.autograd import functional as F

        return F.tanh(self)

    def abs(self) -> "Tensor":
        from repro.autograd import functional as F

        return F.abs(self)

    def clip(self, low: float, high: float) -> "Tensor":
        from repro.autograd import functional as F

        return F.clip(self, low, high)


def tensor(data: TensorLike, requires_grad: bool = False) -> Tensor:
    """Factory mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
