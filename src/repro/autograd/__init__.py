"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the substrate that replaces PyTorch's autograd in the
reproduction: a tape-based reverse-mode engine whose primitives cover
everything the toolkit needs — elementwise math, matrix products, reductions,
indexing, and the segment (scatter/gather) reductions that graph neural
network message passing is built on.

The public surface mirrors a small slice of ``torch``:

>>> from repro.autograd import Tensor
>>> x = Tensor([[1.0, 2.0]], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad
array([[2., 4.]])
"""

from repro.autograd.tensor import (
    Tensor,
    batch_invariant_kernels,
    is_grad_enabled,
    no_grad,
    tensor,
)
from repro.autograd import functional
from repro.autograd.anomaly import (
    NumericalAnomalyError,
    anomaly_enabled,
    detect_anomaly,
)
from repro.autograd.gradcheck import gradcheck, numerical_gradient

__all__ = [
    "Tensor",
    "tensor",
    "batch_invariant_kernels",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "NumericalAnomalyError",
    "anomaly_enabled",
    "detect_anomaly",
    "gradcheck",
    "numerical_gradient",
]
