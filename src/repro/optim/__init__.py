"""Optimizers and learning-rate schedulers.

``AdamW`` reproduces decoupled weight decay (Loshchilov & Hutter), the
optimizer the paper uses everywhere; schedulers reproduce the paper's
linear-warmup → exponential-decay schedule and Goyal et al.'s
scale-lr-with-world-size rule for distributed data parallelism.
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.schedulers import (
    LRScheduler,
    ConstantLR,
    LinearWarmup,
    ExponentialDecay,
    WarmupExponential,
    SequentialLR,
    CosineAnnealing,
    scale_lr_for_ddp,
)
from repro.optim.clip import NonFiniteGradientError, clip_grad_norm
from repro.optim.grouped import MultiGroupOptimizer

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "ConstantLR",
    "LinearWarmup",
    "ExponentialDecay",
    "WarmupExponential",
    "SequentialLR",
    "CosineAnnealing",
    "scale_lr_for_ddp",
    "NonFiniteGradientError",
    "clip_grad_norm",
    "MultiGroupOptimizer",
]
