"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Holds parameter references and per-parameter state.

    Parameters are identified by position; ``state`` maps parameter index to
    a dict of numpy arrays (e.g. Adam moments), so optimizer state can be
    captured and restored for checkpointing and for the instability analyses
    that inspect moment statistics.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.state: Dict[int, Dict[str, np.ndarray]] = {}
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Introspection for the training-dynamics experiments
    # ------------------------------------------------------------------ #
    def grad_global_norm(self) -> float:
        """L2 norm of the concatenated gradient — the quantity Molybog et
        al. correlate with Adam divergence events."""
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad * p.grad).sum())
        return float(np.sqrt(total))

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "step_count": self.step_count,
            "state": {
                k: {name: arr.copy() for name, arr in sub.items()}
                for k, sub in self.state.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.step_count = state["step_count"]
        self.state = {
            int(k): {name: np.asarray(arr).copy() for name, arr in sub.items()}
            for k, sub in state["state"].items()
        }
