"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Reference optimizer: baseline against Adam in the instability study.

    Plain SGD has no adaptive preconditioner, so the ``eps``-floor pathology
    Molybog et al. describe for Adam cannot occur — which is exactly why it
    is worth having in the ablation benches.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay

    def step(self) -> None:
        self.step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                buf = self.state.setdefault(i, {}).get("momentum")
                if buf is None:
                    buf = np.zeros_like(p.data)
                buf = self.momentum * buf + g
                self.state[i]["momentum"] = buf
                g = buf
            p.data -= self.lr * g
