"""Gradient clipping utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Gradient clipping is one of the mitigations
    discussed for the large-batch Adam spikes; the ablation bench measures
    its effect on spike frequency.
    """
    params = [p for p in params if p.grad is not None]
    total = 0.0
    for p in params:
        total += float((p.grad * p.grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            p.grad *= scale
    return norm
