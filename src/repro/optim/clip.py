"""Gradient clipping utilities."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class NonFiniteGradientError(RuntimeError):
    """Raised by :func:`clip_grad_norm` when the global norm is NaN/Inf."""

    def __init__(self, norm: float):
        super().__init__(
            f"global gradient norm is non-finite ({norm}); clipping cannot "
            "bound it — zero the gradients (nonfinite='zero') or recover "
            "via the stability guard"
        )
        self.norm = norm


def clip_grad_norm(
    params: Iterable[Parameter],
    max_norm: float,
    nonfinite: str = "error",
) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (always, including when no scaling happens
    and when the norm is non-finite).  Gradient clipping is one of the
    mitigations discussed for the large-batch Adam spikes; the ablation
    bench measures its effect on spike frequency.

    A NaN/Inf global norm cannot be clipped — any finite ``scale`` times a
    non-finite gradient is still non-finite, so silently skipping the
    scaling (the historical behaviour) lets a poisoned step through at
    full magnitude.  ``nonfinite`` selects the handling:

    * ``"error"`` (default) — raise :class:`NonFiniteGradientError`;
    * ``"zero"`` — zero every gradient so ``optimizer.step`` becomes a
      no-op for this batch, and return the (non-finite) pre-clip norm.
    """
    if nonfinite not in ("error", "zero"):
        raise ValueError(
            f"nonfinite must be 'error' or 'zero', got {nonfinite!r}"
        )
    params = [p for p in params if p.grad is not None]
    total = 0.0
    for p in params:
        total += float((p.grad * p.grad).sum())
    norm = float(np.sqrt(total))
    if not math.isfinite(norm):
        if nonfinite == "error":
            raise NonFiniteGradientError(norm)
        for p in params:
            p.grad = np.zeros_like(p.grad)
        return norm
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            p.grad *= scale
    return norm
