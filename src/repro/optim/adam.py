"""Adam and AdamW (decoupled weight decay).

The paper trains everything with AdamW at the default momenta
(beta1 = 0.9, beta2 = 0.999) and attributes its large-batch loss spikes to
the Adam instability analyzed by Molybog et al. (2023): when gradients decay
to the order of ``eps``, the update direction decouples across layers and the
time-correlation assumption behind Adam's convergence breaks.  To support
that analysis, the implementation exposes per-step diagnostics
(:meth:`Adam.update_statistics`) including the fraction of second-moment
entries at the eps floor.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.kernels import dispatch
from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with coupled (L2) weight decay.

    Two stabilised variants of the update rule are available for the
    spike-mitigation ablations:

    * ``amsgrad=True`` — divide by the running *maximum* of the
      second-moment estimate (Reddi et al., 2018) instead of its current
      value, so the effective step size is monotonically non-increasing
      and cannot rebound when ``v`` decays toward the eps floor.
    * ``update_clip=r`` — StableAdamW-style clipping of the per-tensor
      RMS of the final update to at most ``r``: a spike in ``m/sqrt(v)``
      is bounded before it reaches the parameters.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        amsgrad: bool = False,
        update_clip: Optional[float] = None,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if update_clip is not None and update_clip <= 0:
            raise ValueError(f"update_clip must be > 0, got {update_clip}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.amsgrad = amsgrad
        self.update_clip = update_clip
        self._decoupled = False
        # Preallocated per-parameter work buffers for the fused step.  Kept
        # out of ``self.state`` so checkpoints never serialize scratch.
        self._scratch: Dict[int, tuple] = {}

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        if dispatch.fused_enabled():
            self._step_fused(bias1, bias2)
            return
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay and not self._decoupled:
                g = g + self.weight_decay * p.data
            state = self.state.setdefault(i, {})
            if "m" not in state:
                state["m"] = np.zeros_like(p.data)
                state["v"] = np.zeros_like(p.data)
                if self.amsgrad:
                    state["vmax"] = np.zeros_like(p.data)
            m, v = state["m"], state["v"]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / bias1
            if self.amsgrad:
                vmax = state["vmax"]
                np.maximum(vmax, v, out=vmax)
                v_hat = vmax / bias2
            else:
                v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.update_clip is not None:
                rms = float(np.sqrt(np.mean(update * update)))
                if rms > self.update_clip:
                    update *= self.update_clip / rms
            if self.weight_decay and self._decoupled:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * update

    def _step_fused(self, bias1: float, bias2: float) -> None:
        """Single-pass update using two preallocated scratch buffers.

        Bit-identical to the reference loop above: every in-place numpy op
        computes the same elementwise expression (IEEE multiplication and
        addition are commutative), so parameters, moments, and checkpoints
        agree to the last ulp with ``REPRO_FUSED=0``.  The win is allocation
        traffic: the reference path materializes ~7 temporaries per
        parameter per step, this path none.
        """
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            state = self.state.setdefault(i, {})
            if "m" not in state:
                state["m"] = np.zeros_like(p.data)
                state["v"] = np.zeros_like(p.data)
                if self.amsgrad:
                    state["vmax"] = np.zeros_like(p.data)
            scratch = self._scratch.get(i)
            if scratch is None or scratch[0].shape != p.data.shape:
                scratch = (np.empty_like(p.data), np.empty_like(p.data))
                self._scratch[i] = scratch
            s1, s2 = scratch
            m, v = state["m"], state["v"]
            if self.weight_decay and not self._decoupled:
                np.multiply(p.data, self.weight_decay, out=s1)
                s1 += g
                g = s1
            m *= self.beta1
            np.multiply(g, 1.0 - self.beta1, out=s2)
            m += s2
            v *= self.beta2
            np.multiply(g, 1.0 - self.beta2, out=s2)
            s2 *= g
            v += s2
            if self.amsgrad:
                vmax = state["vmax"]
                np.maximum(vmax, v, out=vmax)
                np.divide(vmax, bias2, out=s1)
            else:
                np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            s1 += self.eps
            np.divide(m, bias1, out=s2)
            s2 /= s1
            if self.update_clip is not None:
                rms = float(np.sqrt(np.mean(s2 * s2)))
                if rms > self.update_clip:
                    s2 *= self.update_clip / rms
            if self.weight_decay and self._decoupled:
                np.multiply(p.data, self.lr * self.weight_decay, out=s1)
                p.data -= s1
            s2 *= self.lr
            p.data -= s2

    # ------------------------------------------------------------------ #
    # Instability diagnostics
    # ------------------------------------------------------------------ #
    def update_statistics(self) -> Dict[str, float]:
        """Summaries of the optimizer's internal state for spike analysis.

        Returns the global gradient norm, mean |m|, mean v, and the fraction
        of v entries below eps^2 (the "eps floor" — large fractions mean the
        effective update is dominated by the division-guard and layer-wise
        dynamics decouple, the precondition for the Molybog-style spikes).
        """
        grad_norm = self.grad_global_norm()
        m_abs, v_sum, n, floor = 0.0, 0.0, 0, 0
        for state in self.state.values():
            if "m" in state:
                m_abs += float(np.abs(state["m"]).sum())
                v_sum += float(state["v"].sum())
                floor += int((state["v"] < self.eps**2).sum())
                n += state["m"].size
        n = max(n, 1)
        return {
            "grad_norm": grad_norm,
            "mean_abs_m": m_abs / n,
            "mean_v": v_sum / n,
            "eps_floor_fraction": floor / n,
        }


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    Weight decay multiplies parameters directly instead of being folded into
    the gradient, so the adaptive preconditioner never rescales the decay.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-2,
        amsgrad: bool = False,
        update_clip: Optional[float] = None,
    ) -> None:
        super().__init__(
            params,
            lr,
            betas=betas,
            eps=eps,
            weight_decay=weight_decay,
            amsgrad=amsgrad,
            update_clip=update_clip,
        )
        self._decoupled = True
