"""Learning-rate schedules.

The paper's schedule (Sec. 4.2, Fig. 6): linearly ramp the learning rate
over a warmup period (8 epochs for the scale-out study, 5 for the final
pretraining run) up to ``eta_base * N`` where ``N`` is the number of DDP
workers (Goyal et al.'s constant-gradient-variance rule), then decay
exponentially with gamma = 0.8 per epoch.  Fine-tuning divides the base rate
by ten to mitigate forgetting.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.optim.optimizer import Optimizer


def scale_lr_for_ddp(base_lr: float, world_size: int) -> float:
    """Goyal et al. linear scaling rule: lr = base_lr * world_size."""
    if world_size < 1:
        raise ValueError(f"world size must be >= 1, got {world_size}")
    return base_lr * world_size


class LRScheduler:
    """Base class: epoch-indexed multiplicative schedule over a target lr.

    ``step()`` advances one scheduling period (an epoch in the paper's
    configuration, though nothing prevents per-step schedules) and writes the
    new learning rate into the bound optimizer.
    """

    def __init__(self, optimizer: Optimizer, target_lr: float | None = None) -> None:
        self.optimizer = optimizer
        self.target_lr = float(target_lr if target_lr is not None else optimizer.lr)
        self.epoch = 0
        self._apply()

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def _apply(self) -> None:
        self.optimizer.lr = self.lr_at(self.epoch)

    def step(self) -> None:
        self.epoch += 1
        self._apply()

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """Fixed learning rate (the no-schedule baseline)."""

    def lr_at(self, epoch: int) -> float:
        return self.target_lr


class LinearWarmup(LRScheduler):
    """Ramp lr linearly from ``target/warmup`` to ``target`` over warmup epochs."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int, target_lr: float | None = None):
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.warmup_epochs = warmup_epochs
        super().__init__(optimizer, target_lr)

    def lr_at(self, epoch: int) -> float:
        frac = min((epoch + 1) / self.warmup_epochs, 1.0)
        return self.target_lr * frac


class ExponentialDecay(LRScheduler):
    """``lr = target * gamma^epoch`` (paper: gamma = 0.8)."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.8, target_lr: float | None = None):
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma
        super().__init__(optimizer, target_lr)

    def lr_at(self, epoch: int) -> float:
        return self.target_lr * self.gamma**epoch


class CosineAnnealing(LRScheduler):
    """Cosine decay to ``min_lr`` over ``total_epochs`` (extension schedule)."""

    def __init__(
        self,
        optimizer: Optimizer,
        total_epochs: int,
        min_lr: float = 0.0,
        target_lr: float | None = None,
    ):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        super().__init__(optimizer, target_lr)

    def lr_at(self, epoch: int) -> float:
        frac = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.target_lr - self.min_lr) * (1 + math.cos(math.pi * frac))


class SequentialLR(LRScheduler):
    """Chain schedules with switch points, e.g. warmup then decay."""

    def __init__(
        self,
        optimizer: Optimizer,
        schedulers: Sequence[LRScheduler],
        milestones: Sequence[int],
    ):
        if len(milestones) != len(schedulers) - 1:
            raise ValueError("need exactly len(schedulers) - 1 milestones")
        if list(milestones) != sorted(milestones):
            raise ValueError("milestones must be increasing")
        self.schedulers = list(schedulers)
        self.milestones = list(milestones)
        super().__init__(optimizer, self.schedulers[-1].target_lr)

    def lr_at(self, epoch: int) -> float:
        idx = 0
        offset = 0
        for i, milestone in enumerate(self.milestones):
            if epoch >= milestone:
                idx = i + 1
                offset = milestone
        return self.schedulers[idx].lr_at(epoch - offset)


class WarmupExponential(LRScheduler):
    """The paper's schedule in one object: linear warmup, then gamma-decay.

    ``lr(e) = target * (e+1)/warmup``   for e < warmup
    ``lr(e) = target * gamma^(e - warmup + 1)``   afterwards
    """

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_epochs: int = 8,
        gamma: float = 0.8,
        target_lr: float | None = None,
    ):
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.warmup_epochs = warmup_epochs
        self.gamma = gamma
        super().__init__(optimizer, target_lr)

    def lr_at(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self.target_lr * (epoch + 1) / self.warmup_epochs
        return self.target_lr * self.gamma ** (epoch - self.warmup_epochs + 1)
