"""Parameter-group optimizer wrapper for discriminative fine-tuning.

The paper's fine-tuning recipe scales the base learning rate down by ten to
mitigate catastrophic forgetting.  Forgetting is a property of the
*pretrained encoder*; the freshly initialized output head has nothing to
forget, so the reproduction applies the rule per group: encoder parameters
at ``base_lr / 10``, head parameters at ``base_lr`` (see EXPERIMENTS.md for
the discussion).  ``MultiGroupOptimizer`` composes per-group optimizers
behind the single ``lr`` attribute the schedulers drive, preserving each
group's relative scale as the schedule moves.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.optim.optimizer import Optimizer


class MultiGroupOptimizer:
    """Compose optimizers with fixed lr ratios under one schedule.

    Parameters
    ----------
    groups:
        ``(optimizer, scale)`` pairs.  Setting ``self.lr = x`` drives each
        member at ``x * scale``; schedulers interact with this object
        exactly as with a plain optimizer.
    """

    def __init__(self, groups: Sequence[Tuple[Optimizer, float]]):
        if not groups:
            raise ValueError("need at least one optimizer group")
        for _, scale in groups:
            if scale <= 0:
                raise ValueError(f"group scale must be positive, got {scale}")
        self.groups: List[Tuple[Optimizer, float]] = list(groups)
        self._base_lr = self.groups[0][0].lr / self.groups[0][1]
        self._apply()

    # ------------------------------------------------------------------ #
    @property
    def lr(self) -> float:
        return self._base_lr

    @lr.setter
    def lr(self, value: float) -> None:
        self._base_lr = float(value)
        self._apply()

    def _apply(self) -> None:
        for opt, scale in self.groups:
            opt.lr = self._base_lr * scale

    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        for opt, _ in self.groups:
            opt.zero_grad()

    def step(self) -> None:
        for opt, _ in self.groups:
            opt.step()

    @property
    def step_count(self) -> int:
        return self.groups[0][0].step_count

    def grad_global_norm(self) -> float:
        import numpy as np

        return float(
            np.sqrt(sum(opt.grad_global_norm() ** 2 for opt, _ in self.groups))
        )

    def update_statistics(self) -> dict:
        """Aggregate member diagnostics (weighted by parameter count)."""
        merged: dict = {}
        total = 0
        for opt, _ in self.groups:
            if not hasattr(opt, "update_statistics"):
                continue
            stats = opt.update_statistics()
            n = sum(p.size for p in opt.params)
            total += n
            for k, v in stats.items():
                merged[k] = merged.get(k, 0.0) + v * n
        if total:
            merged = {k: v / total for k, v in merged.items()}
        return merged
