"""Run history: a flat record store with series extraction.

Every logged event is a dict with at least ``step``, ``epoch`` and
``split``; benches pull (step, metric) series out to print the paper's
curves.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Tuple


class History:
    """Append-only log of training/validation events."""

    def __init__(self) -> None:
        self.records: List[Dict] = []

    def log(self, step: int, epoch: int, split: str, **metrics) -> None:
        record = {"step": step, "epoch": epoch, "split": split}
        record.update(metrics)
        self.records.append(record)

    def series(self, split: str, metric: str) -> Tuple[List[int], List[float]]:
        """(steps, values) for one metric on one split, in log order."""
        steps, values = [], []
        for r in self.records:
            if r["split"] == split and metric in r and r[metric] is not None:
                steps.append(r["step"])
                values.append(float(r[metric]))
        return steps, values

    def last(self, split: str, metric: str) -> Optional[float]:
        for r in reversed(self.records):
            if r["split"] == split and metric in r:
                return float(r[metric])
        return None

    def best(self, split: str, metric: str, mode: str = "min") -> Optional[float]:
        _, values = self.series(split, metric)
        if not values:
            return None
        return min(values) if mode == "min" else max(values)

    def metrics_logged(self, split: str) -> List[str]:
        keys: List[str] = []
        for r in self.records:
            if r["split"] != split:
                continue
            for k in r:
                if k not in ("step", "epoch", "split") and k not in keys:
                    keys.append(k)
        return keys

    def to_csv(self) -> str:
        """Serialize to CSV (benches drop these next to their output)."""
        if not self.records:
            return ""
        keys: List[str] = []
        for r in self.records:
            for k in r:
                if k not in keys:
                    keys.append(k)
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=keys)
        writer.writeheader()
        for r in self.records:
            writer.writerow(r)
        return buf.getvalue()

    def __len__(self) -> int:
        return len(self.records)
