"""Trainer callbacks.

The spike detector implements the quantitative handle on the paper's
large-batch Adam instability discussion: a *spike* is a validation-loss
sample exceeding the best loss seen so far by a multiplicative factor,
after an initial grace period.  Fig. 3's qualitative story ("spike
prevalence increases with worker count; the largest run never recovers")
becomes measurable via ``spike_count`` and ``recovered``.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional


class Callback:
    """Hooks around the training loop.  All default to no-ops."""

    def on_train_start(self, trainer, task) -> None: ...

    def on_step_end(self, trainer, task, step: int, loss: float, metrics: Dict) -> None: ...

    def on_validation_end(self, trainer, task, step: int, metrics: Dict) -> None: ...

    def on_epoch_end(self, trainer, task, epoch: int) -> None: ...

    def on_train_end(self, trainer, task) -> None: ...


class EarlyStopping(Callback):
    """Stop when a monitored validation metric stops improving."""

    def __init__(self, monitor: str, patience: int = 5, mode: str = "min", min_delta: float = 0.0):
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.monitor = monitor
        self.patience = patience
        self.mode = mode
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.stale = 0

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_validation_end(self, trainer, task, step: int, metrics: Dict) -> None:
        if self.monitor not in metrics:
            return
        value = metrics[self.monitor]
        if self._improved(value):
            self.best = value
            self.stale = 0
        else:
            self.stale += 1
            if self.stale >= self.patience:
                trainer.should_stop = True


class ModelCheckpoint(Callback):
    """Keep the best model state (in memory) by a monitored metric."""

    def __init__(self, monitor: str, mode: str = "min"):
        self.monitor = monitor
        self.mode = mode
        self.best_value: Optional[float] = None
        self.best_state: Optional[dict] = None
        self.best_step: Optional[int] = None

    def on_validation_end(self, trainer, task, step: int, metrics: Dict) -> None:
        if self.monitor not in metrics:
            return
        value = metrics[self.monitor]
        better = (
            self.best_value is None
            or (self.mode == "min" and value < self.best_value)
            or (self.mode == "max" and value > self.best_value)
        )
        if better:
            self.best_value = value
            self.best_state = task.state_dict()
            self.best_step = step

    def restore_best(self, task) -> None:
        if self.best_state is None:
            raise RuntimeError("no checkpoint captured yet")
        task.load_state_dict(self.best_state)


class LRMonitor(Callback):
    """Log the optimizer's learning rate each epoch (Fig. 6's dashed trace).

    Without an optimizer attached there is no learning rate to report, so
    nothing is logged — a ``lr=nan`` record would poison downstream
    aggregations (``History`` means, plot axes) for the whole run.
    """

    def __init__(self):
        self.trace: List[tuple] = []

    def on_epoch_end(self, trainer, task, epoch: int) -> None:
        if trainer.optimizer is None:
            return
        lr = trainer.optimizer.lr
        self.trace.append((epoch, lr))
        trainer.history.log(trainer.global_step, epoch, "lr", lr=lr)


class ProgressCallback(Callback):
    """Print per-step progress lines (loss, learning rate, epoch).

    Renders ``lr=-`` when no optimizer is attached rather than ``lr=nan``,
    and only finite values ever reach the printed line or the kept records.
    """

    def __init__(self, every_n_steps: int = 1, stream=None):
        self.every = max(int(every_n_steps), 1)
        self.stream = stream
        self.lines: List[str] = []

    def _write(self, line: str) -> None:
        self.lines.append(line)
        if self.stream is not None:
            print(line, file=self.stream)

    def on_step_end(self, trainer, task, step: int, loss: float, metrics: Dict) -> None:
        if step % self.every != 0:
            return
        loss_txt = f"{loss:.4f}" if math.isfinite(loss) else "-"
        if trainer.optimizer is None or not math.isfinite(trainer.optimizer.lr):
            lr_txt = "-"
        else:
            lr_txt = f"{trainer.optimizer.lr:.3e}"
        self._write(
            f"epoch {trainer.current_epoch} step {step}: "
            f"loss={loss_txt} lr={lr_txt}"
        )


class ThroughputMeter(Callback):
    """Measure end-to-end training samples/second (feeds the Fig. 2 model)."""

    def __init__(self):
        self.samples = 0
        self.start: Optional[float] = None
        self.elapsed = 0.0

    def on_train_start(self, trainer, task) -> None:
        self.start = time.perf_counter()

    def on_step_end(self, trainer, task, step: int, loss: float, metrics: Dict) -> None:
        self.samples += trainer.last_batch_size

    def on_train_end(self, trainer, task) -> None:
        if self.start is not None:
            self.elapsed = time.perf_counter() - self.start

    @property
    def samples_per_second(self) -> float:
        if self.start is None:
            return 0.0
        elapsed = self.elapsed or (time.perf_counter() - self.start)
        return self.samples / max(elapsed, 1e-9)


class SpikeDetector(Callback):
    """Detect validation-loss spikes (the Fig. 3 instability signature).

    A spike is logged when the monitored loss exceeds
    ``factor * best_so_far`` after ``warmup_evals`` evaluations.
    ``recovered`` reports whether the final loss returned to within
    ``recovery_factor`` of the best — the 512-rank run in the paper does not.
    """

    def __init__(
        self,
        monitor: str,
        factor: float = 1.5,
        warmup_evals: int = 3,
        recovery_factor: float = 1.25,
    ):
        self.monitor = monitor
        self.factor = factor
        self.warmup_evals = warmup_evals
        self.recovery_factor = recovery_factor
        self.best: Optional[float] = None
        self.evals = 0
        self.spike_steps: List[int] = []
        self.spike_magnitudes: List[float] = []
        self.last_value: Optional[float] = None

    def on_validation_end(self, trainer, task, step: int, metrics: Dict) -> None:
        if self.monitor not in metrics:
            return
        value = float(metrics[self.monitor])
        self.evals += 1
        self.last_value = value
        if self.best is None or value < self.best:
            self.best = value
        elif self.evals > self.warmup_evals and value > self.factor * self.best:
            self.spike_steps.append(step)
            self.spike_magnitudes.append(value / self.best)

    @property
    def spike_count(self) -> int:
        return len(self.spike_steps)

    @property
    def recovered(self) -> bool:
        """True when the run ended near its best loss again."""
        if self.best is None or self.last_value is None:
            return True
        return self.last_value <= self.recovery_factor * self.best


class FaultEventMonitor(Callback):
    """Surface the fault/recovery event log in the run history.

    Bound to the distributed layer's :class:`EventLog`, it logs the event
    counts (crashes, timeouts, retries, restores, ...) into the history at
    the end of training under the ``fault`` split, so persisted histories
    carry the run's fault story alongside its loss curves.
    """

    def __init__(self, events):
        self.events = events

    def summary(self) -> Dict[str, int]:
        return self.events.summary()

    def on_train_end(self, trainer, task) -> None:
        counts = self.events.summary()
        if counts:
            trainer.history.log(trainer.global_step, 0, "fault", **counts)


class GradientStatsMonitor(Callback):
    """Record optimizer update statistics (Adam eps-floor diagnostics)."""

    def __init__(self, every_n_steps: int = 10):
        self.every = every_n_steps
        self.records: List[Dict] = []

    def on_step_end(self, trainer, task, step: int, loss: float, metrics: Dict) -> None:
        opt = trainer.optimizer
        if opt is None or step % self.every != 0:
            return
        if hasattr(opt, "update_statistics"):
            stats = opt.update_statistics()
            stats["step"] = step
            self.records.append(stats)
