"""Metric primitives."""

from __future__ import annotations

import numpy as np


class Meter:
    """Streaming weighted mean."""

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: float, n: int = 1) -> None:
        self.total += float(value) * n
        self.count += n

    @property
    def mean(self) -> float:
        return self.total / max(self.count, 1)

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0


def mean_absolute_error(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean |pred - target|."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    return float(np.abs(pred - target).mean())


def root_mean_squared_error(pred: np.ndarray, target: np.ndarray) -> float:
    """sqrt(mean (pred - target)^2)."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    return float(np.sqrt(((pred - target) ** 2).mean()))


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Classification accuracy: sign rule for 1-D logits, argmax for 2-D."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim == 1:
        return float(((logits > 0) == (labels > 0.5)).mean())
    return float((logits.argmax(axis=-1) == labels).mean())


def cross_entropy_np(logits: np.ndarray, labels: np.ndarray) -> float:
    """Reference (non-differentiable) multiclass CE for validation checks."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    return float(-logp[np.arange(len(labels)), labels].mean())
