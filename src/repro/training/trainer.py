"""The training loop.

``Trainer.fit`` consumes loaders that yield *lists of samples* (use
``collate_fn=list`` on the DataLoader): the distributed strategy decides
how a global batch becomes gradients — one collated batch for a single
worker, N rank shards for simulated DDP.  Validation always runs
single-process (it is metric aggregation, not gradient work).

Fault tolerance: with a :class:`RecoveryConfig`, the trainer writes a
full recovery point (model + optimizer + loop position + history) every
``checkpoint_every_n_steps`` steps and guards each training step.  A
:class:`~repro.distributed.faults.StepFailure` from the strategy — a
rank crash with elastic mode off, or an exhausted allreduce retry
budget — triggers restore-and-retry: the last checkpoint is loaded, the
world is revived (``strategy.on_recover``), and the same global batch
re-executes.  Because the failed attempt never reached
``optimizer.step`` and the injected fault is one-shot, the recovered
run is bit-identical to an uninterrupted one.  Elastic world shrinks
inside the strategy surface here only as an LR re-scale
(``consume_lr_rescale``, the Goyal rule tracking the new world size).

Numerical stability: with a :class:`~repro.stability.StabilityGuard`
attached, every completed forward/backward is checked *before*
``optimizer.step``.  A confirmed loss spike (or, under
``TrainerConfig.detect_anomaly``, a non-finite value caught on the
autograd tape) makes the step an *intervention*: gradients are zeroed,
``optimizer.step`` / gradient clipping / checkpoint saving are skipped,
the guard's recovery policy runs (skip / LR backoff / checkpoint
rollback), and the step still counts toward loop progress so a
persistently sick run terminates at ``max_steps`` instead of spinning.
Intervened losses never enter the history's train series.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.data.batching import collate_graphs
from repro.distributed.ddp import SingleProcessStrategy, Strategy
from repro.distributed.events import CHECKPOINT_SAVE, LR_RESCALE, RECOVER, RESTORE, RETRY, EventLog
from repro.distributed.faults import StepFailure
from repro.autograd.anomaly import NumericalAnomalyError, detect_anomaly
from repro.optim.clip import clip_grad_norm
from repro.optim.optimizer import Optimizer
from repro.optim.schedulers import LRScheduler
from repro.tasks.base import Task, finalize_val_results, merge_val_results
from repro.training.callbacks import Callback
from repro.training.checkpoint_io import load_checkpoint, save_checkpoint
from repro.training.history import History

#: Shared no-op context for un-observed runs (stateless, reusable).
_NULL_SPAN = contextlib.nullcontext()


@dataclass
class TrainerConfig:
    """Loop configuration.

    ``val_every_n_steps`` enables the dense validation cadence the early-
    dynamics study needs (Fig. 3 evaluates every few steps); when None,
    validation runs at epoch boundaries only.
    """

    max_epochs: int = 10
    max_steps: Optional[int] = None
    val_every_n_steps: Optional[int] = None
    val_every_n_epochs: int = 1
    grad_clip_norm: Optional[float] = None
    #: How ``clip_grad_norm`` treats a NaN/Inf global norm inside the loop.
    #: "zero" (default) skips the poisoned update instead of aborting the
    #: run — the stability guard, when attached, is what decides whether
    #: the run needs stronger recovery.
    grad_clip_nonfinite: str = "zero"
    #: Run every strategy execution under ``repro.autograd.detect_anomaly``
    #: so the first non-finite forward value or gradient raises a
    #: NumericalAnomalyError naming the offending op (handled by the
    #: stability guard when one is attached, re-raised otherwise).
    detect_anomaly: bool = False
    log_every_n_steps: int = 10
    val_max_batches: Optional[int] = None


@dataclass
class RecoveryConfig:
    """Checkpoint-based crash recovery.

    ``checkpoint_dir`` receives ``model.npz``/``optim.npz``/``meta.json``
    recovery points; ``max_recoveries`` bounds restore-retry loops so an
    unrecoverable fault cannot spin forever.
    """

    checkpoint_dir: str
    checkpoint_every_n_steps: int = 1
    max_recoveries: int = 8
    events: Optional[EventLog] = None


class Trainer:
    """Fit a task against train/validation loaders."""

    def __init__(
        self,
        config: TrainerConfig,
        strategy: Optional[Strategy] = None,
        callbacks: Optional[Sequence[Callback]] = None,
        collate_fn: Callable = collate_graphs,
        recovery: Optional[RecoveryConfig] = None,
        stability=None,
        observer=None,
    ):
        self.config = config
        self.strategy = strategy if strategy is not None else SingleProcessStrategy(collate_fn)
        self.callbacks: List[Callback] = list(callbacks or [])
        self.collate_fn = collate_fn
        self.recovery = recovery
        #: Optional :class:`~repro.stability.StabilityGuard`; duck-typed so
        #: the training layer does not import the stability package.
        self.stability = stability
        #: Optional :class:`~repro.observability.Observer`; duck-typed (only
        #: ``.span``/``.tracer`` are used).  When attached, the loop emits
        #: fit > data/step(forward/backward/comm)/optim/val spans and hands
        #: the tracer to the strategy and its communicator.
        self.observer = observer
        if observer is not None:
            self.strategy.tracer = observer.tracer
            comm = getattr(self.strategy, "comm", None)
            if comm is not None:
                comm.tracer = observer.tracer
        self.history = History()
        self.global_step = 0
        self.current_epoch = 0
        self.should_stop = False
        self.optimizer: Optional[Optimizer] = None
        self.scheduler: Optional[LRScheduler] = None
        self.last_batch_size = 0
        self.recoveries = 0

    # ------------------------------------------------------------------ #
    def _emit(self, hook: str, *args) -> None:
        for cb in self.callbacks:
            getattr(cb, hook)(self, *args)

    def _span(self, name: str, **attrs):
        obs = self.observer
        return obs.span(name, **attrs) if obs is not None else _NULL_SPAN

    def _iter_observed(self, loader):
        """Yield loader batches, timing each fetch as a ``data`` span."""
        if self.observer is None:
            yield from loader
            return
        it = iter(loader)
        while True:
            with self._span("data", source="loader"):
                try:
                    samples = next(it)
                except StopIteration:
                    return
            yield samples

    # ------------------------------------------------------------------ #
    @property
    def _events(self) -> Optional[EventLog]:
        if self.recovery is not None and self.recovery.events is not None:
            return self.recovery.events
        return getattr(self.strategy, "events", None)

    def _record(self, kind: str, **detail) -> None:
        events = self._events
        if events is not None:
            events.record(kind, step=self.global_step, **detail)

    # ------------------------------------------------------------------ #
    def validate(self, task: Task, val_loader) -> Dict[str, float]:
        """Aggregate validation metrics over (at most val_max_batches) batches."""
        task.eval()
        acc: dict = {}
        for i, samples in enumerate(val_loader):
            if (
                self.config.val_max_batches is not None
                and i >= self.config.val_max_batches
            ):
                break
            with self._span("data", source="val_collate"):
                batch = self.collate_fn(list(samples))
            with self._span("forward", mode="val"):
                results = task.validation_step(batch)
            acc = merge_val_results(acc, results)
        task.train()
        return finalize_val_results(acc)

    def _run_validation(self, task: Task, val_loader, epoch: int) -> Dict[str, float]:
        with self._span("val", step=self.global_step):
            metrics = self.validate(task, val_loader)
        self.history.log(self.global_step, epoch, "val", **metrics)
        self._emit("on_validation_end", task, self.global_step, metrics)
        return metrics

    # ------------------------------------------------------------------ #
    # Fault-tolerant step execution
    # ------------------------------------------------------------------ #
    def _save_recovery_point(self, task: Task, epoch: int) -> None:
        assert self.recovery is not None and self.optimizer is not None
        save_checkpoint(
            self.recovery.checkpoint_dir,
            task,
            self.optimizer,
            step=self.global_step,
            epoch=epoch,
            history=self.history,
        )
        self._record(CHECKPOINT_SAVE)

    def _restore_recovery_point(self, task: Task) -> None:
        assert self.recovery is not None and self.optimizer is not None
        meta = load_checkpoint(
            self.recovery.checkpoint_dir, task, self.optimizer, history=self.history
        )
        self.global_step = meta["step"]
        self._record(RESTORE, checkpoint_step=meta["step"])
        self.strategy.on_recover()

    def _execute_step(self, task: Task, samples: Sequence, optimizer: Optimizer):
        """One guarded strategy execution with restore-retry on StepFailure."""
        while True:
            try:
                if self.config.detect_anomaly:
                    with detect_anomaly():
                        loss, metrics = self.strategy.execute(task, samples)
                else:
                    loss, metrics = self.strategy.execute(task, samples)
            except StepFailure:
                if self.recovery is None:
                    raise
                if self.recoveries >= self.recovery.max_recoveries:
                    raise
                self.recoveries += 1
                self._restore_recovery_point(task)
                optimizer.zero_grad()
                self._record(RETRY, recovery=self.recoveries)
                continue
            # Elastic world shrinks re-scale the LR by the Goyal rule.
            factor = self.strategy.consume_lr_rescale()
            if factor != 1.0:
                optimizer.lr *= factor
                if self.scheduler is not None:
                    self.scheduler.target_lr *= factor
                self._record(LR_RESCALE, factor=factor, lr=optimizer.lr)
            return loss, metrics

    # ------------------------------------------------------------------ #
    def fit(
        self,
        task: Task,
        train_loader,
        val_loader=None,
        optimizer: Optional[Optimizer] = None,
        scheduler: Optional[LRScheduler] = None,
    ) -> History:
        with self._span("fit"):
            return self._fit(task, train_loader, val_loader, optimizer, scheduler)

    def _fit(
        self,
        task: Task,
        train_loader,
        val_loader,
        optimizer: Optional[Optimizer],
        scheduler: Optional[LRScheduler],
    ) -> History:
        if optimizer is None:
            raise ValueError("Trainer.fit requires an optimizer")
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.should_stop = False
        task.train()
        self._emit("on_train_start", task)
        if self.recovery is not None:
            # Step-0 recovery point: a first-step failure restores to init.
            self._save_recovery_point(task, epoch=0)

        for epoch in range(self.config.max_epochs):
            self.current_epoch = epoch
            sampler = getattr(train_loader, "sampler", None)
            if hasattr(sampler, "set_epoch"):
                sampler.set_epoch(epoch)
            for samples in self._iter_observed(train_loader):
                samples = list(samples)
                self.last_batch_size = len(samples)
                with self._span("step", step=self.global_step):
                    optimizer.zero_grad()
                    had_failure = self.recoveries
                    intervened = False
                    try:
                        loss, metrics = self._execute_step(task, samples, optimizer)
                    except NumericalAnomalyError as anomaly:
                        if self.stability is None:
                            raise
                        # The tape pinpointed the op; recovery goes through the
                        # guard so the event log names it.
                        self.stability.on_anomaly(self, task, anomaly)
                        intervened = True
                        loss, metrics = float("nan"), {}
                    if self.stability is not None and not intervened:
                        # The guard sees every completed step and decides
                        # whether optimizer.step may run.  Recovery policies
                        # mutate the trainer (LR, checkpoint restore) in here.
                        intervened = self.stability.guard_step(self, task, loss)
                    if intervened:
                        # The step is quarantined: drop its gradients and let
                        # the recovery policy's changes stand.  It still counts
                        # toward loop progress so max_steps bounds a sick run.
                        optimizer.zero_grad()
                    else:
                        with self._span("optim"):
                            if self.config.grad_clip_norm is not None:
                                clip_grad_norm(
                                    task.parameters(),
                                    self.config.grad_clip_norm,
                                    nonfinite=self.config.grad_clip_nonfinite,
                                )
                            optimizer.step()
                    self.global_step += 1
                    if self.recoveries > had_failure:
                        # The retried step completed: the run has recovered.
                        self._record(RECOVER)

                    if (
                        self.recovery is not None
                        and not intervened
                        and self.global_step % self.recovery.checkpoint_every_n_steps
                        == 0
                    ):
                        with self._span("checkpoint"):
                            self._save_recovery_point(task, epoch)

                if (
                    not intervened
                    and self.global_step % self.config.log_every_n_steps == 0
                ):
                    self.history.log(
                        self.global_step, epoch, "train", loss=loss, **metrics
                    )
                self._emit("on_step_end", task, self.global_step, loss, metrics)

                if (
                    val_loader is not None
                    and self.config.val_every_n_steps is not None
                    and self.global_step % self.config.val_every_n_steps == 0
                ):
                    self._run_validation(task, val_loader, epoch)

                if (
                    self.config.max_steps is not None
                    and self.global_step >= self.config.max_steps
                ):
                    self.should_stop = True
                if self.should_stop:
                    break

            if scheduler is not None:
                scheduler.step()
            if (
                val_loader is not None
                and self.config.val_every_n_steps is None
                and (epoch + 1) % self.config.val_every_n_epochs == 0
            ):
                self._run_validation(task, val_loader, epoch)
            self._emit("on_epoch_end", task, epoch)
            if self.should_stop:
                break

        self._emit("on_train_end", task)
        return self.history
