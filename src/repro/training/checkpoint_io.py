"""On-disk checkpointing: numpy-archive serialization of module state.

State dicts are flat ``{name: ndarray}`` maps, so ``.npz`` archives are a
natural, dependency-free container.  Optimizer state nests one level
(per-parameter moments) and is flattened with a ``/`` separator.

Integrity: every archive written here embeds a CRC32 over its sorted
contents (``__checksum__``).  Loading verifies the checksum — and wraps
container-level decode failures — so a corrupted checkpoint raises a
clear :class:`CheckpointIntegrityError` instead of silently restoring
wrong weights.  This is the contract the fault-tolerant trainer relies
on when it restores state after a failed step.

Full trainer snapshots (:func:`save_checkpoint`/:func:`load_checkpoint`)
bundle module + optimizer + loop position + run history in one directory,
which is what crash recovery restores.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
import zlib
from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.training.history import History


class CheckpointIntegrityError(RuntimeError):
    """The checkpoint on disk does not match what was written."""


# --------------------------------------------------------------------------- #
# Checksummed npz archives
# --------------------------------------------------------------------------- #
_CHECKSUM_KEY = "__checksum__"


def _state_checksum(state: Dict[str, np.ndarray]) -> int:
    """CRC32 over keys, dtypes, shapes, and raw bytes, in sorted key order."""
    crc = 0
    for key in sorted(state):
        arr = np.ascontiguousarray(state[key])
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.dtype).encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.shape).encode("utf-8"), crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return crc & 0xFFFFFFFF


def _save_npz(path: str, state: Dict[str, np.ndarray]) -> None:
    """Write a checksummed archive crash-safely: temp file + atomic rename.

    A writer dying mid-save must never leave a truncated archive at the
    final path — a reader would see a corrupt checkpoint where a good one
    (or none) should be.  ``np.savez`` appends ``.npz`` to bare paths, so
    the temp file is passed as an open handle, then renamed over the
    destination in one atomic step.
    """
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = dict(state)
    payload[_CHECKSUM_KEY] = np.uint32(_state_checksum(state))
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)


def _load_npz(path: str) -> Dict[str, np.ndarray]:
    try:
        with np.load(path) as data:
            state = {k: data[k].copy() for k in data.files if k != _CHECKSUM_KEY}
            stored = (
                int(data[_CHECKSUM_KEY]) if _CHECKSUM_KEY in data.files else None
            )
    except (
        OSError,
        ValueError,
        KeyError,
        EOFError,
        zlib.error,
        zipfile.BadZipFile,
        struct.error,
    ) as exc:
        raise CheckpointIntegrityError(
            f"checkpoint {path!r} is unreadable or corrupted: {exc}"
        ) from exc
    if stored is not None:
        actual = _state_checksum(state)
        if actual != stored:
            raise CheckpointIntegrityError(
                f"checkpoint {path!r} failed its integrity check "
                f"(stored CRC 0x{stored:08x}, recomputed 0x{actual:08x})"
            )
    return state


def verify_archive(path: str) -> Dict[str, object]:
    """Full integrity check of one checksummed archive, without a module.

    Decodes every array and recomputes the embedded CRC32 (the same check
    loading performs).  Returns ``{"arrays": N, "bytes": M}`` on success;
    raises :class:`CheckpointIntegrityError` on a missing, unreadable, or
    corrupted archive.  ``repro registry verify`` runs this over every
    servable so operators can audit a registry before pointing traffic
    at it.
    """
    state = _load_npz(path)
    return {
        "arrays": len(state),
        "bytes": int(sum(arr.nbytes for arr in state.values())),
    }


# --------------------------------------------------------------------------- #
# Module / optimizer archives
# --------------------------------------------------------------------------- #
def save_module(module: Module, path: str) -> None:
    """Write a module's parameters and buffers to ``path`` (.npz)."""
    _save_npz(path, module.state_dict())


def load_module(module: Module, path: str, strict: bool = True) -> Module:
    """Restore a module's state from ``path``; returns the module.

    Raises :class:`CheckpointIntegrityError` when the archive is corrupted.
    """
    module.load_state_dict(_load_npz(path), strict=strict)
    return module


def save_optimizer(optimizer: Optimizer, path: str) -> None:
    """Write optimizer hyper-state and per-parameter moments to ``path``."""
    state = optimizer.state_dict()
    flat: Dict[str, np.ndarray] = {
        "__lr__": np.float64(state["lr"]),
        "__step_count__": np.int64(state["step_count"]),
    }
    for param_idx, sub in state["state"].items():
        for name, arr in sub.items():
            flat[f"{param_idx}/{name}"] = arr
    _save_npz(path, flat)


def load_optimizer(optimizer: Optimizer, path: str) -> Optimizer:
    """Restore optimizer state written by :func:`save_optimizer`."""
    data = _load_npz(path)
    nested: Dict[int, Dict[str, np.ndarray]] = {}
    lr = float(data["__lr__"])
    step_count = int(data["__step_count__"])
    for key, arr in data.items():
        if key.startswith("__"):
            continue
        param_idx, name = key.split("/", 1)
        nested.setdefault(int(param_idx), {})[name] = arr.copy()
    optimizer.load_state_dict({"lr": lr, "step_count": step_count, "state": nested})
    return optimizer


# --------------------------------------------------------------------------- #
# Full trainer snapshots (crash recovery)
# --------------------------------------------------------------------------- #
def _collect_rng_states(module: Module) -> Dict[str, dict]:
    """Snapshot every submodule generator (e.g. dropout masks).

    Without this, a restored-and-retried step would redraw its dropout
    masks from a further-advanced stream and diverge from the healthy run.
    """
    states: Dict[str, dict] = {}
    for name, sub in module.named_modules():
        rng = getattr(sub, "rng", None)
        if isinstance(rng, np.random.Generator):
            states[name] = rng.bit_generator.state
    return states


def _restore_rng_states(module: Module, states: Dict[str, dict]) -> None:
    for name, sub in module.named_modules():
        if name in states:
            rng = getattr(sub, "rng", None)
            if isinstance(rng, np.random.Generator):
                rng.bit_generator.state = states[name]


def save_checkpoint(
    directory: str,
    module: Module,
    optimizer: Optimizer,
    step: int,
    epoch: int = 0,
    history: Optional[History] = None,
) -> str:
    """Write a complete recovery point under ``directory``; returns the path.

    Layout: ``model.npz`` + ``optim.npz`` (both checksummed) and
    ``meta.json`` holding loop position and the full history record list.
    """
    os.makedirs(directory, exist_ok=True)
    save_module(module, os.path.join(directory, "model.npz"))
    save_optimizer(optimizer, os.path.join(directory, "optim.npz"))
    meta = {
        "step": int(step),
        "epoch": int(epoch),
        "history": list(history.records) if history is not None else [],
        "rng": _collect_rng_states(module),
    }
    meta_path = os.path.join(directory, "meta.json")
    tmp_path = meta_path + ".tmp"
    with open(tmp_path, "w") as fh:
        json.dump(meta, fh)
    os.replace(tmp_path, meta_path)
    return directory


def load_checkpoint(
    directory: str,
    module: Module,
    optimizer: Optimizer,
    history: Optional[History] = None,
) -> Dict[str, int]:
    """Restore a recovery point written by :func:`save_checkpoint`.

    Restores module and optimizer state in place; when ``history`` is
    given, its records are replaced by the checkpointed ones so the run's
    loss history resumes exactly.  Returns ``{"step": ..., "epoch": ...}``.
    """
    load_module(module, os.path.join(directory, "model.npz"))
    load_optimizer(optimizer, os.path.join(directory, "optim.npz"))
    meta_path = os.path.join(directory, "meta.json")
    try:
        with open(meta_path) as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointIntegrityError(
            f"checkpoint metadata {meta_path!r} is unreadable: {exc}"
        ) from exc
    if history is not None:
        history.records = list(meta.get("history", []))
    _restore_rng_states(module, meta.get("rng", {}))
    return {"step": int(meta["step"]), "epoch": int(meta.get("epoch", 0))}
