"""On-disk checkpointing: numpy-archive serialization of module state.

State dicts are flat ``{name: ndarray}`` maps, so ``.npz`` archives are a
natural, dependency-free container.  Optimizer state nests one level
(per-parameter moments) and is flattened with a ``/`` separator.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizer import Optimizer


def save_module(module: Module, path: str) -> None:
    """Write a module's parameters and buffers to ``path`` (.npz)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **module.state_dict())


def load_module(module: Module, path: str, strict: bool = True) -> Module:
    """Restore a module's state from ``path``; returns the module."""
    with np.load(path) as data:
        state = {k: data[k].copy() for k in data.files}
    module.load_state_dict(state, strict=strict)
    return module


def save_optimizer(optimizer: Optimizer, path: str) -> None:
    """Write optimizer hyper-state and per-parameter moments to ``path``."""
    state = optimizer.state_dict()
    flat: Dict[str, np.ndarray] = {
        "__lr__": np.float64(state["lr"]),
        "__step_count__": np.int64(state["step_count"]),
    }
    for param_idx, sub in state["state"].items():
        for name, arr in sub.items():
            flat[f"{param_idx}/{name}"] = arr
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez(path, **flat)


def load_optimizer(optimizer: Optimizer, path: str) -> Optimizer:
    """Restore optimizer state written by :func:`save_optimizer`."""
    with np.load(path) as data:
        nested: Dict[int, Dict[str, np.ndarray]] = {}
        lr = float(data["__lr__"])
        step_count = int(data["__step_count__"])
        for key in data.files:
            if key.startswith("__"):
                continue
            param_idx, name = key.split("/", 1)
            nested.setdefault(int(param_idx), {})[name] = data[key].copy()
    optimizer.load_state_dict({"lr": lr, "step_count": step_count, "state": nested})
    return optimizer
