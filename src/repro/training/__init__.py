"""Training loop: the toolkit's Lightning-replacement.

``Trainer`` owns the epoch/step loop, validation cadence, callback
dispatch, and delegates batch execution to a distributed
:class:`repro.distributed.Strategy` — the same separation of concerns
PyTorch Lightning gives the original toolkit.
"""

from repro.training.history import History
from repro.training.metrics import Meter, mean_absolute_error, accuracy
from repro.training.callbacks import (
    Callback,
    EarlyStopping,
    FaultEventMonitor,
    ModelCheckpoint,
    LRMonitor,
    ProgressCallback,
    ThroughputMeter,
    SpikeDetector,
    GradientStatsMonitor,
)
from repro.training.trainer import RecoveryConfig, Trainer, TrainerConfig
from repro.training.finetune import transfer_encoder, finetune_lr
from repro.training.checkpoint_io import (
    CheckpointIntegrityError,
    load_checkpoint,
    save_checkpoint,
    save_module,
    load_module,
    save_optimizer,
    load_optimizer,
)

__all__ = [
    "History",
    "Meter",
    "mean_absolute_error",
    "accuracy",
    "Callback",
    "EarlyStopping",
    "FaultEventMonitor",
    "ModelCheckpoint",
    "LRMonitor",
    "ProgressCallback",
    "ThroughputMeter",
    "SpikeDetector",
    "GradientStatsMonitor",
    "RecoveryConfig",
    "Trainer",
    "TrainerConfig",
    "transfer_encoder",
    "finetune_lr",
    "CheckpointIntegrityError",
    "load_checkpoint",
    "save_checkpoint",
    "save_module",
    "load_module",
    "save_optimizer",
    "load_optimizer",
]
