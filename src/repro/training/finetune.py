"""Fine-tuning utilities: the pretrain -> downstream hinge.

Implements the paper's recipe (Sec. 4.2): transplant the pretrained
encoder into a fresh task (heads stay randomly initialized) and scale the
base learning rate down by 10x to mitigate catastrophic forgetting.
"""

from __future__ import annotations

from repro.tasks.base import Task

#: The paper's fine-tuning learning-rate divisor.
FINETUNE_LR_DIVISOR = 10.0


def finetune_lr(base_lr: float, divisor: float = FINETUNE_LR_DIVISOR) -> float:
    """Scaled-down fine-tuning learning rate (eta_base / 10)."""
    if divisor <= 0:
        raise ValueError("divisor must be positive")
    return base_lr / divisor


def transfer_encoder(source: Task, target: Task, freeze: bool = False) -> Task:
    """Copy the encoder weights of ``source`` into ``target``.

    ``freeze=True`` additionally stops gradient flow into the encoder —
    the linear-probe ablation.  Returns ``target`` for chaining.
    """
    target.load_encoder_state(source.encoder_state())
    if freeze:
        target.encoder.requires_grad_(False)
    return target
