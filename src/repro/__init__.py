"""repro — a from-scratch reproduction of the Open MatSci ML Toolkit (SC 2023).

The package is layered bottom-up:

* :mod:`repro.autograd`, :mod:`repro.nn`, :mod:`repro.optim` — the deep
  learning substrate (PyTorch replacement).
* :mod:`repro.distributed` — simulated MPI collectives, DDP strategy, and the
  cluster performance model behind the scale-out study.
* :mod:`repro.geometry`, :mod:`repro.datasets`, :mod:`repro.data` — symmetry
  operations, synthetic/surrogate materials datasets, loaders & transforms.
* :mod:`repro.models`, :mod:`repro.tasks`, :mod:`repro.training` — encoders
  (E(n)-GNN, geometric-algebra attention), task heads, and the Lightning-like
  trainer.
* :mod:`repro.analysis` — UMAP-lite and dataset-exploration tooling.
* :mod:`repro.core` — the toolkit composition layer (Fig. 1 of the paper):
  registry, pipeline, pretrain/fine-tune workflows.
"""

__version__ = "1.0.0"

from repro.utils import seed_everything, spawn_rngs

__all__ = ["seed_everything", "spawn_rngs", "__version__"]
