"""Reference compositions of the fused kernels.

Each function builds the op out of :mod:`repro.autograd` primitives exactly
as the model code did before the dispatch layer existed — one tape node per
elementary op.  This is the ``REPRO_FUSED=0`` path and the equivalence
oracle for ``tests/test_kernels_fused.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor

_LOG2 = float(np.log(2.0))

_ACTS = {
    "identity": lambda t: t,
    "silu": F.silu,
    "selu": F.selu,
    "relu": F.relu,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "softplus": F.softplus,
    "shifted_softplus": lambda t: F.softplus(t) - _LOG2,
}


def linear_act(
    x: Tensor, weight: Tensor, bias: Optional[Tensor], act: Optional[str] = None
) -> Tensor:
    """Reference ``act(x @ W + b)``: matmul, bias add, activation nodes."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return _ACTS[act or "identity"](out)


def rms_norm(x: Tensor, weight: Tensor, eps: float) -> Tensor:
    """Reference RMSNorm composition (seven tape nodes)."""
    ms = (x * x).mean(axis=-1, keepdims=True)
    rms = F.sqrt(ms + eps)
    return x / rms * weight


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float) -> Tensor:
    """Reference LayerNorm composition."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normed = centered / F.sqrt(var + eps)
    return normed * weight + bias


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Reference mean cross-entropy via ``F.cross_entropy``."""
    return F.cross_entropy(logits, targets)


def gather_diff(x: Tensor, src: np.ndarray, dst: np.ndarray) -> Tensor:
    """Reference per-edge difference: two gathers and a subtract."""
    return F.index_select(x, src) - F.index_select(x, dst)


def row_sq_norm(t: Tensor) -> Tensor:
    """Reference squared row norm: multiply then reduce."""
    return (t * t).sum(axis=-1, keepdims=True)


def mul_segment_sum(
    a: Tensor, b: Tensor, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """Reference modulated aggregation: multiply then segment-sum."""
    return F.segment_sum(a * b, segment_ids, num_segments)


def index_select(x: Tensor, index: np.ndarray) -> Tensor:
    """Reference row gather (``np.add.at`` scatter backward)."""
    return F.index_select(x, index)


def gather_pair_concat(h: Tensor, src: np.ndarray, dst: np.ndarray, tails) -> Tensor:
    """Reference message assembly: two gathers and a concat."""
    return F.concat(
        [F.index_select(h, src), F.index_select(h, dst), *tails], axis=1
    )


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Reference segment reduction (``np.add.at`` forward)."""
    return F.segment_sum(x, segment_ids, num_segments)


def lstm_cell(
    x: Tensor, h: Tensor, c: Tensor, w_x: Tensor, w_h: Tensor, b: Tensor
) -> Tensor:
    """Reference LSTM cell: one step of gated state update (~16 tape nodes).

    Gate pre-activations are ``x @ w_x + h @ w_h + b`` with the i/f/g/o
    layout along columns (input, forget, candidate, output — each ``d``
    wide, ``d = h.shape[1]``).  Returns ``concat([h', c'], axis=1)`` so the
    cell is a single tape node output in the fused path; callers slice the
    halves apart.
    """
    d = h.shape[1]
    gates = x @ w_x + h @ w_h + b
    i = F.sigmoid(gates[:, :d])
    f = F.sigmoid(gates[:, d : 2 * d])
    g = F.tanh(gates[:, 2 * d : 3 * d])
    o = F.sigmoid(gates[:, 3 * d :])
    c_next = f * c + i * g
    h_next = o * F.tanh(c_next)
    return F.concat([h_next, c_next], axis=1)
