"""Fused-kernel dispatch layer.

Hot composite ops — linear+bias+activation, softmax cross-entropy, the
normalization layers, the GNN gather/scatter chains, and the Adam update —
each exist twice in this codebase:

* a **reference** composition out of :mod:`repro.autograd` primitives
  (one tape node per elementary op), and
* a **fused** kernel that computes the same forward in one shot and
  registers a single tape node with a hand-written backward.

The fused kernels are bit-identical to the reference compositions: they
replay the exact numpy expression sequences and the exact per-tensor
gradient accumulation order of the reference tape, so the golden-metrics
tests hold at 1e-9 with either path.  ``REPRO_FUSED=0`` (or
:func:`set_fused` / :func:`use_fused`) selects the reference path.
"""

from repro.kernels.dispatch import (
    activation_key,
    fused_enabled,
    gather_diff,
    gather_pair_concat,
    index_select,
    layer_norm,
    linear_act,
    mul_segment_sum,
    rms_norm,
    row_sq_norm,
    segment_sum,
    set_fused,
    softmax_cross_entropy,
    use_fused,
)

__all__ = [
    "activation_key",
    "fused_enabled",
    "gather_diff",
    "gather_pair_concat",
    "index_select",
    "layer_norm",
    "linear_act",
    "mul_segment_sum",
    "rms_norm",
    "row_sq_norm",
    "segment_sum",
    "set_fused",
    "softmax_cross_entropy",
    "use_fused",
]
