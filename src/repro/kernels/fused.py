"""Fused autograd kernels: one tape node per composite op.

Bit-identity contract
---------------------
Every kernel here must produce forward values AND leaf gradients that are
bitwise equal to the reference composition in
:mod:`repro.kernels.reference`.  Two facts about the reference tape make
this achievable:

* each elementary op's backward closure computes its gradient with a fixed
  numpy expression — replaying the same expressions in the same order gives
  the same bits;
* ``Tensor._accumulate`` copies the first contribution and ``+=``s the
  rest, and IEEE-754 addition/multiplication are commutative, so only the
  *order of contributions into the same tensor* matters, which each fused
  backward preserves.

The parent tuples passed to ``Tensor._make`` are ordered so the iterative
DFS in ``Tensor.backward`` explores subgraphs in the same order as it would
for the reference chain (parents are pushed in order and popped reversed).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import importlib

_tensor_core = importlib.import_module("repro.autograd.tensor")
from repro.autograd.tensor import Tensor, stable_matmul

_SELU_ALPHA = 1.6732632423543772
_SELU_SCALE = 1.0507009873554805
_LOG2 = float(np.log(2.0))


# --------------------------------------------------------------------------- #
# Activation table: key -> (forward, backward).  forward(z) returns
# (out, ctx); backward(g, z, ctx) returns the gradient w.r.t. z.  The
# formulas mirror repro.autograd.functional exactly.
# --------------------------------------------------------------------------- #
def _identity_fwd(z):
    return z, None


def _identity_bwd(g, z, ctx):
    return g


def _silu_fwd(z):
    # Same IEEE op sequence as 1.0 / (1.0 + exp(-clip(z))) with in-place
    # ufuncs: on a memory-bound host the five avoided temporaries are the
    # dominant cost of the activation.
    sig = np.clip(z, -500, 500)
    np.negative(sig, out=sig)
    np.exp(sig, out=sig)
    sig += 1.0
    np.divide(1.0, sig, out=sig)
    return z * sig, sig


def _silu_bwd(g, z, sig):
    # g * (sig + out * (1 - sig)) rearranged only by commutativity, so the
    # bits match the reference backward exactly.
    out = z * sig
    u = 1.0 - sig
    u *= out
    u += sig
    u *= g
    return u


def _selu_fwd(z):
    pos = z > 0
    expx = np.exp(np.clip(z, -500, 0))
    out = _SELU_SCALE * np.where(pos, z, _SELU_ALPHA * (expx - 1.0))
    return out, (pos, expx)


def _selu_bwd(g, z, ctx):
    pos, expx = ctx
    return g * (_SELU_SCALE * np.where(pos, 1.0, _SELU_ALPHA * expx))


def _relu_fwd(z):
    mask = z > 0
    return z * mask, mask


def _relu_bwd(g, z, mask):
    return g * mask


def _tanh_fwd(z):
    out = np.tanh(z)
    return out, out


def _tanh_bwd(g, z, out):
    return g * (1.0 - out * out)


def _sigmoid_fwd(z):
    out = np.where(
        z >= 0,
        1.0 / (1.0 + np.exp(-np.clip(z, -500, 500))),
        np.exp(np.clip(z, -500, 500)) / (1.0 + np.exp(np.clip(z, -500, 500))),
    )
    return out, out


def _sigmoid_bwd(g, z, out):
    return g * out * (1.0 - out)


def _softplus_fwd(z):
    sig = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
    return np.logaddexp(0.0, z), sig


def _softplus_bwd(g, z, sig):
    return g * sig


def _shifted_softplus_fwd(z):
    sig = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
    return np.logaddexp(0.0, z) - _LOG2, sig


ACTIVATIONS = {
    "identity": (_identity_fwd, _identity_bwd),
    "silu": (_silu_fwd, _silu_bwd),
    "selu": (_selu_fwd, _selu_bwd),
    "relu": (_relu_fwd, _relu_bwd),
    "tanh": (_tanh_fwd, _tanh_bwd),
    "sigmoid": (_sigmoid_fwd, _sigmoid_bwd),
    "softplus": (_softplus_fwd, _softplus_bwd),
    "shifted_softplus": (_shifted_softplus_fwd, _softplus_bwd),
}


# --------------------------------------------------------------------------- #
# Scatter-add via flat bincount
# --------------------------------------------------------------------------- #
def _scatter_rows(index: np.ndarray, values: np.ndarray, num_rows: int) -> np.ndarray:
    """Row scatter-add, bitwise equal to ``np.add.at(zeros, index, values)``.

    ``np.bincount`` accumulates its weights in input order — the same
    element order ``np.add.at`` uses — so sums over duplicate indices agree
    bitwise, while skipping the buffered fancy-indexing machinery that
    makes ``np.add.at`` several times slower.
    """
    if values.ndim == 1:
        return np.bincount(index, weights=values, minlength=num_rows).astype(
            np.float64
        )
    d = values.shape[1]
    flat = (index[:, None] * d + np.arange(d, dtype=np.int64)[None, :]).ravel()
    out = np.bincount(flat, weights=values.ravel(), minlength=num_rows * d)
    return out.reshape(num_rows, d)


# --------------------------------------------------------------------------- #
# Fused ops
# --------------------------------------------------------------------------- #
def linear_act(
    x: Tensor, weight: Tensor, bias: Optional[Tensor], act: Optional[str] = None
) -> Tensor:
    """``act(x @ W + b)`` as a single tape node.

    Replaces up to three nodes (matmul, bias add, activation).  The leaf
    accumulation order of the reference chain — bias, then x, then W — is
    preserved, and the matmul gradients use the identical
    ``swapaxes``-based GEMM expressions.
    """
    act_fwd, act_bwd = ACTIVATIONS[act or "identity"]
    x_data, w_data = x.data, weight.data
    z = stable_matmul(x_data, w_data)
    if bias is not None:
        z += bias.data  # in-place on the fresh GEMM result, same bits
    out_data, ctx = act_fwd(z)

    def backward(g: np.ndarray) -> None:
        gz = act_bwd(g, z, ctx)
        if bias is not None:
            bias._accumulate(gz)
        x._accumulate_owned(stable_matmul(gz, np.swapaxes(w_data, -1, -2)))
        weight._accumulate_owned(stable_matmul(np.swapaxes(x_data, -1, -2), gz))

    parents = (x, weight) if bias is None else (x, weight, bias)
    # Tape-export annotations: the activation key is not recoverable from the
    # backward closure (softplus and shifted_softplus share one backward),
    # and ``owns_buffers`` declares that this backward reads buffers mutated
    # in place during the forward (``z`` above carries the bias add; for the
    # identity activation the *output* aliases ``z``) — the memory planner
    # must never recycle this node's output into the buffer arena.
    meta = None
    if _tensor_core._RECORDER is not None:
        meta = {"act": act or "identity", "owns_buffers": True}
    return Tensor._make(out_data, parents, backward, meta)


def rms_norm(x: Tensor, weight: Tensor, eps: float) -> Tensor:
    """``x / rms(x) * w`` as a single tape node (seven in the reference)."""
    x_data, w_data = x.data, weight.data
    inv_d = np.asarray(1.0 / x_data.shape[-1], dtype=np.float64)
    ms = (x_data * x_data).sum(axis=-1, keepdims=True) * inv_d
    rms = np.sqrt(ms + eps)
    xon = x_data / rms
    out_data = xon * w_data

    def backward(g: np.ndarray) -> None:
        # Reference firing order: out-mul, div, sqrt, +eps, mean-mul, sum,
        # x*x.  Contributions into x: div path first, then x*x twice.
        g7 = g * w_data
        x._accumulate_owned(g7 / rms)
        weight._accumulate_owned(g * xon)
        g6 = (-g7 * x_data / (rms * rms)).sum(axis=-1, keepdims=True)
        g5 = g6 * 0.5 / rms
        g3 = g5 * inv_d
        gb = np.broadcast_to(g3, x_data.shape)
        t = gb * x_data
        x._accumulate(t)
        x._accumulate(t)

    meta = None
    if _tensor_core._RECORDER is not None:
        meta = {"eps": eps, "owns_buffers": True}
    return Tensor._make(out_data, (x, weight), backward, meta)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float) -> Tensor:
    """``(x - mu) / sqrt(var + eps) * w + b`` as a single tape node."""
    x_data, w_data = x.data, weight.data
    inv_d = np.asarray(1.0 / x_data.shape[-1], dtype=np.float64)
    mu = x_data.sum(axis=-1, keepdims=True) * inv_d
    centered = x_data - mu
    var = (centered * centered).sum(axis=-1, keepdims=True) * inv_d
    sd = np.sqrt(var + eps)
    normed = centered / sd
    out_data = normed * w_data + bias.data

    def backward(g: np.ndarray) -> None:
        bias._accumulate(g)
        g9 = g * w_data
        weight._accumulate_owned(g * normed)
        # Gradient into `centered`: div path plus twice the var path (the
        # reference computes centered*centered with both operands the same
        # tensor, so its backward fires two identical contributions).
        G = g9 / sd
        g8 = (-g9 * centered / (sd * sd)).sum(axis=-1, keepdims=True)
        g7 = g8 * 0.5 / sd
        g5 = g7 * inv_d
        gb = np.broadcast_to(g5, x_data.shape)
        t = gb * centered
        G += t
        G += t
        x._accumulate_owned(G)
        gmu = (-G).sum(axis=-1, keepdims=True)
        x._accumulate(np.broadcast_to(gmu * inv_d, x_data.shape))

    meta = None
    if _tensor_core._RECORDER is not None:
        meta = {"eps": eps, "owns_buffers": True}
    return Tensor._make(out_data, (x, weight, bias), backward, meta)


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean multiclass cross-entropy as a single tape node.

    Replaces the log-softmax / gather / mean / negate chain of
    ``F.cross_entropy``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    z = logits.data
    n = z.shape[0]
    inv_n = np.asarray(1.0 / n, dtype=np.float64)
    shifted = z - z.max(axis=-1, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - logsum
    idx = np.arange(n)
    loss = -(logp[idx, targets].sum() * inv_n)
    soft = np.exp(logp)

    def backward(g: np.ndarray) -> None:
        gs = (-g) * inv_n
        gb = np.broadcast_to(gs, (n,))
        full = np.zeros(z.shape, dtype=np.float64)
        np.add.at(full, (idx, targets), gb)
        logits._accumulate_owned(full - soft * full.sum(axis=-1, keepdims=True))

    return Tensor._make(loss, (logits,), backward)


def gather_diff(x: Tensor, src: np.ndarray, dst: np.ndarray) -> Tensor:
    """Per-edge difference ``x[src] - x[dst]`` as a single tape node.

    The reference chain fires the src-gather scatter before the dst-gather
    scatter; both contributions into x are replayed in that order.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    x_data = x.data
    out_data = x_data[src] - x_data[dst]
    shape = x_data.shape

    def backward(g: np.ndarray) -> None:
        x._accumulate_owned(_scatter_rows(src, g, shape[0]))
        x._accumulate_owned(_scatter_rows(dst, -g, shape[0]))

    return Tensor._make(out_data, (x,), backward)


def row_sq_norm(t: Tensor) -> Tensor:
    """``(t * t).sum(axis=-1, keepdims=True)`` as a single tape node."""
    t_data = t.data
    out_data = (t_data * t_data).sum(axis=-1, keepdims=True)

    def backward(g: np.ndarray) -> None:
        gb = np.broadcast_to(g, t_data.shape)
        contrib = gb * t_data
        t._accumulate(contrib)
        t._accumulate(contrib)

    return Tensor._make(out_data, (t,), backward)


def gather_pair_concat(h: Tensor, src: np.ndarray, dst: np.ndarray, tails) -> Tensor:
    """``concat([h[src], h[dst], *tails], axis=1)`` as a single tape node.

    The GNN message-input assembly: two row gathers of the same node table
    plus per-edge feature columns, written straight into one output buffer
    (the reference chain materializes both gathers and then copies them
    again in concat).  Backward replays the reference contribution order:
    src scatter into ``h``, then dst scatter, then the tail slices.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    h_data = h.data
    num_rows, hw = h_data.shape
    tail_data = [t.data for t in tails]
    total = 2 * hw + sum(t.shape[1] for t in tail_data)
    out_data = np.empty((len(src), total), dtype=np.float64)
    out_data[:, :hw] = h_data[src]
    out_data[:, hw : 2 * hw] = h_data[dst]
    spans = []
    offset = 2 * hw
    for t in tail_data:
        width = t.shape[1]
        out_data[:, offset : offset + width] = t
        spans.append((offset, offset + width))
        offset += width

    def backward(g: np.ndarray) -> None:
        h._accumulate_owned(_scatter_rows(src, g[:, :hw], num_rows))
        h._accumulate_owned(_scatter_rows(dst, g[:, hw : 2 * hw], num_rows))
        for t, (start, stop) in zip(tails, spans):
            t._accumulate(g[:, start:stop])

    return Tensor._make(out_data, (h, *tails), backward)


def index_select(x: Tensor, index: np.ndarray) -> Tensor:
    """Row gather whose backward scatters through the bincount kernel.

    Forward and node structure match ``F.index_select``; only the
    scatter-add implementation differs (bitwise-equal, faster).
    """
    index = np.asarray(index, dtype=np.int64)
    x_data = x.data
    out_data = x_data[index]
    num_rows = x_data.shape[0]

    def backward(g: np.ndarray) -> None:
        x._accumulate_owned(_scatter_rows(index, g, num_rows))

    return Tensor._make(out_data, (x,), backward)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Segment reduction with the bincount scatter kernel in the forward.

    The backward is the same gather ``g[segment_ids]`` the reference uses.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    x_data = x.data
    out_data = _scatter_rows(segment_ids, x_data, num_segments)

    def backward(g: np.ndarray) -> None:
        x._accumulate_owned(g[segment_ids])

    return Tensor._make(out_data, (x,), backward)


def lstm_cell(
    x: Tensor, h: Tensor, c: Tensor, w_x: Tensor, w_h: Tensor, b: Tensor
) -> Tensor:
    """One LSTM step as a single tape node (~16 in the reference).

    Output is ``concat([h', c'], axis=1)``; the i/f/g/o gate layout matches
    the reference composition.  The backward replays the reference chain's
    firing order — concat slices, the o/tanh(c') product, the cell update,
    then one gate-gradient scatter per slice into the pre-activation buffer
    before the three GEMM backwards — so every leaf gradient is bitwise
    equal to the ``REPRO_FUSED=0`` tape.
    """
    d = h.data.shape[1]
    x_data, h_data, c_data = x.data, h.data, c.data
    wx_data, wh_data = w_x.data, w_h.data
    z = stable_matmul(x_data, wx_data)
    z = z + stable_matmul(h_data, wh_data)
    z += b.data  # in-place on the fresh sum, same bits as the reference add
    i_out = _sigmoid_fwd(z[:, :d])[0]
    f_out = _sigmoid_fwd(z[:, d : 2 * d])[0]
    g_out = np.tanh(z[:, 2 * d : 3 * d])
    o_out = _sigmoid_fwd(z[:, 3 * d :])[0]
    c_next = f_out * c_data + i_out * g_out
    t_out = np.tanh(c_next)
    h_next = o_out * t_out
    out_data = np.concatenate([h_next, c_next], axis=1)

    def backward(g: np.ndarray) -> None:
        gh = g[:, :d]
        gc = g[:, d : 2 * d].copy()
        gc += gh * o_out * (1.0 - t_out * t_out)
        dgates = np.zeros((g.shape[0], 4 * d), dtype=np.float64)
        dgates[:, 3 * d :] = gh * t_out * o_out * (1.0 - o_out)
        dgates[:, d : 2 * d] = gc * c_data * f_out * (1.0 - f_out)
        dgates[:, : d] = gc * g_out * i_out * (1.0 - i_out)
        dgates[:, 2 * d : 3 * d] = gc * i_out * (1.0 - g_out * g_out)
        # The reference accumulates four zero-filled scatters into the gate
        # buffer; the zero additions fold any -0.0 slice values to +0.0,
        # which direct slice assignment alone would not.
        dgates += 0.0
        c._accumulate_owned(gc * f_out)
        b._accumulate(dgates)
        x._accumulate_owned(stable_matmul(dgates, np.swapaxes(wx_data, -1, -2)))
        w_x._accumulate_owned(stable_matmul(np.swapaxes(x_data, -1, -2), dgates))
        h._accumulate_owned(stable_matmul(dgates, np.swapaxes(wh_data, -1, -2)))
        w_h._accumulate_owned(stable_matmul(np.swapaxes(h_data, -1, -2), dgates))

    return Tensor._make(out_data, (x, h, c, w_x, w_h, b), backward)


def mul_segment_sum(
    a: Tensor, b: Tensor, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """``segment_sum(a * b)`` — message modulation + aggregation in one node."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    a_data, b_data = a.data, b.data
    msg = a_data * b_data
    out_data = _scatter_rows(segment_ids, msg, num_segments)

    def backward(g: np.ndarray) -> None:
        gm = g[segment_ids]
        a._accumulate_owned(gm * b_data)
        b._accumulate_owned(gm * a_data)

    return Tensor._make(out_data, (a, b), backward)
