"""Graph-rewrite patterns onto the fused kernels.

The tape compiler (``repro.compiler``) records a training step as a graph
and rewrites multi-node reference compositions onto the single-node fused
kernels from :mod:`repro.kernels.fused` — the same substitutions
:mod:`repro.kernels.dispatch` performs at call time when ``REPRO_FUSED``
is on, but applied *after the fact* to an already-recorded tape.  This is
what lets a ``REPRO_FUSED=0`` trace still replay through fused kernels.

Each matcher is invoked with a candidate *root* slot (the pattern's last
node, whose slot and output tensor the replacement inherits) and a
:class:`GraphView` of the optimized graph.  A match must prove:

* the op chain is structurally exact (ops, arities, recorded constants);
* every interior node is consumed only inside the pattern and is not
  *protected* (the loss, a task output, or a pinned dropout node);
* the fused kernel's dispatch contract holds (e.g. 2-D logits for
  ``softmax_cross_entropy``).

Equivalence story: ``tests/test_kernels_fused.py`` pins every fused
kernel bitwise against its reference composition (forward and leaf
gradients, both dispatch modes).  What the tests cannot pin — gradient
*accumulation order* into leaves shared with ops outside the pattern —
is gated by the compiler's trace-time validation replay, which discards
any plan whose gradients are not bit-identical to the eager step.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.compiler.recorder import TapeNode

_T = "repro.autograd.tensor"
_F = "repro.autograd.functional"
_K = "repro.kernels.fused"

#: Activation nodes that can cap a linear_act pattern.
_ACT_OPS = {
    (_F, "silu"): "silu",
    (_F, "selu"): "selu",
    (_F, "relu"): "relu",
    (_F, "tanh"): "tanh",
    (_F, "sigmoid"): "sigmoid",
    (_F, "softplus"): "softplus",
}


class Rewrite:
    """A matched pattern: member slots to subsume and the synthetic node."""

    __slots__ = ("members", "node")

    def __init__(self, members: Set[int], node: TapeNode):
        self.members = members
        self.node = node


def _synthetic(root: TapeNode, name: str, parents, fv, meta) -> TapeNode:
    return TapeNode(
        root.slot, (_K, name), tuple(parents), fv, meta, root.out, root.requires_grad
    )


def _interior_ok(g, members: Set[int]) -> bool:
    """Interior members (all but the root, which is max(members)) must be
    consumed only inside the pattern and must not be protected."""
    root = max(members)
    for slot in members:
        if slot == root:
            continue
        if g.protected(slot):
            return False
        if any(c not in members for c in g.consumers_of(slot)):
            return False
    return True


def _scalar(value) -> Optional[float]:
    arr = np.asarray(value)
    if arr.size != 1:
        return None
    return float(arr.reshape(()))


# --------------------------------------------------------------------------- #
# linear_act: act(x @ W + b)
# --------------------------------------------------------------------------- #
def match_linear_act(root_slot: int, g) -> Optional[Rewrite]:
    """Match matmul(+bias)(+activation) chains onto the fused ``linear_act``."""
    root = g.node(root_slot)
    if root is None:
        return None
    act = _ACT_OPS.get(root.op)
    if act is not None:
        if len(root.parents) != 1:
            return None
        inner_slot = g.parents(root)[0]
        members = {root_slot}
    elif root.op == (_T, "Tensor.__add__") and len(root.parents) == 2:
        act, inner_slot, members = "identity", root_slot, set()
    else:
        return None

    inner = g.node(inner_slot)
    if inner is None:
        return None
    if inner.op == (_T, "Tensor.__add__") and len(inner.parents) == 2:
        mm_slot, bias_slot = g.parents(inner)
        members |= {root_slot, inner_slot}
    elif inner.op == (_T, "Tensor.__matmul__") and act != "identity":
        mm_slot, bias_slot = inner_slot, None
        members |= {root_slot}
    else:
        return None

    mm = g.node(mm_slot)
    if mm is None or mm.op != (_T, "Tensor.__matmul__") or len(mm.parents) != 2:
        return None
    x_slot, w_slot = g.parents(mm)
    if g.ndim(x_slot) < 2 or g.ndim(w_slot) != 2:
        return None
    if bias_slot is not None and g.shape(bias_slot) != (g.shape(w_slot)[1],):
        return None
    members.add(mm_slot)
    if not _interior_ok(g, members):
        return None
    parents = (x_slot, w_slot) if bias_slot is None else (x_slot, w_slot, bias_slot)
    meta = {"act": act, "owns_buffers": True}
    return Rewrite(members, _synthetic(root, "linear_act", parents, {}, meta))


# --------------------------------------------------------------------------- #
# softmax_cross_entropy: -(log_softmax(z)[arange(n), y].sum() * (1/n))
# --------------------------------------------------------------------------- #
def match_softmax_cross_entropy(root_slot: int, g) -> Optional[Rewrite]:
    """Match the log-softmax NLL composition onto ``softmax_cross_entropy``."""
    root = g.node(root_slot)
    if root is None or root.op != (_T, "Tensor.__neg__"):
        return None
    mul_slot = g.parents(root)[0]
    mul = g.node(mul_slot)
    if mul is None or mul.op != (_T, "Tensor.__mul__") or len(mul.parents) != 1:
        return None
    inv_n = _scalar(mul.fv.get("other_a"))
    if inv_n is None:
        return None
    sum_slot = g.parents(mul)[0]
    s = g.node(sum_slot)
    if (
        s is None
        or s.op != (_T, "Tensor.sum")
        or s.fv.get("axis") is not None
        or s.fv.get("keepdims")
    ):
        return None
    pick_slot = g.parents(s)[0]
    pick = g.node(pick_slot)
    if pick is None or pick.op != (_T, "Tensor.__getitem__"):
        return None
    index = pick.fv.get("index")
    if (
        not isinstance(index, tuple)
        or len(index) != 2
        or not all(
            isinstance(i, np.ndarray) and np.issubdtype(i.dtype, np.integer)
            for i in index
        )
    ):
        return None
    lsm_slot = g.parents(pick)[0]
    lsm = g.node(lsm_slot)
    if lsm is None or lsm.op != (_F, "log_softmax"):
        return None
    logits_slot = g.parents(lsm)[0]
    shape = g.shape(logits_slot)
    if len(shape) != 2 or shape[0] == 0:
        return None
    n = shape[0]
    axis = lsm.fv.get("axis")
    if axis not in (-1, 1):
        return None
    rows, targets = index
    if inv_n != 1.0 / n or rows.shape != (n,) or not np.array_equal(
        rows, np.arange(n)
    ):
        return None
    members = {root_slot, mul_slot, sum_slot, pick_slot, lsm_slot}
    if not _interior_ok(g, members):
        return None
    node = _synthetic(
        root, "softmax_cross_entropy", (logits_slot,), {"targets": targets}, None
    )
    return Rewrite(members, node)


# --------------------------------------------------------------------------- #
# rms_norm: x / sqrt((x*x).mean(-1, keepdims=True) + eps) * w
# --------------------------------------------------------------------------- #
def match_rms_norm(root_slot: int, g) -> Optional[Rewrite]:
    """Match the mean-square/rsqrt normalization chain onto ``rms_norm``."""
    root = g.node(root_slot)
    if root is None or root.op != (_T, "Tensor.__mul__") or len(root.parents) != 2:
        return None
    div_slot, w_slot = g.parents(root)
    div = g.node(div_slot)
    if div is None or div.op != (_T, "Tensor.__truediv__") or len(div.parents) != 2:
        return None
    x_slot, sqrt_slot = g.parents(div)
    sqrt = g.node(sqrt_slot)
    if sqrt is None or sqrt.op != (_F, "sqrt"):
        return None
    addc_slot = g.parents(sqrt)[0]
    addc = g.node(addc_slot)
    if addc is None or addc.op != (_T, "Tensor.__add__") or len(addc.parents) != 1:
        return None
    eps = _scalar((addc.meta or {}).get("const"))
    if eps is None:
        return None
    mulc_slot = g.parents(addc)[0]
    mulc = g.node(mulc_slot)
    if mulc is None or mulc.op != (_T, "Tensor.__mul__") or len(mulc.parents) != 1:
        return None
    inv_d = _scalar(mulc.fv.get("other_a"))
    sum_slot = g.parents(mulc)[0]
    s = g.node(sum_slot)
    if (
        s is None
        or s.op != (_T, "Tensor.sum")
        or s.fv.get("axis") != -1
        or not s.fv.get("keepdims")
    ):
        return None
    sq_slot = g.parents(s)[0]
    sq = g.node(sq_slot)
    if (
        sq is None
        or sq.op != (_T, "Tensor.__mul__")
        or g.parents(sq) != (x_slot, x_slot)
    ):
        return None
    shape = g.shape(x_slot)
    if not shape or inv_d != 1.0 / shape[-1] or g.shape(w_slot) != (shape[-1],):
        return None
    members = {root_slot, div_slot, sqrt_slot, addc_slot, mulc_slot, sum_slot, sq_slot}
    if not _interior_ok(g, members):
        return None
    meta = {"eps": eps, "owns_buffers": True}
    return Rewrite(members, _synthetic(root, "rms_norm", (x_slot, w_slot), {}, meta))


# --------------------------------------------------------------------------- #
# 1:1 swaps: reference gather/scatter primitives onto their fused twins
# --------------------------------------------------------------------------- #
def match_index_select(root_slot: int, g) -> Optional[Rewrite]:
    """Route reference ``index_select`` nodes through the fused gather kernel."""
    root = g.node(root_slot)
    if root is None or root.op != (_F, "index_select"):
        return None
    if g.ndim(g.parents(root)[0]) > 2:  # fused contract: row-flat scatter
        return None
    index = root.fv.get("index")
    if not isinstance(index, np.ndarray):
        return None
    node = _synthetic(
        root, "index_select", (g.parents(root)[0],), {"index": index}, None
    )
    return Rewrite({root_slot}, node)


def match_segment_sum(root_slot: int, g) -> Optional[Rewrite]:
    """Route reference ``segment_sum`` nodes through the bincount scatter kernel."""
    root = g.node(root_slot)
    if root is None or root.op != (_F, "segment_sum"):
        return None
    if g.ndim(g.parents(root)[0]) > 2:
        return None
    segment_ids = root.fv.get("segment_ids")
    if not isinstance(segment_ids, np.ndarray):
        return None
    node = _synthetic(
        root,
        "segment_sum",
        (g.parents(root)[0],),
        {"segment_ids": segment_ids},
        None,
    )
    return Rewrite({root_slot}, node)


#: Match order per root: multi-node chains first, then 1:1 swaps.
PATTERNS: List = [
    match_linear_act,
    match_softmax_cross_entropy,
    match_rms_norm,
    match_index_select,
    match_segment_sum,
]
