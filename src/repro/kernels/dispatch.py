"""Kernel selection: fused tape nodes vs reference compositions.

The switch is process-global.  ``REPRO_FUSED`` in the environment sets the
initial state (default: enabled; ``0``/``false``/``off``/``no`` disable);
:func:`set_fused` and the :func:`use_fused` context manager override it at
runtime, which is how the equivalence tests and benchmarks pit the two
paths against each other in one process.

Dispatch rules (documented in DESIGN.md §10):

* a fused kernel is used only when fusion is enabled AND the call site's
  operands satisfy the kernel's shape contract (noted per function below);
* otherwise the call falls through to the reference composition, which is
  always valid — dispatch never changes semantics, only tape granularity.
"""

from __future__ import annotations

import contextlib
import os
from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.kernels import fused, reference

_FALSY = {"0", "false", "off", "no"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_FUSED", "1").strip().lower() not in _FALSY


_FUSED = _env_enabled()


def fused_enabled() -> bool:
    """Whether fused kernels are currently selected."""
    return _FUSED


def set_fused(enabled: bool) -> bool:
    """Set the global fused flag; returns the previous value."""
    global _FUSED
    previous = _FUSED
    _FUSED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_fused(enabled: bool = True):
    """Scoped override of the fused flag."""
    previous = set_fused(enabled)
    try:
        yield
    finally:
        set_fused(previous)


#: Activation-module class name -> fused activation key.  Keyed by name so
#: this module never imports repro.nn (which imports us).
_ACT_KEYS = {
    "SiLU": "silu",
    "SELU": "selu",
    "ReLU": "relu",
    "Tanh": "tanh",
    "Sigmoid": "sigmoid",
    "Softplus": "softplus",
    "ShiftedSoftplus": "shifted_softplus",
    "Identity": "identity",
}


def activation_key(module) -> Optional[str]:
    """Fused-activation key for an nn activation module, or None."""
    if module is None:
        return None
    return _ACT_KEYS.get(type(module).__name__)


# --------------------------------------------------------------------------- #
# Dispatched ops
# --------------------------------------------------------------------------- #
def linear_act(
    x, weight: Tensor, bias: Optional[Tensor] = None, act: Optional[str] = None
) -> Tensor:
    """``act(x @ W + b)``.  Fused contract: Tensor input with ndim >= 2."""
    key = act or "identity"
    if (
        _FUSED
        and isinstance(x, Tensor)
        and x.data.ndim >= 2
        and key in fused.ACTIVATIONS
    ):
        return fused.linear_act(x, weight, bias, key)
    return reference.linear_act(x, weight, bias, act)


def rms_norm(x, weight: Tensor, eps: float) -> Tensor:
    """RMS normalization over the last axis."""
    if _FUSED and isinstance(x, Tensor):
        return fused.rms_norm(x, weight, eps)
    return reference.rms_norm(x, weight, eps)


def layer_norm(x, weight: Tensor, bias: Tensor, eps: float) -> Tensor:
    """Layer normalization over the last axis."""
    if _FUSED and isinstance(x, Tensor):
        return fused.layer_norm(x, weight, bias, eps)
    return reference.layer_norm(x, weight, bias, eps)


def softmax_cross_entropy(logits, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy.  Fused contract: 2-D logits, non-empty batch."""
    if (
        _FUSED
        and isinstance(logits, Tensor)
        and logits.data.ndim == 2
        and logits.data.shape[0] > 0
    ):
        return fused.softmax_cross_entropy(logits, targets)
    return reference.softmax_cross_entropy(logits, targets)


def gather_diff(x, src: np.ndarray, dst: np.ndarray) -> Tensor:
    """Per-edge difference ``x[src] - x[dst]``."""
    if _FUSED and isinstance(x, Tensor):
        return fused.gather_diff(x, src, dst)
    return reference.gather_diff(x, src, dst)


def row_sq_norm(t) -> Tensor:
    """Squared norm over the last axis, keepdims."""
    if _FUSED and isinstance(t, Tensor):
        return fused.row_sq_norm(t)
    return reference.row_sq_norm(t)


def mul_segment_sum(a, b, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """``segment_sum(a * b)`` — modulated message aggregation."""
    if _FUSED and isinstance(a, Tensor) and isinstance(b, Tensor):
        return fused.mul_segment_sum(a, b, segment_ids, num_segments)
    return reference.mul_segment_sum(a, b, segment_ids, num_segments)


def gather_pair_concat(h, src: np.ndarray, dst: np.ndarray, tails) -> Tensor:
    """``concat([h[src], h[dst], *tails], axis=1)``.  Fused contract: 2-D
    Tensor node table and 2-D Tensor tails."""
    if (
        _FUSED
        and isinstance(h, Tensor)
        and h.data.ndim == 2
        and all(isinstance(t, Tensor) and t.data.ndim == 2 for t in tails)
    ):
        return fused.gather_pair_concat(h, src, dst, tails)
    return reference.gather_pair_concat(h, src, dst, tails)


def index_select(x, index: np.ndarray) -> Tensor:
    """Row gather.  Fused contract: Tensor with ndim <= 2 (the bincount
    scatter backward is row-flat)."""
    if _FUSED and isinstance(x, Tensor) and x.data.ndim <= 2:
        return fused.index_select(x, index)
    return reference.index_select(x, index)


def segment_sum(x, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Segment reduction.  Fused contract: Tensor with ndim <= 2."""
    if _FUSED and isinstance(x, Tensor) and x.data.ndim <= 2:
        return fused.segment_sum(x, segment_ids, num_segments)
    return reference.segment_sum(x, segment_ids, num_segments)


def lstm_cell(x, h, c, w_x, w_h, b) -> Tensor:
    """One LSTM step; returns ``concat([h', c'], axis=1)``.  Fused
    contract: all six operands are Tensors and the state is 2-D."""
    if (
        _FUSED
        and all(isinstance(t, Tensor) for t in (x, h, c, w_x, w_h, b))
        and h.data.ndim == 2
        and x.data.ndim == 2
    ):
        return fused.lstm_cell(x, h, c, w_x, w_h, b)
    return reference.lstm_cell(x, h, c, w_x, w_h, b)
