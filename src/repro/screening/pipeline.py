"""The screening pipeline: generate -> (relax) -> predict -> rank.

This is the second traffic-shaped workload next to training: instead of
millions of gradient steps, millions of *candidates* flow through a
trained servable.  The pipeline composes the pieces the previous layers
built — lazy seeded generation (bounded memory), optional force-field
relaxation, batched prediction under batch-invariant kernels (PR 6's
guarantee is what makes ``--batch-size`` a pure throughput knob), and
O(k) streaming ranking with a total order — and emits ``screen.*``
metrics and spans through the observability layer.

Exactness contract (DESIGN.md §15): for a fixed (servable, config seed),
the ranked result is bit-identical across batch sizes and shard counts:

    run(batch_size=B1, shards=S1).ranked == run(batch_size=B2, shards=S2).ranked
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.screening.generator import Candidate, CandidateGenerator
from repro.screening.ranker import RankedCandidate, TopK
from repro.screening.relax import ForceFieldRelaxer


@dataclass
class ScreenConfig:
    """Knobs for one screening run (mirrors the ``repro screen`` CLI)."""

    n_candidates: int = 256
    top_k: int = 16
    batch_size: int = 16
    relax_steps: int = 0
    relax_step_size: float = 5e-3
    num_shards: int = 1
    seed: int = 0
    #: Parent pool: how many MaterialsProjectSurrogate crystals to mutate.
    base_samples: int = 32
    base_seed: int = 0

    def __post_init__(self):
        if self.n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.relax_steps < 0:
            raise ValueError("relax_steps must be >= 0")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")


@dataclass
class ScreenResult:
    """Outcome of a screening run: the ranking plus stream accounting."""

    ranked: List[RankedCandidate]
    candidates: int
    batches: int
    relax_steps: int
    num_shards: int
    elapsed: float
    admitted: int = 0
    shard_sizes: List[int] = field(default_factory=list)

    @property
    def candidates_per_sec(self) -> float:
        return self.candidates / max(self.elapsed, 1e-12)

    def summary(self) -> str:
        lines = [
            f"screened {self.candidates} candidates in {self.elapsed:.3f} s "
            f"({self.candidates_per_sec:.1f} cand/s, {self.batches} batches, "
            f"{self.num_shards} shard{'s' if self.num_shards != 1 else ''}, "
            f"{self.relax_steps} relax steps)",
            f"top-{len(self.ranked)}:",
        ]
        for rank, entry in enumerate(self.ranked, start=1):
            payload = entry.payload or {}
            lines.append(
                f"  #{rank:<3d} score {entry.score:+.6f}  "
                f"{str(payload.get('formula', '?')):<14s} "
                f"candidate {entry.index} (parent {payload.get('parent_index', '?')}, "
                f"{len(payload.get('ops', ()))} ops)  {entry.fingerprint}"
            )
        return "\n".join(lines)


def _batched(stream: Iterator[Candidate], size: int) -> Iterator[List[Candidate]]:
    batch: List[Candidate] = []
    for candidate in stream:
        batch.append(candidate)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


class _NullObserver:
    """Metrics/span no-op so the hot loop has one code path."""

    class _Span:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

    class _Counter:
        def inc(self, amount: float = 1):
            return None

    def span(self, name, **attrs):
        return self._Span()

    class metrics:  # noqa: N801 - mimics MetricsRegistry surface
        @staticmethod
        def counter(name):
            return _NullObserver._Counter()


def score_candidates(
    servable,
    candidates: Sequence[Candidate],
    relaxer: Optional[ForceFieldRelaxer] = None,
    relax_steps: int = 0,
) -> List[float]:
    """Scores for a batch of candidates (one batched forward).

    Graph preparation, relaxation, and the batch-invariant forward are
    all per-sample deterministic, so these scores equal one-at-a-time
    scoring bit for bit.
    """
    samples = [servable.prepare(c.structure) for c in candidates]
    if relaxer is not None and relax_steps > 0:
        samples = relaxer.relax(samples, relax_steps)
    return [float(v) for v in servable.predict(samples)]


def run_screening(
    servable,
    config: ScreenConfig,
    observer=None,
    relaxer: Optional[ForceFieldRelaxer] = None,
    generator: Optional[CandidateGenerator] = None,
) -> ScreenResult:
    """Screen ``config.n_candidates`` proposals through ``servable``.

    Shards partition the candidate index space; each shard ranks into its
    own :class:`TopK` and the per-shard rankings merge exactly
    (``TopK.merge``), so ``num_shards`` — like ``batch_size`` — changes
    only the execution layout, never the result.
    """
    obs = observer if observer is not None else _NullObserver()
    generator = generator or CandidateGenerator(
        seed=config.seed,
        base_samples=config.base_samples,
        base_seed=config.base_seed,
    )
    if relaxer is None and config.relax_steps > 0:
        relaxer = ForceFieldRelaxer.from_spec(
            servable.spec, step_size=config.relax_step_size
        )

    t0 = time.perf_counter()
    shard_rankers: List[TopK] = []
    shard_sizes: List[int] = []
    batches = 0
    with obs.span("screen.run", candidates=config.n_candidates,
                  shards=config.num_shards):
        for shard_index in range(config.num_shards):
            ranker = TopK(config.top_k)
            shard_count = 0
            stream = generator.shard(
                config.n_candidates, shard_index, config.num_shards
            )
            for batch in _batched(stream, config.batch_size):
                with obs.span("screen.batch", shard=shard_index, size=len(batch)):
                    scores = score_candidates(
                        servable, batch, relaxer, config.relax_steps
                    )
                    for candidate, score in zip(batch, scores):
                        ranker.offer(
                            score,
                            candidate.fingerprint,
                            candidate.index,
                            payload={
                                "formula": candidate.formula,
                                "parent_index": candidate.parent_index,
                                "ops": candidate.ops,
                            },
                        )
                batches += 1
                shard_count += len(batch)
                obs.metrics.counter("screen.candidates").inc(len(batch))
                obs.metrics.counter("screen.batches").inc()
                if config.relax_steps > 0:
                    obs.metrics.counter("screen.relax.steps").inc(
                        config.relax_steps * len(batch)
                    )
            shard_rankers.append(ranker)
            shard_sizes.append(shard_count)
        merged = TopK.merge(shard_rankers, k=config.top_k)
    elapsed = time.perf_counter() - t0
    obs.metrics.counter("screen.topk.admitted").inc(
        sum(r.admitted for r in shard_rankers)
    )
    return ScreenResult(
        ranked=merged.ranked(),
        candidates=sum(shard_sizes),
        batches=batches,
        relax_steps=config.relax_steps,
        num_shards=config.num_shards,
        elapsed=elapsed,
        admitted=sum(r.admitted for r in shard_rankers),
        shard_sizes=shard_sizes,
    )
