"""Seeded candidate generation: mutate known crystals into new proposals.

The generator streams :class:`Candidate` records lazily — candidate ``i``
is a pure function of ``(seed, i)`` exactly like the surrogate datasets
(``np.random.default_rng((seed, tag, index))``), so the stream is
bit-identical however it is consumed: one at a time, in batches of any
size, or sharded ``i % num_shards`` across processes.  Memory stays
bounded because nothing upstream of the ranker ever holds more than one
batch of structures.

Mutations, following the element-swap templating pattern: one or more
single-site species swaps drawn from the :class:`~repro.screening.swaps.
SwapTable` (similar elements only), plus an optional small symmetric
lattice strain.  Swapped structures keep their parent's geometry —
screening's whole premise is that the surrogate (optionally after a few
relaxation steps) decides which perturbations are keepers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.structures import Structure
from repro.datasets.materials_project import (
    DEFAULT_ELEMENT_POOL,
    MaterialsProjectSurrogate,
)
from repro.datasets.periodic_table import element
from repro.geometry.lattice import Lattice
from repro.screening.swaps import SwapTable

#: rng-stream tag separating candidate draws from dataset draws.
_CANDIDATE_TAG = 0x5C


def structure_fingerprint(structure: Structure) -> str:
    """Stable content hash of (species, positions, lattice).

    sha256 over the raw float64/int64 bytes: identical structures map to
    identical fingerprints in every process (unlike Python's salted
    ``hash``), which is what makes the ranker's (score, fingerprint)
    tie-break a *total* order across shards.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(structure.species, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(structure.positions, dtype=np.float64).tobytes())
    if structure.lattice is not None:
        h.update(np.ascontiguousarray(structure.lattice.matrix, dtype=np.float64).tobytes())
    return h.hexdigest()[:16]


def formula(species: np.ndarray) -> str:
    """Hill-less reduced formula string, elements ordered by atomic number."""
    zs, counts = np.unique(np.asarray(species, dtype=np.int64), return_counts=True)
    return "".join(
        f"{element(int(z)).symbol}{int(c) if c > 1 else ''}"
        for z, c in zip(zs, counts)
    )


@dataclass
class Candidate:
    """One proposed crystal plus its provenance."""

    index: int
    structure: Structure
    parent_index: int
    ops: Tuple[str, ...]
    fingerprint: str = field(default="")

    def __post_init__(self):
        if not self.fingerprint:
            self.fingerprint = structure_fingerprint(self.structure)

    @property
    def formula(self) -> str:
        return formula(self.structure.species)


class CandidateGenerator:
    """Lazy, seeded stream of mutated MaterialsProjectSurrogate crystals.

    Parameters
    ----------
    base:
        Parent pool of labelled structures; defaults to a fresh
        :class:`MaterialsProjectSurrogate` of ``base_samples`` crystals.
    swap_table:
        Element-similarity table; defaults to one over the dataset's
        element pool so swaps never leave the training distribution.
    seed:
        Stream seed.  ``candidate(i)`` depends only on ``(seed, i)``.
    max_swaps:
        Per-candidate species swaps are drawn uniformly from 1..max_swaps.
    strain_prob / strain_scale:
        Probability and magnitude of the symmetric lattice strain applied
        after the swaps (entries ~ U(-scale, scale)).
    """

    def __init__(
        self,
        base: Optional[MaterialsProjectSurrogate] = None,
        swap_table: Optional[SwapTable] = None,
        seed: int = 0,
        base_samples: int = 32,
        base_seed: int = 0,
        max_swaps: int = 3,
        strain_prob: float = 0.5,
        strain_scale: float = 0.02,
    ):
        if max_swaps < 1:
            raise ValueError("max_swaps must be >= 1")
        if not 0.0 <= strain_prob <= 1.0:
            raise ValueError("strain_prob must be in [0, 1]")
        self.base = base or MaterialsProjectSurrogate(
            num_samples=base_samples, seed=base_seed
        )
        self.swap_table = swap_table or SwapTable(
            element_pool=getattr(self.base, "element_pool", DEFAULT_ELEMENT_POOL)
        )
        self.seed = int(seed)
        self.max_swaps = int(max_swaps)
        self.strain_prob = float(strain_prob)
        self.strain_scale = float(strain_scale)
        # Parents are drawn from a small fixed pool but each dataset
        # __getitem__ re-synthesizes the crystal *and* its surrogate-DFT
        # labels (~ms) — far more than a mutation.  Memoize them: memory
        # is bounded by the pool size and candidates only ever read from
        # the parent (species/positions are copied before mutation).
        self._parents: dict = {}

    # ------------------------------------------------------------------ #
    def candidate(self, index: int) -> Candidate:
        """Candidate ``index`` — a pure function of ``(seed, index)``."""
        if index < 0:
            raise IndexError(index)
        rng = np.random.default_rng((self.seed, _CANDIDATE_TAG, index))
        parent_index = int(rng.integers(0, len(self.base)))
        parent = self._parents.get(parent_index)
        if parent is None:
            parent = self._parents.setdefault(parent_index, self.base[parent_index])
        species = parent.species.copy()
        positions = parent.positions.copy()
        lattice = parent.lattice
        ops = []

        num_swaps = int(rng.integers(1, self.max_swaps + 1))
        for _ in range(num_swaps):
            site = int(rng.integers(0, len(species)))
            old = int(species[site])
            if old in self.swap_table:
                choices = self.swap_table.neighbors(old)
                new = int(choices[int(rng.integers(0, len(choices)))])
                species[site] = new
                ops.append(f"swap[{site}]:{element(old).symbol}->{element(new).symbol}")

        if lattice is not None and rng.random() < self.strain_prob:
            # Small symmetric strain: x' = x (I + eps), applied to the
            # cell rows and the cartesian coordinates alike, so fractional
            # coordinates — and therefore the motif — are preserved.
            raw = rng.uniform(-self.strain_scale, self.strain_scale, size=(3, 3))
            eps = 0.5 * (raw + raw.T)
            deformation = np.eye(3) + eps
            lattice = Lattice(lattice.matrix @ deformation)
            positions = positions @ deformation
            ops.append(f"strain:{float(np.abs(eps).max()):.4f}")

        structure = Structure(
            positions=positions,
            species=species,
            lattice=lattice,
            targets={},
            metadata={
                "dataset": "screening",
                "parent_index": parent_index,
                "parent_formula": formula(parent.species),
            },
        )
        return Candidate(
            index=index,
            structure=structure,
            parent_index=parent_index,
            ops=tuple(ops),
        )

    # ------------------------------------------------------------------ #
    def stream(self, count: int, start: int = 0) -> Iterator[Candidate]:
        """Lazily yield candidates ``start .. start + count - 1``."""
        for i in range(start, start + count):
            yield self.candidate(i)

    def shard(self, count: int, shard_index: int, num_shards: int) -> Iterator[Candidate]:
        """The lazily-streamed slice ``shard_index, shard_index + num_shards, ...``.

        Sharding partitions the *global index space*, so the union of all
        shards is exactly ``stream(count)`` — the property the sharded ==
        single-shard ranking guarantee rests on.
        """
        if not 0 <= shard_index < num_shards:
            raise ValueError(f"shard_index {shard_index} outside 0..{num_shards - 1}")
        for i in range(shard_index, count, num_shards):
            yield self.candidate(i)
