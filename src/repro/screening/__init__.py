"""High-throughput screening: generate -> predict -> rank (DESIGN.md §15).

The screening workload turns a trained servable into a discovery engine:
a deterministic element-swap table (``swaps.py``) proposes chemically
plausible mutations of known crystals (``generator.py``), an optional
force-field relaxer settles them (``relax.py``), batched predictions
under batch-invariant kernels score them, and a streaming bounded-memory
top-k ranker with a total (score, fingerprint, index) order keeps the
winners (``ranker.py``).  ``run_screening`` (``pipeline.py``) wires it
together; batch size and shard count change throughput only — the ranked
result is bit-identical across any execution layout.
"""

from repro.screening.generator import (
    Candidate,
    CandidateGenerator,
    formula,
    structure_fingerprint,
)
from repro.screening.pipeline import (
    ScreenConfig,
    ScreenResult,
    run_screening,
    score_candidates,
)
from repro.screening.ranker import RankedCandidate, TopK
from repro.screening.relax import ForceFieldRelaxer
from repro.screening.swaps import SwapTable

__all__ = [
    "Candidate",
    "CandidateGenerator",
    "ForceFieldRelaxer",
    "RankedCandidate",
    "ScreenConfig",
    "ScreenResult",
    "SwapTable",
    "TopK",
    "formula",
    "run_screening",
    "score_candidates",
    "structure_fingerprint",
]
