"""Streaming bounded-memory top-k ranking with a deterministic total order.

Screening scores millions of candidates but keeps only the best handful,
so the ranker must be O(k) memory over an unbounded stream *and* produce
an order that does not depend on arrival order, batch size, or shard
layout.  The order is the lexicographic key

    (score ascending, fingerprint ascending, candidate index ascending)

— score first (lower is better: energies), the content fingerprint to
break exact score ties stably across processes, and the global candidate
index as the final tiebreak so the order is total even for bit-identical
duplicate structures.  Because the key is total, top-k of a union equals
top-k of the concatenated per-shard top-k lists, which is what makes
``TopK.merge`` over shards exactly equal to single-shard ranking
(DESIGN.md §15).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class RankedCandidate:
    """One ranked entry: the sort key plus display payload."""

    score: float
    fingerprint: str
    index: int
    payload: Optional[Dict[str, object]] = None

    @property
    def key(self) -> Tuple[float, str, int]:
        return (self.score, self.fingerprint, self.index)


class TopK:
    """Keep the k smallest (score, fingerprint, index) entries of a stream."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self._keys: List[Tuple[float, str, int]] = []
        self._entries: Dict[Tuple[float, str, int], RankedCandidate] = {}
        #: Stream accounting: total candidates offered / actually kept.
        self.offered = 0
        self.admitted = 0

    # ------------------------------------------------------------------ #
    def offer(
        self,
        score: float,
        fingerprint: str,
        index: int,
        payload: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Consider one candidate; returns whether it entered the top-k."""
        self.offered += 1
        key = (float(score), str(fingerprint), int(index))
        if len(self._keys) >= self.k and key >= self._keys[-1]:
            return False
        bisect.insort(self._keys, key)
        self._entries[key] = RankedCandidate(key[0], key[1], key[2], payload)
        self.admitted += 1
        if len(self._keys) > self.k:
            evicted = self._keys.pop()
            del self._entries[evicted]
        return True

    def extend(self, entries: Iterable[RankedCandidate]) -> None:
        for entry in entries:
            self.offer(entry.score, entry.fingerprint, entry.index, entry.payload)

    # ------------------------------------------------------------------ #
    def ranked(self) -> List[RankedCandidate]:
        """Best-first entries (ascending key), at most k of them."""
        return [self._entries[key] for key in self._keys]

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def threshold(self) -> Optional[Tuple[float, str, int]]:
        """Current admission cut (the worst kept key), once full."""
        if len(self._keys) < self.k:
            return None
        return self._keys[-1]

    # ------------------------------------------------------------------ #
    @classmethod
    def merge(cls, parts: Iterable["TopK"], k: Optional[int] = None) -> "TopK":
        """Fold per-shard rankers into one, preserving exactness.

        With ``k`` omitted, the merged ranker keeps the maximum part
        size.  Exactness argument: every stream candidate outside its
        shard's top-k is dominated by k candidates within that shard, so
        it cannot be in the global top-k — concatenating the per-shard
        survivors loses nothing.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("cannot merge zero rankers")
        merged = cls(k or max(p.k for p in parts))
        offered = 0
        for part in parts:
            offered += part.offered
            merged.extend(part.ranked())
        # Offered counts the original stream, not the merge traffic.
        merged.offered = offered
        return merged
