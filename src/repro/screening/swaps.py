"""Deterministic element-swap table over the periodic table.

High-throughput screening mutates known-good crystals by substituting
chemically *similar* elements (the templating idea behind ionic-radius
swap tables in crystal-generation pipelines): a swap that replaces Fe
with Co perturbs the energy landscape gently, one that replaces Fe with
F does not.  Similarity here is the Euclidean distance between z-scored
(electronegativity, covalent radius, valence electrons) vectors from
:mod:`repro.datasets.periodic_table` — the exact properties the
surrogate DFT engine reads, so "similar" means "similar to the label
engine", not to a chemist's intuition.

Determinism contract: the table is a pure function of the periodic-table
constants and the element pool.  Distances are computed in float64 with
a fixed operation order, and every ordering decision breaks ties by
atomic number, so two processes (or two machines) always build the same
table bit for bit — a requirement for sharded screening, where every
shard rebuilds the table independently (DESIGN.md §15).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.periodic_table import MAX_Z, element


class SwapTable:
    """Nearest-neighbour element similarity with a stable total order.

    Parameters
    ----------
    element_pool:
        Atomic numbers the table covers; swaps never leave the pool.
        Defaults to the full table (1..MAX_Z).
    num_neighbors:
        Neighbours kept per element, most-similar first.
    """

    def __init__(
        self,
        element_pool: Optional[Sequence[int]] = None,
        num_neighbors: int = 8,
    ):
        pool = tuple(sorted(set(int(z) for z in (element_pool or range(1, MAX_Z + 1)))))
        if len(pool) < 2:
            raise ValueError("element pool must contain at least 2 elements")
        if not 1 <= num_neighbors <= len(pool) - 1:
            raise ValueError(
                f"num_neighbors must be in 1..{len(pool) - 1}, got {num_neighbors}"
            )
        self.element_pool = pool
        self.num_neighbors = int(num_neighbors)
        self._features = self._build_features(pool)
        self._neighbors = self._build_neighbors()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_features(pool: Tuple[int, ...]) -> Dict[int, np.ndarray]:
        """z-scored (electronegativity, radius, valence) per pool element.

        Standardizing over the pool puts the three properties on one
        scale; ``std`` is floored so a degenerate pool (all radii equal,
        say) cannot divide by zero.
        """
        raw = np.array(
            [
                (
                    element(z).electronegativity,
                    element(z).covalent_radius,
                    float(element(z).valence_electrons),
                )
                for z in pool
            ],
            dtype=np.float64,
        )
        mean = raw.mean(axis=0)
        std = np.maximum(raw.std(axis=0), 1e-12)
        scored = (raw - mean) / std
        return {z: scored[i] for i, z in enumerate(pool)}

    def _build_neighbors(self) -> Dict[int, Tuple[int, ...]]:
        table: Dict[int, Tuple[int, ...]] = {}
        for z in self.element_pool:
            others = [o for o in self.element_pool if o != z]
            # Sort by (distance, atomic number): ties in distance —
            # possible when two elements share all three properties —
            # resolve identically in every process.
            ranked = sorted(others, key=lambda o: (self.distance(z, o), o))
            table[z] = tuple(ranked[: self.num_neighbors])
        return table

    # ------------------------------------------------------------------ #
    def distance(self, a: int, b: int) -> float:
        """Similarity distance between two pool elements (symmetric, >= 0)."""
        try:
            va, vb = self._features[int(a)], self._features[int(b)]
        except KeyError as exc:
            raise KeyError(f"element {exc.args[0]} not in the swap pool") from exc
        delta = va - vb
        return float(np.sqrt(np.dot(delta, delta)))

    def neighbors(self, z: int) -> Tuple[int, ...]:
        """The ``num_neighbors`` most similar pool elements, best first."""
        try:
            return self._neighbors[int(z)]
        except KeyError:
            raise KeyError(f"element {int(z)} not in the swap pool")

    def __contains__(self, z: int) -> bool:
        return int(z) in self._neighbors

    def __len__(self) -> int:
        return len(self.element_pool)

    def fingerprint(self) -> str:
        """Stable identity of the whole table (pool + every neighbour list)."""
        import hashlib

        h = hashlib.sha256()
        h.update(np.array(self.element_pool, dtype=np.int64).tobytes())
        for z in self.element_pool:
            h.update(np.array(self._neighbors[z], dtype=np.int64).tobytes())
        return h.hexdigest()[:16]
