"""Surrogate relaxation: a few force-field gradient-descent steps.

Screening proposals inherit their parent's geometry, so their energies
are evaluated slightly off-minimum; a handful of steepest-descent steps
along the force head's predictions (``x += eta * F``, per-atom step
clipped) settles them before scoring, exactly the role DFT relaxation
plays in real screening funnels — here served by the existing
:class:`~repro.tasks.forces.EnergyForceTask` head.

Determinism contract: relaxation runs under ``no_grad`` +
:func:`~repro.autograd.batch_invariant_kernels`, the graph (edges) is
frozen at construction — only positions move — and the position update is
elementwise, so relaxing a sample alone or inside any batch produces
bit-identical trajectories (asserted by
``tests/test_screening_determinism.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import batch_invariant_kernels, no_grad
from repro.data.batching import collate_graphs
from repro.data.structures import GraphSample
from repro.models.registry import build_encoder
from repro.tasks.forces import EnergyForceTask


class ForceFieldRelaxer:
    """Fixed-step steepest descent on predicted forces, batch-invariant."""

    def __init__(
        self,
        task: EnergyForceTask,
        step_size: float = 5e-3,
        max_step: float = 0.05,
    ):
        if step_size <= 0 or max_step <= 0:
            raise ValueError("step_size and max_step must be positive")
        self.task = task.eval()
        self.step_size = float(step_size)
        self.max_step = float(max_step)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec, step_size: float = 5e-3, max_step: float = 0.05):
        """Build a seeded relaxer matching a servable's encoder geometry.

        The force field is a deterministic function of the spec (fixed
        init seeds, like ``ServableSpec.build_task``): every process
        screening against the same servable relaxes with the same field.
        """
        cfg = spec.encoder_config()
        encoder = build_encoder(
            spec.encoder_name,
            rng=np.random.default_rng(2),
            **cfg.build_kwargs(),
        )
        task = EnergyForceTask(
            encoder,
            hidden_dim=spec.head_hidden_dim,
            num_blocks=spec.head_blocks,
            dropout=spec.dropout,
            rng=np.random.default_rng(3),
        )
        return cls(task, step_size=step_size, max_step=max_step)

    # ------------------------------------------------------------------ #
    def _forces(self, samples: Sequence[GraphSample]) -> np.ndarray:
        batch = collate_graphs(list(samples))
        with no_grad(), batch_invariant_kernels():
            _, forces = self.task.predict(batch)
        return np.asarray(forces.data, dtype=np.float64)

    def _displacement(self, forces: np.ndarray) -> np.ndarray:
        """``eta * F`` with the per-atom step norm clipped to ``max_step``."""
        step = self.step_size * forces
        norms = np.linalg.norm(step, axis=1, keepdims=True)
        scale = np.minimum(1.0, self.max_step / np.maximum(norms, 1e-12))
        return step * scale

    def relax(
        self, samples: Sequence[GraphSample], steps: int
    ) -> List[GraphSample]:
        """Return copies of ``samples`` advanced ``steps`` descent steps.

        Edges are frozen: the neighbour graph built from the initial
        positions is kept for the whole trajectory (steps are small), so
        the update never re-runs neighbour search and stays a pure
        function of the initial sample.
        """
        if steps < 0:
            raise ValueError("steps must be >= 0")
        current = [
            GraphSample(
                positions=s.positions.copy(),
                species=s.species,
                edge_src=s.edge_src,
                edge_dst=s.edge_dst,
                edge_attr=s.edge_attr,
                targets=dict(s.targets),
                metadata=dict(s.metadata),
            )
            for s in samples
        ]
        if steps == 0 or not current:
            return current
        counts = [s.num_nodes for s in current]
        offsets = np.cumsum([0] + counts)
        for _ in range(steps):
            forces = self._forces(current)
            disp = self._displacement(forces)
            for i, sample in enumerate(current):
                sample.positions = sample.positions + disp[offsets[i]:offsets[i + 1]]
        return current


__all__ = ["ForceFieldRelaxer"]
