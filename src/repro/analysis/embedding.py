"""Embedding extraction: run datasets through an encoder, collect vectors."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import no_grad
from repro.data.batching import collate_graphs
from repro.data.dataset import Dataset
from repro.models.encoder import Encoder


def embed_dataset(
    encoder: Encoder,
    dataset: Dataset,
    transform: Callable,
    batch_size: int = 32,
    max_samples: Optional[int] = None,
    collate_fn: Callable = collate_graphs,
) -> np.ndarray:
    """Graph embeddings for (up to ``max_samples`` of) a dataset.

    Mirrors the paper's Fig. 4 procedure: a fixed random subset of each
    dataset is pushed through the pretrained encoder in evaluation mode.
    """
    encoder.eval()
    n = len(dataset) if max_samples is None else min(max_samples, len(dataset))
    rows: List[np.ndarray] = []
    batch_samples = []
    with no_grad():
        for i in range(n):
            batch_samples.append(transform(dataset[i]))
            if len(batch_samples) == batch_size or i == n - 1:
                batch = collate_fn(batch_samples)
                out = encoder(batch)
                rows.append(out.graph_embedding.data.copy())
                batch_samples = []
    encoder.train()
    return np.concatenate(rows, axis=0)


def embed_datasets(
    encoder: Encoder,
    datasets: Sequence[Dataset],
    transform: Callable,
    batch_size: int = 32,
    max_samples_per_dataset: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Stack embeddings from several datasets.

    Returns (embeddings, integer labels, dataset names); the labels index
    into names and drive the cluster metrics / UMAP colouring.
    """
    all_rows, labels, names = [], [], []
    for k, dataset in enumerate(datasets):
        emb = embed_dataset(
            encoder,
            dataset,
            transform,
            batch_size=batch_size,
            max_samples=max_samples_per_dataset,
        )
        all_rows.append(emb)
        labels.append(np.full(len(emb), k, dtype=np.int64))
        names.append(dataset.name)
    return np.concatenate(all_rows, axis=0), np.concatenate(labels), names
