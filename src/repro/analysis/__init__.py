"""Analysis tooling: UMAP-lite projection and dataset-exploration metrics.

Implements the paper's Sec. 5.3 pipeline: embed samples from every dataset
with a (pretrained) encoder, project with UMAP, and quantify the
qualitative observations — dataset overlap, cluster isolation, structural
spread — so the Fig. 4 claims become assertable numbers.
"""

from repro.analysis.umap_lite import UMAPLite, fit_ab_params, smooth_knn_weights
from repro.analysis.embedding import embed_dataset, embed_datasets
from repro.analysis.cluster_metrics import (
    silhouette_by_label,
    neighbor_overlap_matrix,
    cluster_spread,
)

__all__ = [
    "UMAPLite",
    "fit_ab_params",
    "smooth_knn_weights",
    "embed_dataset",
    "embed_datasets",
    "silhouette_by_label",
    "neighbor_overlap_matrix",
    "cluster_spread",
]
