"""Quantitative versions of the Fig. 4 observations.

The paper reads three things off its UMAP: datasets share structural
motifs (inter-dataset overlap), the OC20/OC22 pair overlaps most, LiPS is
an isolated cluster, and the Materials Project covers the broadest variety.
These metrics turn each into a number:

* :func:`neighbor_overlap_matrix` — how often a point's nearest neighbours
  belong to another dataset (high off-diagonal = shared motifs).
* :func:`silhouette_by_label` — cluster isolation per dataset (LiPS should
  dominate).
* :func:`cluster_spread` — mean within-dataset dispersion (MP should
  dominate).
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.spatial import cKDTree
from scipy.spatial.distance import cdist


def neighbor_overlap_matrix(
    points: np.ndarray, labels: np.ndarray, k: int = 10
) -> np.ndarray:
    """M[i, j] = mean fraction of label-i points' kNN that carry label j.

    Rows sum to 1; the diagonal is self-cohesion, off-diagonals measure how
    interleaved two datasets are in the embedding space.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    n_labels = labels.max() + 1
    k_eff = min(k, len(points) - 1)
    tree = cKDTree(points)
    _, idx = tree.query(points, k=k_eff + 1)
    neigh_labels = labels[idx[:, 1:]]
    matrix = np.zeros((n_labels, n_labels))
    for lbl in range(n_labels):
        mask = labels == lbl
        if not mask.any():
            continue
        counts = np.stack(
            [(neigh_labels[mask] == j).mean(axis=1) for j in range(n_labels)], axis=1
        )
        matrix[lbl] = counts.mean(axis=0)
    return matrix


def silhouette_by_label(points: np.ndarray, labels: np.ndarray) -> Dict[int, float]:
    """Mean silhouette coefficient per label (computed exactly, O(n^2)).

    s(p) = (b - a) / max(a, b) with a = mean intra-cluster distance and
    b = smallest mean distance to another cluster.  Isolated, tight
    clusters approach 1.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    uniq = np.unique(labels)
    dists = cdist(points, points)
    result: Dict[int, float] = {}
    for lbl in uniq:
        mask = labels == lbl
        n_in = int(mask.sum())
        if n_in < 2:
            result[int(lbl)] = 0.0
            continue
        intra = dists[np.ix_(mask, mask)].sum(axis=1) / (n_in - 1)
        inter = np.full(n_in, np.inf)
        for other in uniq:
            if other == lbl:
                continue
            omask = labels == other
            if not omask.any():
                continue
            mean_d = dists[np.ix_(mask, omask)].mean(axis=1)
            inter = np.minimum(inter, mean_d)
        sil = (inter - intra) / np.maximum(intra, inter)
        result[int(lbl)] = float(sil.mean())
    return result


def cluster_spread(points: np.ndarray, labels: np.ndarray) -> Dict[int, float]:
    """RMS distance to the label centroid — 'variety of structures'."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    result: Dict[int, float] = {}
    for lbl in np.unique(labels):
        mask = labels == lbl
        sub = points[mask]
        centroid = sub.mean(axis=0, keepdims=True)
        result[int(lbl)] = float(np.sqrt(((sub - centroid) ** 2).sum(axis=1).mean()))
    return result
