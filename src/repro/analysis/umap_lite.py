"""UMAP, implemented from scratch (McInnes et al., 2018).

A faithful-but-compact reimplementation of the algorithm the paper uses for
Fig. 4, built only on numpy/scipy:

1. k-nearest-neighbour graph (``scipy.spatial.cKDTree``).
2. Smooth-kNN kernel: per-point bandwidths found by binary search so each
   point's effective neighbour count is log2(k).
3. Fuzzy simplicial set symmetrization ``P + P^T - P * P^T``.
4. Spectral initialization from the normalized graph Laplacian.
5. SGD layout with the (a, b) low-dimensional kernel fitted from
   ``min_dist``/``spread`` and negative sampling.

The defaults accept the paper's parameters (n_neighbors=200,
min_dist=0.05, euclidean).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
import scipy.optimize
import scipy.sparse
import scipy.sparse.linalg
from scipy.spatial import cKDTree

SMOOTH_K_TOLERANCE = 1e-5
MIN_K_DIST_SCALE = 1e-3


def fit_ab_params(spread: float = 1.0, min_dist: float = 0.1) -> Tuple[float, float]:
    """Fit the low-dimensional kernel 1/(1 + a d^(2b)) to the target curve.

    The target is 1 for d < min_dist and exp(-(d - min_dist)/spread)
    beyond — the same least-squares fit umap-learn performs at setup.
    """
    xv = np.linspace(0.0, spread * 3.0, 300)
    yv = np.where(xv < min_dist, 1.0, np.exp(-(xv - min_dist) / spread))

    def curve(x, a, b):
        return 1.0 / (1.0 + a * x ** (2.0 * b))

    (a, b), _ = scipy.optimize.curve_fit(curve, xv, yv, p0=(1.0, 1.0), maxfev=5000)
    return float(a), float(b)


def smooth_knn_weights(
    knn_dists: np.ndarray, n_iter: int = 64
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-point (rho, sigma) of the smooth-kNN kernel.

    rho_i is the nearest-neighbour distance; sigma_i solves
    ``sum_j exp(-max(d_ij - rho_i, 0) / sigma_i) = log2(k)`` by bisection.
    """
    n, k = knn_dists.shape
    target = math.log2(k)
    rho = knn_dists[:, 0].copy()
    sigma = np.ones(n)
    for i in range(n):
        lo, hi = 0.0, np.inf
        mid = 1.0
        d = knn_dists[i] - rho[i]
        d[d < 0] = 0.0
        for _ in range(n_iter):
            psum = float(np.exp(-d / mid).sum())
            if abs(psum - target) < SMOOTH_K_TOLERANCE:
                break
            if psum > target:
                hi = mid
                mid = (lo + hi) / 2.0
            else:
                lo = mid
                mid = mid * 2.0 if hi == np.inf else (lo + hi) / 2.0
        sigma[i] = mid
        mean_d = float(knn_dists[i].mean())
        if rho[i] > 0:
            sigma[i] = max(sigma[i], MIN_K_DIST_SCALE * mean_d)
    return rho, sigma


class UMAPLite:
    """Uniform Manifold Approximation and Projection, compact edition.

    Parameters mirror umap-learn's; ``n_epochs`` trades layout quality for
    runtime (the reproduction benches use a few hundred points, where ~150
    epochs converge).
    """

    def __init__(
        self,
        n_neighbors: int = 15,
        n_components: int = 2,
        min_dist: float = 0.1,
        spread: float = 1.0,
        n_epochs: int = 150,
        learning_rate: float = 1.0,
        negative_sample_rate: int = 5,
        seed: int = 0,
    ):
        if n_neighbors < 2:
            raise ValueError("n_neighbors must be >= 2")
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_neighbors = n_neighbors
        self.n_components = n_components
        self.min_dist = min_dist
        self.spread = spread
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.negative_sample_rate = negative_sample_rate
        self.seed = seed
        self.embedding_: Optional[np.ndarray] = None
        self.graph_: Optional[scipy.sparse.coo_matrix] = None

    # ------------------------------------------------------------------ #
    def _fuzzy_simplicial_set(self, data: np.ndarray) -> scipy.sparse.coo_matrix:
        n = len(data)
        k = min(self.n_neighbors, n - 1)
        tree = cKDTree(data)
        dists, idx = tree.query(data, k=k + 1)
        dists, idx = dists[:, 1:], idx[:, 1:]  # drop self
        rho, sigma = smooth_knn_weights(dists)
        weights = np.exp(-np.maximum(dists - rho[:, None], 0.0) / sigma[:, None])
        rows = np.repeat(np.arange(n), k)
        cols = idx.ravel()
        p = scipy.sparse.coo_matrix(
            (weights.ravel(), (rows, cols)), shape=(n, n)
        ).tocsr()
        transpose = p.T.tocsr()
        prod = p.multiply(transpose)
        fuzzy = p + transpose - prod
        return fuzzy.tocoo()

    def _spectral_init(self, graph: scipy.sparse.coo_matrix, rng: np.random.Generator) -> np.ndarray:
        n = graph.shape[0]
        try:
            adj = graph.tocsr()
            deg = np.asarray(adj.sum(axis=1)).ravel()
            deg[deg == 0] = 1.0
            d_inv_sqrt = scipy.sparse.diags(1.0 / np.sqrt(deg))
            lap = scipy.sparse.identity(n) - d_inv_sqrt @ adj @ d_inv_sqrt
            k = self.n_components + 1
            # Fixed ARPACK start vector keeps the whole projection
            # deterministic for a given seed.
            v0 = np.full(n, 1.0 / np.sqrt(n))
            vals, vecs = scipy.sparse.linalg.eigsh(lap, k=k, sigma=0.0, which="LM", v0=v0)
            order = np.argsort(vals)
            init = vecs[:, order[1 : self.n_components + 1]]
            scale = 10.0 / max(np.abs(init).max(), 1e-12)
            return init * scale + rng.normal(0, 1e-4, size=(n, self.n_components))
        except Exception:
            # ARPACK can fail on tiny/disconnected graphs; fall back to noise.
            return rng.normal(0.0, 1.0, size=(n, self.n_components))

    # ------------------------------------------------------------------ #
    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be 2-D (n_samples, n_features)")
        n = len(data)
        if n <= self.n_components:
            raise ValueError("need more samples than output dimensions")
        rng = np.random.default_rng(self.seed)
        graph = self._fuzzy_simplicial_set(data)
        self.graph_ = graph
        emb = self._spectral_init(graph, rng)

        a, b = fit_ab_params(self.spread, self.min_dist)
        # Per-edge application schedule, as in umap-learn: stronger edges
        # are moved more often.
        weights = graph.data
        # Drop edges whose membership strength is negligible — they would
        # never be scheduled anyway and their weight ratio overflows.
        mask = weights > weights.max() / 1e4
        heads, tails, weights = graph.row[mask], graph.col[mask], weights[mask]
        epochs_per_sample = np.maximum(weights.max() / weights, 1.0)

        lr0 = self.learning_rate
        next_epoch = epochs_per_sample.copy()
        for epoch in range(1, self.n_epochs + 1):
            alpha = lr0 * (1.0 - epoch / self.n_epochs)
            active = next_epoch <= epoch
            if not active.any():
                continue
            h, t = heads[active], tails[active]
            next_epoch[active] += epochs_per_sample[active]

            # Attractive step along each active edge.
            delta = emb[h] - emb[t]
            d2 = (delta * delta).sum(axis=1)
            coef = (-2.0 * a * b * d2 ** (b - 1.0)) / (1.0 + a * d2**b)
            coef = np.clip(coef[:, None] * delta, -4.0, 4.0)
            np.add.at(emb, h, alpha * coef)
            np.add.at(emb, t, -alpha * coef)

            # Repulsive steps against random points.
            for _ in range(self.negative_sample_rate):
                neg = rng.integers(0, n, size=len(h))
                delta = emb[h] - emb[neg]
                d2 = (delta * delta).sum(axis=1) + 1e-3
                coef = (2.0 * b) / (d2 * (1.0 + a * d2**b))
                coef = np.clip(coef[:, None] * delta, -4.0, 4.0)
                np.add.at(emb, h, alpha * coef)

        self.embedding_ = emb
        return emb
