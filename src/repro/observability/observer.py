"""``Observer``: one handle bundling tracer, op profiler, and metrics.

The trainer, strategies, and communicator are instrumented against this
object (duck-typed — they only call :meth:`span`), so a single
constructor argument turns a run from dark to fully observed:

* spans land in :attr:`tracer` (phase breakdown + Chrome trace),
* op-level timing in :attr:`op_profiler` (attached via ``profile()``),
* run counters in :attr:`metrics`, fed live by the
  :class:`MetricsReporter` callback and finalized from the communicator
  traffic log / stability guard after training.

``MetricsReporter`` is a standard trainer callback: every step it updates
``train.samples`` / ``train.steps`` / the ``train.step_seconds``
histogram and mirrors communicator traffic into ``comm.*`` counters;
every ``every_n_steps`` it emits a one-line progress report (kept on
``.lines``; printed when a stream is given) with samples/sec, allreduce
volume, retry and intervention counts — the periodic reporter the
scale-out benches read instead of guessing at throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.data.cache import publish_cache_metrics
from repro.observability.metrics import MetricsRegistry
from repro.observability.opprofile import OpProfiler
from repro.observability.tracer import NULL_SPAN, STEP_PHASES, Tracer
from repro.training.callbacks import Callback


class Observer:
    """Aggregates the three observability surfaces for one run."""

    def __init__(
        self,
        clock=None,
        profile_ops: bool = False,
        profile_memory: bool = True,
    ):
        self.tracer = Tracer(clock=clock)
        self.metrics = MetricsRegistry()
        self.op_profiler: Optional[OpProfiler] = (
            OpProfiler(clock=clock, profile_memory=profile_memory)
            if profile_ops
            else None
        )

    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def span_at(self, name: str, start: float, end: float, **attrs):
        """Record a span stretched onto a known [start, end] interval.

        Discrete-event loops (the serving batcher, the replica pool) learn
        a span's endpoints after the fact, on simulated time; the tracer
        stamps spans from its own clock, so the span is opened/closed
        immediately and its endpoints rewritten (``Span.start``/``end``
        are plain attributes).  Returns the span.
        """
        with self.tracer.span(name, **attrs) as span:
            pass
        span.start = start
        span.end = end
        return span

    def profile(self):
        """Context manager activating the per-op profiler (no-op if absent)."""
        return self.op_profiler if self.op_profiler is not None else NULL_SPAN

    def reporter(self, every_n_steps: int = 25, stream=None) -> "MetricsReporter":
        return MetricsReporter(self, every_n_steps=every_n_steps, stream=stream)

    # ------------------------------------------------------------------ #
    def finalize(self, strategy=None, guard=None) -> None:
        """Fold end-of-run state into the registry.

        Reads the communicator's traffic log (authoritative byte counts),
        the stability guard's summary, and the op profiler's memory
        high-water mark.  Safe to call multiple times (counters are set
        via gauges or delta-corrected).
        """
        comm = getattr(strategy, "comm", None) if strategy is not None else None
        if comm is not None:
            t = comm.traffic
            for key, value in (
                ("comm.allreduce.calls", t.allreduce_calls),
                ("comm.allreduce.bytes", t.allreduce_bytes),
                ("comm.bucket.reduce_scatter.calls", t.reduce_scatter_calls),
                ("comm.bucket.reduce_scatter.bytes", t.reduce_scatter_bytes),
                ("comm.bucket.allgather.calls", t.allgather_calls),
                ("comm.bucket.allgather.bytes", t.allgather_bytes),
                ("comm.retry.calls", t.retry_calls),
                ("comm.retry.bytes", t.retry_bytes),
            ):
                # Same counters the MetricsReporter feeds live; top up by
                # delta so finalize stays idempotent either way.
                counter = self.metrics.counter(key)
                if value > counter.value:
                    counter.inc(value - counter.value)
        if guard is not None:
            summary = guard.summary()
            self.metrics.gauge("stability.interventions").set(summary["interventions"])
            self.metrics.gauge("stability.spikes").set(summary["spikes"])
            self.metrics.gauge("stability.anomalies").set(summary["anomalies"])
        if self.op_profiler is not None:
            self.metrics.gauge("mem.peak_live_tensor_bytes").set(
                self.op_profiler.peak_live_bytes
            )
        # Data-pipeline cache accounting (hits/misses/evictions/bytes per
        # cache) — gauges, so repeated finalize calls stay idempotent.
        publish_cache_metrics(self.metrics)

    # ------------------------------------------------------------------ #
    # Report rendering
    # ------------------------------------------------------------------ #
    def phase_table(self) -> str:
        return self.tracer.format_phase_table()

    def aggregate_table(self) -> str:
        return self.tracer.format_table()

    def op_table(self, top: Optional[int] = 12) -> str:
        if self.op_profiler is None:
            return "(op profiler not attached)"
        return self.op_profiler.format_table(top=top)

    def metrics_table(self) -> str:
        return self.metrics.format_table()

    def export_chrome_trace(self, path: str) -> str:
        return self.tracer.export_chrome_trace(path)

    def report(self, top_ops: int = 12) -> str:
        """The full post-run report the CLI prints under ``--profile``."""
        sections = [
            "== step-phase breakdown ==",
            self.phase_table(),
            "",
            "== span aggregate ==",
            self.aggregate_table(),
        ]
        if self.op_profiler is not None:
            sections += ["", "== per-op autograd profile ==", self.op_table(top_ops)]
        sections += ["", "== metrics ==", self.metrics_table()]
        return "\n".join(sections)


class MetricsReporter(Callback):
    """Trainer callback feeding the metrics registry and reporting periodically."""

    def __init__(self, observer: Observer, every_n_steps: int = 25, stream=None):
        self.observer = observer
        self.every = max(int(every_n_steps), 1)
        self.stream = stream
        self.lines: List[str] = []
        self._clock = observer.tracer._now
        self._start: Optional[float] = None
        self._last_report_t: Optional[float] = None
        self._last_report_samples = 0.0
        self._traffic_seen: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    def _sync_traffic(self, trainer) -> None:
        comm = getattr(trainer.strategy, "comm", None)
        if comm is None:
            return
        metrics = self.observer.metrics
        t = comm.traffic
        for key, value in (
            ("comm.allreduce.calls", t.allreduce_calls),
            ("comm.allreduce.bytes", t.allreduce_bytes),
            ("comm.bucket.reduce_scatter.calls", t.reduce_scatter_calls),
            ("comm.bucket.reduce_scatter.bytes", t.reduce_scatter_bytes),
            ("comm.bucket.allgather.calls", t.allgather_calls),
            ("comm.bucket.allgather.bytes", t.allgather_bytes),
            ("comm.retry.calls", t.retry_calls),
            ("comm.retry.bytes", t.retry_bytes),
        ):
            prev = self._traffic_seen.get(key, 0.0)
            if value > prev:
                metrics.counter(key).inc(value - prev)
                self._traffic_seen[key] = float(value)

    # ------------------------------------------------------------------ #
    def on_train_start(self, trainer, task) -> None:
        now = self._clock()
        self._start = now
        self._last_report_t = now

    def on_step_end(self, trainer, task, step: int, loss: float, metrics: Dict) -> None:
        registry = self.observer.metrics
        registry.counter("train.steps").inc()
        registry.counter("train.samples").inc(trainer.last_batch_size)
        last_step = self.observer.tracer.last("step")
        if last_step is not None:
            registry.histogram("train.step_seconds").observe(last_step.duration)
        self._sync_traffic(trainer)
        guard = getattr(trainer, "stability", None)
        if guard is not None:
            registry.gauge("stability.interventions").set(guard.interventions)
        if step % self.every == 0:
            self._emit(trainer, step)

    def on_train_end(self, trainer, task) -> None:
        self._sync_traffic(trainer)
        registry = self.observer.metrics
        if self._start is not None:
            elapsed = max(self._clock() - self._start, 1e-9)
            registry.gauge("train.samples_per_sec").set(
                registry.value("train.samples") / elapsed
            )

    # ------------------------------------------------------------------ #
    def _emit(self, trainer, step: int) -> None:
        registry = self.observer.metrics
        now = self._clock()
        samples = registry.value("train.samples")
        window = max(now - (self._last_report_t if self._last_report_t else now), 1e-9)
        rate = (samples - self._last_report_samples) / window
        self._last_report_t = now
        self._last_report_samples = samples
        hist = registry.histogram("train.step_seconds")
        line = (
            f"[obs] step {step}: {rate:.1f} samples/s, "
            f"step p50 {hist.percentile(50) * 1e3:.1f} ms, "
            f"allreduce {registry.value('comm.allreduce.bytes') / 1e6:.2f} MB, "
            f"retries {registry.value('comm.retry.calls'):.0f}, "
            f"interventions {registry.value('stability.interventions'):.0f}"
        )
        self.lines.append(line)
        if self.stream is not None:
            print(line, file=self.stream)


__all__ = ["Observer", "MetricsReporter", "STEP_PHASES"]
