"""Per-op autograd profiling (the ``torch.autograd.profiler`` analogue).

``OpProfiler`` is a context manager that, while active:

* wraps every public primitive in :mod:`repro.autograd.functional` and
  every differentiable operator method on :class:`~repro.autograd.Tensor`
  to time **forward** execution, attributing *total* and *self* time (self
  excludes time spent in nested primitives, e.g. ``cross_entropy`` ->
  ``log_softmax`` -> ``exp``);
* hooks the tape via ``repro.autograd.tensor._PROFILER`` so every tensor
  created by an op records its **allocation bytes** (and live-tensor
  bytes, tracked to a high-water mark through weak references) and is
  tagged with the op that created it;
* times every **backward hop** in ``Tensor.backward`` and attributes it
  to the creating op, which is what makes "backward is dominated by
  ``matmul``" a measurable statement.

The clock is injectable (any zero-arg callable or ``now()``-bearing
object), so op-stat accumulation is testable deterministically.  Only one
profiler may be active per process at a time; activation is reversible
and leaves the autograd modules byte-identical on exit.
"""

from __future__ import annotations

import importlib
import threading
import weakref
from functools import wraps
from typing import Dict, List, Optional, Tuple

from repro.observability.tracer import normalize_clock

#: Tensor operator methods that open forward ops (name -> recorded op name).
_TENSOR_OPS = (
    "__add__",
    "__radd__",
    "__neg__",
    "__sub__",
    "__rsub__",
    "__mul__",
    "__rmul__",
    "__truediv__",
    "__rtruediv__",
    "__pow__",
    "__matmul__",
    "__getitem__",
    "reshape",
    "transpose",
    "squeeze",
    "unsqueeze",
    "sum",
    "mean",
    "max",
    "min",
)


def _tensor_module():
    """``repro.autograd.tensor`` (shadowed on the package by the factory fn)."""
    return importlib.import_module("repro.autograd.tensor")


def _functional_module():
    return importlib.import_module("repro.autograd.functional")


class OpStat:
    """Accumulated statistics for one (op, phase) pair."""

    __slots__ = ("name", "phase", "calls", "total", "self_time", "alloc_bytes", "allocs")

    def __init__(self, name: str, phase: str):
        self.name = name
        self.phase = phase
        self.calls = 0
        self.total = 0.0
        self.self_time = 0.0
        self.alloc_bytes = 0
        self.allocs = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "phase": self.phase,
            "calls": self.calls,
            "total": self.total,
            "self": self.self_time,
            "alloc_bytes": self.alloc_bytes,
            "allocs": self.allocs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpStat({self.name}/{self.phase}: calls={self.calls} "
            f"total={self.total:.6f} self={self.self_time:.6f} "
            f"alloc={self.alloc_bytes})"
        )


class _OpFrame:
    __slots__ = ("name", "start", "child")

    def __init__(self, name: str, start: float):
        self.name = name
        self.start = start
        self.child = 0.0


class OpProfiler:
    """Times each forward op and backward hop; accumulates op-level stats.

    Use as a context manager::

        with OpProfiler() as prof:
            loss = task.training_step(batch)[0]
            loss.backward()
        print(prof.format_table())
    """

    _active_lock = threading.Lock()
    _active: Optional["OpProfiler"] = None

    def __init__(self, clock=None, profile_memory: bool = True):
        self._now = normalize_clock(clock)
        self.profile_memory = profile_memory
        self.stats: Dict[Tuple[str, str], OpStat] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._saved_functional: Dict[str, object] = {}
        self._saved_tensor: Dict[str, object] = {}
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self.enabled = False

    # ------------------------------------------------------------------ #
    # Stat plumbing
    # ------------------------------------------------------------------ #
    def _stat(self, name: str, phase: str) -> OpStat:
        key = (name, phase)
        stat = self.stats.get(key)
        if stat is None:
            with self._lock:
                stat = self.stats.setdefault(key, OpStat(name, phase))
        return stat

    def _stack(self) -> List[_OpFrame]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_op(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1].name if stack else None

    # ------------------------------------------------------------------ #
    # Forward instrumentation (entry-point wrappers)
    # ------------------------------------------------------------------ #
    def _enter_op(self, name: str) -> _OpFrame:
        frame = _OpFrame(name, self._now())
        self._stack().append(frame)
        return frame

    def _exit_op(self, frame: _OpFrame) -> None:
        elapsed = self._now() - frame.start
        stack = self._stack()
        if stack and stack[-1] is frame:
            stack.pop()
        if stack:
            stack[-1].child += elapsed
        stat = self._stat(frame.name, "forward")
        with self._lock:
            stat.calls += 1
            stat.total += elapsed
            stat.self_time += elapsed - frame.child

    def _wrap(self, op_name: str, fn):
        profiler = self

        @wraps(fn)
        def wrapper(*args, **kwargs):
            frame = profiler._enter_op(op_name)
            try:
                return fn(*args, **kwargs)
            finally:
                profiler._exit_op(frame)

        wrapper.__repro_profiled__ = True
        return wrapper

    # ------------------------------------------------------------------ #
    # Tape hooks (called from repro.autograd.tensor)
    # ------------------------------------------------------------------ #
    def on_tensor_created(self, out, backward) -> None:
        """Record allocation for a freshly created op result and tag it."""
        name = self.current_op()
        if name is None:
            from repro.autograd.anomaly import op_name_of

            name = op_name_of(backward)
        out._op = name
        nbytes = int(out.data.nbytes)
        stat = self._stat(name, "forward")
        with self._lock:
            stat.alloc_bytes += nbytes
            stat.allocs += 1
            if self.profile_memory:
                self.live_bytes += nbytes
                if self.live_bytes > self.peak_live_bytes:
                    self.peak_live_bytes = self.live_bytes
        if self.profile_memory:
            weakref.finalize(out, self._on_tensor_freed, nbytes)

    def _on_tensor_freed(self, nbytes: int) -> None:
        with self._lock:
            self.live_bytes -= nbytes

    def record_backward(self, name: str, elapsed: float) -> None:
        """Attribute one backward hop's time to its creating op."""
        stat = self._stat(name or "unknown", "backward")
        with self._lock:
            stat.calls += 1
            stat.total += elapsed
            stat.self_time += elapsed

    # ------------------------------------------------------------------ #
    # Activation
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "OpProfiler":
        with OpProfiler._active_lock:
            if OpProfiler._active is not None:
                raise RuntimeError("another OpProfiler is already active")
            OpProfiler._active = self
        functional = _functional_module()
        for name in functional.__all__:
            fn = getattr(functional, name)
            self._saved_functional[name] = fn
            setattr(functional, name, self._wrap(name, fn))
        tensor_mod = _tensor_module()
        Tensor = tensor_mod.Tensor
        for method in _TENSOR_OPS:
            fn = Tensor.__dict__.get(method)
            if fn is None:
                continue
            self._saved_tensor[method] = fn
            setattr(Tensor, method, self._wrap(method.strip("_"), fn))
        tensor_mod._PROFILER = self
        self.enabled = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tensor_mod = _tensor_module()
        tensor_mod._PROFILER = None
        functional = _functional_module()
        for name, fn in self._saved_functional.items():
            setattr(functional, name, fn)
        self._saved_functional.clear()
        Tensor = tensor_mod.Tensor
        for method, fn in self._saved_tensor.items():
            setattr(Tensor, method, fn)
        self._saved_tensor.clear()
        self.enabled = False
        with OpProfiler._active_lock:
            OpProfiler._active = None

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self, phase: Optional[str] = None) -> List[OpStat]:
        """Stats sorted by total time (descending), optionally one phase."""
        with self._lock:
            rows = [
                s
                for s in self.stats.values()
                if phase is None or s.phase == phase
            ]
        return sorted(rows, key=lambda s: -s.total)

    def total_time(self, phase: Optional[str] = None) -> float:
        """Summed *self* time (avoids double counting nested ops)."""
        return sum(s.self_time for s in self.summary(phase))

    def backward_by_op(self) -> Dict[str, float]:
        """Backward time per creating op — the Fig. 3 attribution view."""
        return {s.name: s.total for s in self.summary("backward")}

    def format_table(self, top: Optional[int] = None) -> str:
        rows = self.summary()
        if top is not None:
            rows = rows[:top]
        lines = [
            f"{'op':<22} {'phase':<9} {'calls':>8} {'total (s)':>11} "
            f"{'self (s)':>11} {'alloc (MB)':>11}"
        ]
        for s in rows:
            lines.append(
                f"{s.name:<22} {s.phase:<9} {s.calls:>8d} {s.total:>11.4f} "
                f"{s.self_time:>11.4f} {s.alloc_bytes / 1e6:>11.3f}"
            )
        lines.append(
            f"peak live tensor bytes: {self.peak_live_bytes / 1e6:.3f} MB"
        )
        return "\n".join(lines)
