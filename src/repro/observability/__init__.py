"""Observability: hierarchical trace spans, per-op autograd profiling, metrics.

The measurement counterpart to the fault-tolerance (PR 1) and stability
(PR 2) layers: where those record *what* happened, this layer records
*how long* and *how much* — per-phase step-time breakdown (data /
forward / backward / comm / optim), per-op forward/backward timing with
allocation accounting, and a counters/gauges/histograms registry with a
periodic reporter.  Exports both an aggregate table and Chrome-trace
JSON (``chrome://tracing`` / Perfetto).

Typical use::

    obs = Observer(profile_ops=True)
    trainer = Trainer(cfg, strategy=strategy, observer=obs,
                      callbacks=[obs.reporter(every_n_steps=25)])
    with obs.profile():
        trainer.fit(task, train_loader, val_loader, optimizer)
    obs.finalize(strategy=strategy)
    print(obs.report())
    obs.export_chrome_trace("trace.json")
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.observer import MetricsReporter, Observer
from repro.observability.opprofile import OpProfiler, OpStat
from repro.observability.tracer import (
    NULL_SPAN,
    STEP_PHASES,
    Span,
    Tracer,
    maybe_span,
    normalize_clock,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsReporter",
    "Observer",
    "OpProfiler",
    "OpStat",
    "NULL_SPAN",
    "STEP_PHASES",
    "Span",
    "Tracer",
    "maybe_span",
    "normalize_clock",
]
