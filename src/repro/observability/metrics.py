"""Counters, gauges, and histograms behind a process-local registry.

The registry is the numeric side of the observability layer: spans say
*where time went*, metrics say *how much of everything happened* —
samples trained, bytes allreduced, retries survived, guard interventions,
peak live tensor bytes.  Naming follows a dotted ``subsystem.metric``
convention (``train.samples``, ``comm.allreduce.bytes``,
``stability.interventions``, ``mem.peak_live_tensor_bytes``).

Instruments are get-or-create by name and type-checked on collision, so
two call sites incrementing ``comm.retry.calls`` share one counter and a
site that mistakes it for a gauge fails loudly.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1) -> float:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount
        return self.value

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """Point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class Histogram:
    """Streaming distribution: count/sum/min/max plus kept samples.

    Samples are retained (bounded by ``max_samples``, reservoir-free FIFO)
    so tests and reports can ask for percentiles of step-time without a
    bucketing scheme to tune.
    """

    kind = "histogram"

    def __init__(self, name: str, max_samples: int = 4096):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.max_samples = max_samples
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self.samples) >= self.max_samples:
            self.samples.pop(0)
        self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q in [0, 100] over the retained samples (0 when empty)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Thread-safe name -> instrument registry."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} is a {inst.kind}, requested {cls.kind}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        return self._get(name, Histogram, max_samples=max_samples)

    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._instruments.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (histograms return their mean)."""
        inst = self.get(name)
        if inst is None:
            return default
        if isinstance(inst, Histogram):
            return inst.mean
        return inst.value

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in sorted(instruments.items())}

    def format_table(self) -> str:
        lines = [f"{'metric':<34} {'kind':<10} value"]
        for name, snap in self.snapshot().items():
            inst = self.get(name)
            if isinstance(inst, Histogram):
                value = (
                    f"count={snap['count']:.0f} mean={snap['mean']:.6g} "
                    f"p50={snap['p50']:.6g} p95={snap['p95']:.6g}"
                )
            else:
                value = f"{snap['value']:.6g}"
            lines.append(f"{name:<34} {inst.kind:<10} {value}")
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
