"""Hierarchical span tracer with Chrome-trace export.

The tracer answers *where a training step spends its time*.  Code wraps
regions in ``with tracer.span("forward"):`` context managers; spans nest
(per thread), carry attributes and counters, and are stamped on an
injectable clock — ``time.perf_counter`` for live runs, a
:class:`~repro.distributed.events.SimClock` (or any ``now()``-bearing
object / zero-arg callable) for deterministic tests.

Two export surfaces:

* :meth:`Tracer.aggregate` / :meth:`Tracer.format_table` — per-name call
  counts with total and *self* time (total minus time spent in child
  spans), the table the CLI prints after a ``--profile`` run;
* :meth:`Tracer.chrome_trace` / :meth:`Tracer.export_chrome_trace` — the
  ``chrome://tracing`` / Perfetto JSON format (complete ``"ph": "X"``
  events, microsecond timestamps), so a run can be inspected visually.

:meth:`Tracer.phase_breakdown` folds span names onto the canonical
step-phase vocabulary (``data`` / ``forward`` / ``backward`` / ``comm`` /
``optim``) the Fig. 2 throughput story is told in; dotted names map by
their first segment, so ``comm.allreduce`` counts toward ``comm``.

Instrumentation sites use :func:`maybe_span` so an un-traced run pays one
``None`` check and nothing else.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: The canonical step phases, in pipeline order (Fig. 2 breakdown).
STEP_PHASES = ("data", "forward", "backward", "comm", "optim")

#: Shared no-op context for disabled instrumentation (stateless, reusable).
NULL_SPAN = contextlib.nullcontext()


def normalize_clock(clock) -> Callable[[], float]:
    """Coerce a clock argument to a zero-arg callable returning seconds.

    Accepts None (-> ``time.perf_counter``), a callable, or an object with
    a ``now()`` method (e.g. the distributed layer's ``SimClock``).
    """
    if clock is None:
        return time.perf_counter
    if callable(clock):
        return clock
    now = getattr(clock, "now", None)
    if callable(now):
        return now
    raise TypeError(f"clock must be callable or have .now(), got {clock!r}")


def maybe_span(tracer: Optional["Tracer"], name: str, **attrs):
    """``tracer.span(...)`` when a tracer is attached, else a no-op context."""
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


class Span:
    """One completed (or still-open) timed region."""

    __slots__ = ("name", "start", "end", "tid", "parent", "depth", "attrs", "index")

    def __init__(self, name: str, start: float, tid: int, parent: Optional[int], depth: int, index: int):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.tid = tid
        self.parent = parent  # index of parent span in tracer.spans, or None
        self.depth = depth
        self.attrs: Dict[str, object] = {}
        self.index = index

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def incr(self, key: str, amount: float = 1) -> None:
        """Bump a numeric counter attribute on this span."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, t={self.start:.6f}->"
            f"{self.end if self.end is not None else '...'}, depth={self.depth})"
        )


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self.tracer._open(self.name, self.attrs)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._close(self.span)


class Tracer:
    """Thread-safe hierarchical span recorder on an injectable clock."""

    def __init__(self, clock=None):
        self._now = normalize_clock(clock)
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}  # thread ident -> dense tid
        self.origin = self._now()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._tids:
                self._tids[ident] = len(self._tids)
            return self._tids[ident]

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a named span: ``with tracer.span("forward", step=3): ...``"""
        return _SpanContext(self, name, attrs)

    def _open(self, name: str, attrs: Dict[str, object]) -> Span:
        stack = self._stack()
        parent = stack[-1].index if stack else None
        span = Span(
            name,
            start=self._now(),
            tid=self._tid(),
            parent=parent,
            depth=len(stack),
            index=-1,
        )
        if attrs:
            span.attrs.update(attrs)
        with self._lock:
            span.index = len(self.spans)
            self.spans.append(span)
        stack.append(span)
        return span

    def _close(self, span: Optional[Span]) -> None:
        if span is None:
            return
        stack = self._stack()
        # Tolerate (but do not crash on) mismatched exits.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        span.end = self._now()

    # ------------------------------------------------------------------ #
    # Current-span attribute helpers
    # ------------------------------------------------------------------ #
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def set_attr(self, key: str, value) -> None:
        """Attach an attribute to the current span (no-op when none open)."""
        span = self.current()
        if span is not None:
            span.attrs[key] = value

    def incr(self, key: str, amount: float = 1) -> None:
        """Bump a counter on the current span (no-op when none open)."""
        span = self.current()
        if span is not None:
            span.incr(key, amount)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def completed(self) -> List[Span]:
        with self._lock:
            return [s for s in self.spans if s.end is not None]

    def last(self, name: str) -> Optional[Span]:
        """Most recently *completed* span with this name."""
        with self._lock:
            for span in reversed(self.spans):
                if span.name == name and span.end is not None:
                    return span
        return None

    def wall_time(self) -> float:
        """Elapsed time from the first span start to the last span end."""
        spans = self.completed()
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name stats: calls, total time, self time, min/max duration.

        Self time is total minus the time spent in direct child spans, so
        a parent that only coordinates children aggregates to ~0 self.
        """
        spans = self.completed()
        child_time = [0.0] * len(self.spans)
        for s in spans:
            if s.parent is not None:
                child_time[s.parent] += s.duration
        table: Dict[str, Dict[str, float]] = {}
        for s in spans:
            row = table.setdefault(
                s.name,
                {"calls": 0, "total": 0.0, "self": 0.0, "min": float("inf"), "max": 0.0},
            )
            d = s.duration
            row["calls"] += 1
            row["total"] += d
            row["self"] += d - child_time[s.index]
            row["min"] = min(row["min"], d)
            row["max"] = max(row["max"], d)
        return table

    def format_table(self, sort_by: str = "total") -> str:
        """Render the aggregate table, widest consumers first."""
        table = self.aggregate()
        wall = self.wall_time()
        lines = [
            f"{'span':<24} {'calls':>7} {'total (s)':>11} {'self (s)':>11} {'% wall':>8}"
        ]
        for name, row in sorted(table.items(), key=lambda kv: -kv[1][sort_by]):
            pct = 100.0 * row["total"] / wall if wall > 0 else 0.0
            lines.append(
                f"{name:<24} {row['calls']:>7d} {row['total']:>11.4f} "
                f"{row['self']:>11.4f} {pct:>7.1f}%"
            )
        lines.append(f"{'wall time':<24} {'':>7} {wall:>11.4f}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Phase breakdown (the Fig. 2 per-step decomposition)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _phase_of(name: str, phases: Sequence[str]) -> Optional[str]:
        head = name.split(".", 1)[0]
        return head if head in phases else None

    def phase_breakdown(
        self, phases: Sequence[str] = STEP_PHASES
    ) -> Dict[str, float]:
        """Total seconds per canonical phase plus ``other`` and ``wall``.

        A span counts toward its phase only when no ancestor already maps
        to a phase, so nested same-phase instrumentation never double
        counts.  ``other`` is wall time not covered by any phase.
        """
        spans = self.completed()
        by_index: Dict[int, Span] = {s.index: s for s in self.spans}

        def ancestor_in_phase(span: Span) -> bool:
            parent = span.parent
            while parent is not None:
                p = by_index.get(parent)
                if p is None:
                    break
                if self._phase_of(p.name, phases) is not None:
                    return True
                parent = p.parent
            return False

        totals = {phase: 0.0 for phase in phases}
        for s in spans:
            phase = self._phase_of(s.name, phases)
            if phase is None or ancestor_in_phase(s):
                continue
            totals[phase] += s.duration
        wall = self.wall_time()
        totals["other"] = max(wall - sum(totals[p] for p in phases), 0.0)
        totals["wall"] = wall
        return totals

    def phase_coverage(self, phases: Sequence[str] = STEP_PHASES) -> float:
        """Fraction of wall time accounted for by the canonical phases."""
        totals = self.phase_breakdown(phases)
        if totals["wall"] <= 0:
            return 0.0
        return sum(totals[p] for p in phases) / totals["wall"]

    def format_phase_table(self, phases: Sequence[str] = STEP_PHASES) -> str:
        totals = self.phase_breakdown(phases)
        wall = totals["wall"]
        lines = [f"{'phase':<12} {'total (s)':>11} {'% wall':>8}"]
        for phase in list(phases) + ["other"]:
            pct = 100.0 * totals[phase] / wall if wall > 0 else 0.0
            lines.append(f"{phase:<12} {totals[phase]:>11.4f} {pct:>7.1f}%")
        lines.append(f"{'wall':<12} {wall:>11.4f} {100.0 if wall > 0 else 0.0:>7.1f}%")
        coverage = 100.0 * self.phase_coverage(phases)
        lines.append(f"phases cover {coverage:.1f}% of wall time")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Chrome trace export
    # ------------------------------------------------------------------ #
    def chrome_trace(self) -> Dict[str, object]:
        """The ``chrome://tracing`` JSON object (complete "X" events, µs)."""
        events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        for s in self.completed():
            event: Dict[str, object] = {
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ph": "X",
                "ts": (s.start - self.origin) * 1e6,
                "dur": s.duration * 1e6,
                "pid": 0,
                "tid": s.tid,
            }
            if s.attrs:
                event["args"] = {k: _jsonable(v) for k, v in s.attrs.items()}
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
        return path

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
        self._local = threading.local()
        self.origin = self._now()

    def __len__(self) -> int:
        return len(self.spans)


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)
