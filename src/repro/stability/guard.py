"""The training stability guard: detection, rank agreement, recovery.

``StabilityGuard`` sits between the trainer's backward pass and
``optimizer.step``.  Each step it:

1. scores every simulated DDP rank's shard loss with that rank's own
   rolling median/MAD spike detector (real ranks only see their own
   shard loss, so detection state is kept per rank);
2. agrees on a single verdict across ranks through the communicator's
   ``allreduce(op="max")`` — any flagging rank escalates every rank, so
   workers never diverge on whether a step happened;
3. runs the gradient-norm and eps-floor monitors off
   ``Adam.update_statistics`` and emits structured alerts;
4. on a confirmed spike, records a ``spike`` event and hands the trainer
   to the configured recovery policy (``skip_batch`` / ``lr_backoff`` /
   ``rollback``); on a healthy step it lets the policy re-warm any
   pending LR cut.

Autograd anomalies (:class:`~repro.autograd.NumericalAnomalyError` raised
under the trainer's ``detect_anomaly`` mode) enter through
:meth:`on_anomaly` and take the same recovery path, with the offending op
name recorded in the event.

The guard is deliberately trainer-agnostic: it only touches
``trainer.optimizer``/``trainer.scheduler``/``trainer.strategy`` plus the
checkpoint-restore hook, so tests can drive it with a stub.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.distributed.events import (
    ANOMALY,
    EPS_FLOOR_ALERT,
    GIVE_UP,
    GRAD_NORM_ALERT,
    SPIKE,
    EventLog,
)
from repro.stability.detectors import (
    EpsFloorMonitor,
    GradNormMonitor,
    RollingSpikeDetector,
)
from repro.stability.policies import RecoveryPolicy, make_policy


@dataclass
class StabilityConfig:
    """Thresholds and recovery behaviour of the guard.

    Defaults are calibrated on the Fig. 3 large-batch pretraining setting:
    a 16-step window, 6-MAD z-score with a 10x-median multiplicative
    guard, halve-and-rewarm LR handling, and a generous intervention
    budget so an unrecoverable run degrades to pass-through instead of
    spinning forever.
    """

    window: int = 16
    threshold: float = 6.0
    spike_factor: float = 10.0
    warmup_steps: int = 5
    policy: str = "lr_backoff"
    backoff_factor: float = 0.5
    rewarm_steps: int = 20
    max_interventions: int = 32
    grad_norm_factor: float = 100.0
    eps_floor_threshold: float = 0.9
    eps_floor_patience: int = 3
    monitor_every: int = 1


class StabilityGuard:
    """Loss-spike detection with rank agreement and pluggable recovery."""

    def __init__(
        self,
        config: Optional[StabilityConfig] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.config = config if config is not None else StabilityConfig()
        self.events = events if events is not None else EventLog()
        self.policy: RecoveryPolicy = make_policy(
            self.config.policy,
            backoff_factor=self.config.backoff_factor,
            rewarm_steps=self.config.rewarm_steps,
        )
        self._rank_detectors: List[RollingSpikeDetector] = []
        self.grad_monitor = GradNormMonitor(
            factor=self.config.grad_norm_factor, window=self.config.window
        )
        self.eps_monitor = EpsFloorMonitor(
            threshold=self.config.eps_floor_threshold,
            patience=self.config.eps_floor_patience,
        )
        self.interventions = 0
        self.exhausted = False
        #: Pre-agreement local votes and the agreed per-rank verdicts of
        #: the most recent step (tests assert the latter are identical).
        self.last_votes: List[bool] = []
        self.last_agreed: List[bool] = []

    # ------------------------------------------------------------------ #
    def _make_detector(self) -> RollingSpikeDetector:
        return RollingSpikeDetector(
            window=self.config.window,
            threshold=self.config.threshold,
            spike_factor=self.config.spike_factor,
            warmup=self.config.warmup_steps,
        )

    def _detectors_for(self, n: int) -> List[RollingSpikeDetector]:
        """Per-rank detectors, resized for elastic world changes."""
        while len(self._rank_detectors) < n:
            self._rank_detectors.append(self._make_detector())
        return self._rank_detectors[:n]

    # ------------------------------------------------------------------ #
    def _agree(self, strategy, votes: List[bool]) -> List[bool]:
        """Reduce per-rank votes to identical per-rank verdicts.

        Goes through the communicator's allreduce (max) when the strategy
        has one, exactly as a real job would; a fault injected into that
        collective falls back to the local reduction so the guard never
        turns a comm fault into a lost verdict.
        """
        comm = getattr(strategy, "comm", None)
        if comm is not None and comm.world_size == len(votes) > 1:
            from repro.distributed.faults import AllreduceTimeout, RankCrash

            try:
                reduced = comm.allreduce(
                    [np.asarray(float(v)) for v in votes], op="max"
                )
                return [bool(float(r) > 0.0) for r in reduced]
            except (RankCrash, AllreduceTimeout):
                pass
        return [any(votes)] * len(votes)

    # ------------------------------------------------------------------ #
    def _run_monitors(self, trainer, record) -> bool:
        """Gradient-norm / eps-floor monitors; True forces an intervention."""
        optimizer = trainer.optimizer
        if optimizer is None or not hasattr(optimizer, "update_statistics"):
            return False
        if trainer.global_step % max(self.config.monitor_every, 1) != 0:
            return False
        stats = optimizer.update_statistics()
        force = False
        gv = self.grad_monitor.observe(stats.get("grad_norm", 0.0))
        if gv.flagged:
            record(GRAD_NORM_ALERT, **gv.as_detail())
            # A non-finite gradient norm would poison the parameters on
            # step(); escalate it even when the loss still looks healthy.
            force = gv.reason == "nonfinite"
        ev = self.eps_monitor.observe(stats.get("eps_floor_fraction", 0.0))
        if ev.flagged:
            record(EPS_FLOOR_ALERT, **ev.as_detail())
        return force

    # ------------------------------------------------------------------ #
    def _intervene(self, trainer, task, record) -> bool:
        """Apply the recovery policy within the intervention budget."""
        if self.interventions >= self.config.max_interventions:
            if not self.exhausted:
                self.exhausted = True
                record(GIVE_UP, guard=True, interventions=self.interventions)
            return False
        self.interventions += 1
        self.policy.on_spike(trainer, task, record)
        return True

    def guard_step(self, trainer, task, loss: float) -> bool:
        """Check one completed forward/backward; True = skip optimizer.step.

        Called by the trainer with averaged gradients on the parameters
        and ``loss`` the global (post-mask) scalar training loss.
        """
        step = trainer.global_step

        def record(kind, **detail):
            return self.events.record(kind, step=step, **detail)

        strategy = trainer.strategy
        rank_losses = list(getattr(strategy, "last_rank_losses", None) or [loss])
        detectors = self._detectors_for(len(rank_losses))
        verdicts = [d.score(v) for d, v in zip(detectors, rank_losses)]
        votes = [v.flagged for v in verdicts]
        agreed = self._agree(strategy, votes)
        self.last_votes = votes
        self.last_agreed = agreed

        forced = self._run_monitors(trainer, record)
        spiking = agreed[0] or forced

        if not spiking:
            for detector, value in zip(detectors, rank_losses):
                detector.absorb(value)
            self.policy.on_healthy_step(trainer, record)
            return False

        worst = max(
            (v for v in verdicts if v.flagged),
            key=lambda v: (v.score if np.isfinite(v.score) else np.inf),
            default=verdicts[0],
        )
        record(
            SPIKE,
            loss=float(loss) if np.isfinite(loss) else None,
            votes=list(votes),
            agreed=list(agreed),
            policy=self.policy.name,
            forced_by_monitor=bool(forced and not agreed[0]),
            **worst.as_detail(),
        )
        return self._intervene(trainer, task, record)

    # ------------------------------------------------------------------ #
    def on_anomaly(self, trainer, task, error) -> bool:
        """Recovery entry point for autograd anomaly-tracing errors."""
        step = trainer.global_step

        def record(kind, **detail):
            return self.events.record(kind, step=step, **detail)

        record(
            ANOMALY,
            op=getattr(error, "op", "unknown"),
            phase=getattr(error, "phase", "unknown"),
            shape=list(getattr(error, "shape", ())),
            hop=getattr(error, "hop", None),
            policy=self.policy.name,
        )
        return self._intervene(trainer, task, record)

    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Counters for CLI/bench reporting."""
        return {
            "interventions": self.interventions,
            "spikes": self.events.count(SPIKE),
            "anomalies": self.events.count(ANOMALY),
            "grad_norm_alerts": self.events.count(GRAD_NORM_ALERT),
            "eps_floor_alerts": self.events.count(EPS_FLOOR_ALERT),
            "policy": self.policy.name,
            "lr_deficit": self.policy.deficit,
            "exhausted": self.exhausted,
        }
