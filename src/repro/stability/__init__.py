"""Numerical stability guard: anomaly tracing, spike detection, recovery.

Public surface:

* :func:`repro.autograd.detect_anomaly` / :class:`NumericalAnomalyError`
  (re-exported here for convenience) — tape-level non-finite tracing.
* :class:`StabilityGuard` / :class:`StabilityConfig` — the trainer-facing
  orchestrator combining per-rank spike detection, cross-rank agreement,
  optimizer-statistics monitors and recovery policies.
* :class:`RollingSpikeDetector`, :class:`GradNormMonitor`,
  :class:`EpsFloorMonitor` — the individual detectors.
* :func:`make_policy` and the ``skip_batch`` / ``lr_backoff`` /
  ``rollback`` policy classes.
"""

from repro.autograd.anomaly import NumericalAnomalyError, anomaly_enabled, detect_anomaly
from repro.stability.detectors import (
    MAD_SIGMA,
    EpsFloorMonitor,
    GradNormMonitor,
    RollingSpikeDetector,
    Verdict,
)
from repro.stability.guard import StabilityConfig, StabilityGuard
from repro.stability.policies import (
    POLICIES,
    LRBackoff,
    RecoveryPolicy,
    Rollback,
    SkipBatch,
    make_policy,
)

__all__ = [
    "MAD_SIGMA",
    "EpsFloorMonitor",
    "GradNormMonitor",
    "LRBackoff",
    "NumericalAnomalyError",
    "POLICIES",
    "RecoveryPolicy",
    "Rollback",
    "RollingSpikeDetector",
    "SkipBatch",
    "StabilityConfig",
    "StabilityGuard",
    "Verdict",
    "anomaly_enabled",
    "detect_anomaly",
    "make_policy",
]
