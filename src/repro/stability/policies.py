"""Recovery policies: what to do once the guard declares a spike.

Three strategies, in increasing order of intervention, following the spike
mitigation recipes surveyed for scalable crystal pretraining:

* ``skip_batch`` — zero the offending step and keep going.  Cheap; right
  when the spike is a one-off bad batch rather than poisoned parameters.
* ``lr_backoff`` — skip the step *and* cut the learning rate by a
  multiplicative factor, then re-warm it geometrically over the next
  healthy steps.  Right when the schedule pushed Adam past its stability
  edge (the Fig. 3 regime): the cut moves the run back inside the stable
  region, the re-warm probes whether the edge has moved.
* ``rollback`` — restore the last-good CRC-checked checkpoint (model +
  optimizer moments + RNG streams via ``checkpoint_io``), then resume
  with a reduced learning rate under the same re-warm.  Right when the
  loss reveals parameters that are already poisoned.

Every policy mutates training only through the trainer handle it is given
and records its transitions in the event log via the guard.
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.events import GUARD_SKIP, LR_BACKOFF, LR_REWARM, ROLLBACK

#: Registry name -> class, populated at the bottom of the module.
POLICIES = {}


class RecoveryPolicy:
    """Base policy.  Subclasses override ``on_spike``; the re-warm ladder
    in ``on_healthy_step`` is shared by the LR-cutting policies."""

    name = "base"

    def __init__(self, backoff_factor: float = 0.5, rewarm_steps: int = 20):
        if not 0.0 < backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be in (0, 1), got {backoff_factor}")
        if rewarm_steps < 1:
            raise ValueError(f"rewarm_steps must be >= 1, got {rewarm_steps}")
        self.backoff_factor = backoff_factor
        self.rewarm_steps = rewarm_steps
        #: Current multiplicative LR deficit (1.0 = schedule-nominal rate).
        self.deficit = 1.0
        # Per-step re-warm ratio: one full cut recovers over rewarm_steps.
        self._rewarm_ratio = (1.0 / backoff_factor) ** (1.0 / rewarm_steps)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _scale_lr(trainer, factor: float) -> float:
        """Scale the live LR and the scheduler target (so epoch-boundary
        scheduler steps do not silently undo the cut); returns the new LR."""
        trainer.optimizer.lr *= factor
        if trainer.scheduler is not None:
            trainer.scheduler.target_lr *= factor
        return trainer.optimizer.lr

    def _cut(self, trainer) -> float:
        self.deficit *= self.backoff_factor
        return self._scale_lr(trainer, self.backoff_factor)

    # ------------------------------------------------------------------ #
    def on_spike(self, trainer, task, record) -> str:
        """Handle a confirmed spike; returns the event kind recorded.

        ``record(kind, **detail)`` appends to the guard's event log.
        """
        raise NotImplementedError

    def on_healthy_step(self, trainer, record) -> None:
        """Re-warm a cut learning rate geometrically back to nominal."""
        if self.deficit >= 1.0:
            return
        step = min(self._rewarm_ratio, 1.0 / self.deficit)
        self._scale_lr(trainer, step)
        self.deficit = min(self.deficit * step, 1.0)
        if self.deficit >= 1.0:
            record(LR_REWARM, lr=trainer.optimizer.lr)


class SkipBatch(RecoveryPolicy):
    """Zero the poisoned step; parameters and LR are untouched."""

    name = "skip_batch"

    def on_spike(self, trainer, task, record) -> str:
        record(GUARD_SKIP, lr=trainer.optimizer.lr)
        return GUARD_SKIP


class LRBackoff(RecoveryPolicy):
    """Skip the step and cut the LR, with a scheduled geometric re-warm."""

    name = "lr_backoff"

    def on_spike(self, trainer, task, record) -> str:
        lr = self._cut(trainer)
        record(LR_BACKOFF, lr=lr, factor=self.backoff_factor, deficit=self.deficit)
        return LR_BACKOFF


class Rollback(RecoveryPolicy):
    """Restore the last-good checkpoint, then resume at a reduced LR.

    Requires the trainer to run with a :class:`RecoveryConfig` — the same
    CRC-checked recovery points the fault-tolerance path writes (model,
    optimizer moments, loop position, per-module RNG streams), so the
    restored state is bit-exact.  The checkpoint restores the LR that was
    live when it was saved; the fresh cut is applied on top of it.
    """

    name = "rollback"

    def on_spike(self, trainer, task, record) -> str:
        if trainer.recovery is None:
            raise RuntimeError(
                "rollback recovery policy requires the trainer to be "
                "configured with a RecoveryConfig (checkpoint_dir)"
            )
        restored_step = trainer.global_step
        trainer._restore_recovery_point(task)
        lr = self._cut(trainer)
        record(
            ROLLBACK,
            from_step=restored_step,
            to_step=trainer.global_step,
            lr=lr,
            factor=self.backoff_factor,
        )
        return ROLLBACK


POLICIES = {p.name: p for p in (SkipBatch, LRBackoff, Rollback)}


def make_policy(
    name: str,
    backoff_factor: float = 0.5,
    rewarm_steps: int = 20,
) -> RecoveryPolicy:
    """Instantiate a recovery policy by registry name."""
    if name not in POLICIES:
        raise ValueError(
            f"unknown recovery policy {name!r}; expected one of {sorted(POLICIES)}"
        )
    return POLICIES[name](backoff_factor=backoff_factor, rewarm_steps=rewarm_steps)
