"""Numerical-stability detectors: loss spikes, gradient norms, eps floor.

The paper's Fig. 3 instability shows up in three observables, each with its
own detector here:

* :class:`RollingSpikeDetector` — the primary trigger.  A robust z-score
  over a rolling window of recent losses (median/MAD, the standard
  outlier-resistant recipe used by the spike-mitigation literature for
  crystal pretraining); non-finite losses and losses beyond a
  multiplicative factor of the rolling median also flag, covering the
  "loss -> NaN" and ">10x median" divergence signatures directly.
* :class:`GradNormMonitor` — flags when the global gradient norm is
  non-finite or explodes past a factor of its own rolling median (the
  quantity Molybog et al. correlate with Adam divergence events).
* :class:`EpsFloorMonitor` — flags when the fraction of second-moment
  entries at Adam's eps floor (``Adam.update_statistics``) crosses a
  threshold: the documented *precondition* for the large-batch spikes, so
  it fires as an early warning before the loss ever moves.

Detectors are pure observers: ``observe`` returns a verdict dict and never
touches the model.  Spiking samples are *not* absorbed into the rolling
window, so one spike cannot inflate the MAD and mask its successors.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

import numpy as np

#: Scale factor turning a MAD into a consistent sigma estimate for
#: normally distributed data.
MAD_SIGMA = 1.4826


@dataclass
class Verdict:
    """One detector decision about one observation."""

    flagged: bool
    reason: str = ""
    value: float = float("nan")
    median: float = float("nan")
    score: float = float("nan")

    def as_detail(self) -> Dict[str, object]:
        """Event-log payload (finite floats only, NaN -> None)."""
        def _clean(x: float) -> Optional[float]:
            return float(x) if math.isfinite(x) else None

        return {
            "reason": self.reason,
            "value": _clean(self.value),
            "median": _clean(self.median),
            "score": _clean(self.score),
        }


class RollingSpikeDetector:
    """Median/MAD loss-spike detector over a rolling window.

    Parameters
    ----------
    window:
        Number of recent healthy losses retained.
    threshold:
        Robust z-score (MADs above the median) that counts as a spike.
    spike_factor:
        Multiplicative guard: ``loss > spike_factor * median`` flags even
        when the MAD is tiny (a flat-lined window makes z-scores explode
        for harmless wiggles, so both conditions must be principled).
    warmup:
        Observations absorbed unconditionally before detection starts
        (initial losses are legitimately far from their final scale).
    """

    def __init__(
        self,
        window: int = 16,
        threshold: float = 6.0,
        spike_factor: float = 10.0,
        warmup: int = 5,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if threshold <= 0 or spike_factor <= 1:
            raise ValueError("threshold must be > 0 and spike_factor > 1")
        self.window = window
        self.threshold = threshold
        self.spike_factor = spike_factor
        self.warmup = warmup
        self.values: Deque[float] = deque(maxlen=window)
        self.observed = 0
        self.flag_count = 0

    # ------------------------------------------------------------------ #
    def _stats(self) -> tuple:
        arr = np.asarray(self.values, dtype=np.float64)
        med = float(np.median(arr))
        mad = float(np.median(np.abs(arr - med)))
        return med, mad

    def score(self, value: float) -> Verdict:
        """Pure decision about one loss sample (no window mutation).

        The guard scores every rank, agrees on a verdict through the
        communicator, and only then :meth:`absorb`s healthy samples — so
        rank windows stay identical regardless of which rank flagged.
        """
        value = float(value)
        self.observed += 1
        if not math.isfinite(value):
            self.flag_count += 1
            return Verdict(True, reason="nonfinite", value=value)
        if self.observed <= self.warmup or len(self.values) < 2:
            return Verdict(False, reason="warmup", value=value)
        med, mad = self._stats()
        sigma = max(MAD_SIGMA * mad, 1e-12, 1e-3 * abs(med))
        score = (value - med) / sigma
        if score > self.threshold and value > self.spike_factor * med > 0:
            self.flag_count += 1
            return Verdict(True, reason="spike", value=value, median=med, score=score)
        return Verdict(False, value=value, median=med, score=score)

    def absorb(self, value: float) -> None:
        """Add a healthy sample to the rolling window."""
        value = float(value)
        if math.isfinite(value):
            self.values.append(value)

    def observe(self, value: float) -> Verdict:
        """Score one loss sample; healthy samples join the window."""
        verdict = self.score(value)
        if not verdict.flagged:
            self.absorb(value)
        return verdict


class GradNormMonitor:
    """Flag non-finite or exploding global gradient norms."""

    def __init__(self, factor: float = 100.0, window: int = 16, warmup: int = 5):
        if factor <= 1:
            raise ValueError(f"factor must be > 1, got {factor}")
        self.factor = factor
        self.warmup = warmup
        self.values: Deque[float] = deque(maxlen=window)
        self.observed = 0
        self.flag_count = 0

    def observe(self, norm: float) -> Verdict:
        norm = float(norm)
        self.observed += 1
        if not math.isfinite(norm):
            self.flag_count += 1
            return Verdict(True, reason="nonfinite", value=norm)
        if self.observed <= self.warmup or len(self.values) < 2:
            self.values.append(norm)
            return Verdict(False, reason="warmup", value=norm)
        med = float(np.median(np.asarray(self.values)))
        if med > 0 and norm > self.factor * med:
            self.flag_count += 1
            return Verdict(True, reason="explode", value=norm, median=med)
        self.values.append(norm)
        return Verdict(False, value=norm, median=med)


class EpsFloorMonitor:
    """Flag a high eps-floor fraction in Adam's second moments.

    ``fraction`` comes from :meth:`repro.optim.Adam.update_statistics`:
    the share of ``v`` entries below ``eps**2``.  Large fractions mean the
    effective update is dominated by the division guard and layer-wise
    dynamics decouple — the Molybog et al. precondition for spikes.
    """

    def __init__(self, threshold: float = 0.9, patience: int = 3):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.patience = patience
        self.streak = 0
        self.flag_count = 0

    def observe(self, fraction: float) -> Verdict:
        fraction = float(fraction)
        if fraction >= self.threshold:
            self.streak += 1
        else:
            self.streak = 0
        if self.streak == self.patience:
            # Alert once per sustained excursion, not every step of it.
            self.flag_count += 1
            return Verdict(True, reason="eps_floor", value=fraction)
        return Verdict(False, value=fraction)
