"""A compact periodic table for the surrogate label engine.

Values are approximate (Pauling electronegativity, single-bond covalent
radii in angstrom, valence electron counts) — adequate for a *surrogate*
DFT: what matters downstream is that element identity maps smoothly and
deterministically onto interaction parameters, giving the encoders a
learnable chemistry signal with realistic structure (electronegativity
trends across periods, radius trends down groups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

# (symbol, electronegativity, covalent_radius_A, valence_electrons)
_RAW: Tuple[Tuple[str, float, float, int], ...] = (
    ("H", 2.20, 0.31, 1), ("He", 4.16, 0.28, 2),
    ("Li", 0.98, 1.28, 1), ("Be", 1.57, 0.96, 2), ("B", 2.04, 0.84, 3),
    ("C", 2.55, 0.76, 4), ("N", 3.04, 0.71, 5), ("O", 3.44, 0.66, 6),
    ("F", 3.98, 0.57, 7), ("Ne", 4.79, 0.58, 8),
    ("Na", 0.93, 1.66, 1), ("Mg", 1.31, 1.41, 2), ("Al", 1.61, 1.21, 3),
    ("Si", 1.90, 1.11, 4), ("P", 2.19, 1.07, 5), ("S", 2.58, 1.05, 6),
    ("Cl", 3.16, 1.02, 7), ("Ar", 3.24, 1.06, 8),
    ("K", 0.82, 2.03, 1), ("Ca", 1.00, 1.76, 2), ("Sc", 1.36, 1.70, 3),
    ("Ti", 1.54, 1.60, 4), ("V", 1.63, 1.53, 5), ("Cr", 1.66, 1.39, 6),
    ("Mn", 1.55, 1.39, 7), ("Fe", 1.83, 1.32, 8), ("Co", 1.88, 1.26, 9),
    ("Ni", 1.91, 1.24, 10), ("Cu", 1.90, 1.32, 11), ("Zn", 1.65, 1.22, 12),
    ("Ga", 1.81, 1.22, 3), ("Ge", 2.01, 1.20, 4), ("As", 2.18, 1.19, 5),
    ("Se", 2.55, 1.20, 6), ("Br", 2.96, 1.20, 7), ("Kr", 3.00, 1.16, 8),
    ("Rb", 0.82, 2.20, 1), ("Sr", 0.95, 1.95, 2), ("Y", 1.22, 1.90, 3),
    ("Zr", 1.33, 1.75, 4), ("Nb", 1.60, 1.64, 5), ("Mo", 2.16, 1.54, 6),
    ("Tc", 1.90, 1.47, 7), ("Ru", 2.20, 1.46, 8), ("Rh", 2.28, 1.42, 9),
    ("Pd", 2.20, 1.39, 10), ("Ag", 1.93, 1.45, 11), ("Cd", 1.69, 1.44, 12),
    ("In", 1.78, 1.42, 3), ("Sn", 1.96, 1.39, 4), ("Sb", 2.05, 1.39, 5),
    ("Te", 2.10, 1.38, 6), ("I", 2.66, 1.39, 7), ("Xe", 2.60, 1.40, 8),
    ("Cs", 0.79, 2.44, 1), ("Ba", 0.89, 2.15, 2), ("La", 1.10, 2.07, 3),
    ("Ce", 1.12, 2.04, 4), ("Pr", 1.13, 2.03, 5), ("Nd", 1.14, 2.01, 6),
    ("Pm", 1.13, 1.99, 7), ("Sm", 1.17, 1.98, 8), ("Eu", 1.20, 1.98, 9),
    ("Gd", 1.20, 1.96, 10), ("Tb", 1.22, 1.94, 11), ("Dy", 1.23, 1.92, 12),
    ("Ho", 1.24, 1.92, 13), ("Er", 1.24, 1.89, 14), ("Tm", 1.25, 1.90, 15),
    ("Yb", 1.10, 1.87, 16), ("Lu", 1.27, 1.87, 3),
    ("Hf", 1.30, 1.75, 4), ("Ta", 1.50, 1.70, 5), ("W", 2.36, 1.62, 6),
    ("Re", 1.90, 1.51, 7), ("Os", 2.20, 1.44, 8), ("Ir", 2.20, 1.41, 9),
    ("Pt", 2.28, 1.36, 10), ("Au", 2.54, 1.36, 11), ("Hg", 2.00, 1.32, 12),
    ("Tl", 1.62, 1.45, 3), ("Pb", 2.33, 1.46, 4), ("Bi", 2.02, 1.48, 5),
    ("Po", 2.00, 1.40, 6), ("At", 2.20, 1.50, 7), ("Rn", 2.20, 1.50, 8),
    ("Fr", 0.70, 2.60, 1), ("Ra", 0.90, 2.21, 2), ("Ac", 1.10, 2.15, 3),
)

MAX_Z = len(_RAW)


@dataclass(frozen=True)
class Element:
    """One element's properties as used by the surrogate potential."""

    z: int
    symbol: str
    electronegativity: float
    covalent_radius: float
    valence_electrons: int


PERIODIC_TABLE: Dict[int, Element] = {
    z: Element(z, sym, en, radius, val)
    for z, (sym, en, radius, val) in enumerate(_RAW, start=1)
}

_BY_SYMBOL: Dict[str, Element] = {e.symbol: e for e in PERIODIC_TABLE.values()}


def element(key) -> Element:
    """Look up an element by atomic number or symbol."""
    if isinstance(key, str):
        try:
            return _BY_SYMBOL[key]
        except KeyError:
            raise KeyError(f"unknown element symbol {key!r}")
    z = int(key)
    try:
        return PERIODIC_TABLE[z]
    except KeyError:
        raise KeyError(f"atomic number {z} outside table range 1..{MAX_Z}")
