"""LiPS-style surrogate: an MD trajectory of a single solid electrolyte.

The real LiPS dataset (Batzner et al.) is a molecular-dynamics trajectory of
one lithium-phosphorus-sulfide composition with energy/force labels.  The
surrogate runs Langevin dynamics on a fixed Li/P/S cell under the surrogate
pair potential and exposes trajectory snapshots as samples.  Because every
frame is a thermal perturbation of the same structure, the dataset forms a
single tight cluster in embedding space — the calibration point of the
paper's UMAP analysis (Fig. 4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.data.structures import Structure
from repro.datasets.surrogate_dft import SurrogateDFT
from repro.geometry.lattice import Lattice


def langevin_step(
    positions: np.ndarray,
    velocities: np.ndarray,
    forces: np.ndarray,
    masses: np.ndarray,
    dt: float,
    friction: float,
    temperature_energy: float,
    rng: np.random.Generator,
) -> tuple:
    """One BAOAB-flavoured Langevin step; returns updated (positions, velocities).

    Units: positions angstrom, energies eV, masses amu — the conversion
    constant folds into the effective timestep, which is all that matters
    for generating thermally plausible configurations.
    """
    inv_m = 1.0 / masses[:, None]
    velocities = velocities + 0.5 * dt * forces * inv_m
    positions = positions + 0.5 * dt * velocities
    c1 = np.exp(-friction * dt)
    c2 = np.sqrt((1.0 - c1 * c1) * temperature_energy) * np.sqrt(inv_m)
    velocities = c1 * velocities + c2 * rng.normal(size=velocities.shape)
    positions = positions + 0.5 * dt * velocities
    return positions, velocities


class LiPSSurrogate(Dataset[Structure]):
    """Precomputed Langevin trajectory of one Li-P-S cell.

    Parameters
    ----------
    num_samples:
        Number of snapshots retained (every ``stride`` MD steps).
    temperature:
        Thermal energy scale in eV (0.025 eV is approx. room temperature).
    """

    #: Composition per cell: Li6-P-S5-like stoichiometry scaled down.
    LI, P, S = 3, 15, 16

    def __init__(
        self,
        num_samples: int,
        seed: int = 0,
        stride: int = 5,
        dt: float = 0.01,
        temperature: float = 0.025,
        friction: float = 0.5,
        calculator: Optional[SurrogateDFT] = None,
    ):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.num_samples = num_samples
        self.seed = seed
        self.calculator = calculator or SurrogateDFT()
        self.name = "lips"

        rng = np.random.default_rng((seed, 5))
        species = np.array([self.LI] * 6 + [self.P] * 1 + [self.S] * 5, dtype=np.int64)
        n = len(species)
        a = (n * 14.0) ** (1.0 / 3.0)  # ~14 A^3 per atom, cubic box
        self.cell = np.eye(3) * a
        self.species = species
        masses = np.array([6.9] * 6 + [31.0] * 1 + [32.1] * 5)

        # Initialize on a jittered grid, then integrate and keep snapshots.
        grid = int(np.ceil(n ** (1.0 / 3.0)))
        base = np.array(
            [[i, j, k] for i in range(grid) for j in range(grid) for k in range(grid)],
            dtype=np.float64,
        )[:n]
        positions = (base + 0.5) / grid * a + rng.normal(0.0, 0.05, size=(n, 3))
        velocities = rng.normal(0.0, np.sqrt(temperature), size=(n, 3)) / np.sqrt(
            masses[:, None]
        )

        self._frames = []
        calc = self.calculator
        total_steps = num_samples * stride
        energy, forces = calc.energy_and_forces(positions, species, cell=self.cell)
        for step in range(total_steps):
            positions, velocities = langevin_step(
                positions, velocities, forces, masses, dt, friction, temperature, rng
            )
            positions %= a  # wrap into the box
            energy, forces = calc.energy_and_forces(positions, species, cell=self.cell)
            if (step + 1) % stride == 0:
                self._frames.append((positions.copy(), float(energy), forces.copy()))

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> Structure:
        if not 0 <= index < self.num_samples:
            raise IndexError(index)
        positions, energy, forces = self._frames[index]
        return Structure(
            positions=positions,
            species=self.species.copy(),
            lattice=Lattice(self.cell),
            targets={"energy": np.float64(energy), "forces": forces},
            metadata={"dataset": self.name, "frame": index},
        )
