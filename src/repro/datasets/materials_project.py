"""Materials-Project-style surrogate dataset.

Procedurally generates bulk crystals across all seven crystal families and
labels them with the surrogate DFT engine: band gap, Fermi energy,
formation energy per atom, and a stability flag — the four targets the
paper's fine-tuning experiments use (Table 1).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.structures import Structure
from repro.datasets.periodic_table import element
from repro.datasets.surrogate_dft import SurrogateDFT
from repro.geometry.lattice import (
    Lattice,
    fractional_to_cartesian,
    minimum_image_distances,
    random_lattice,
)

#: Elements sampled by the bulk generators: H through Bi minus noble gases
#: (they do not form the bulk compounds materials databases catalogue).
_NOBLE = {2, 10, 18, 36, 54, 86}
DEFAULT_ELEMENT_POOL: Tuple[int, ...] = tuple(
    z for z in range(1, 84) if z not in _NOBLE
)


def place_atoms(
    lattice: Lattice,
    species: np.ndarray,
    rng: np.random.Generator,
    min_dist_factor: float = 0.75,
    max_attempts: int = 60,
) -> np.ndarray:
    """Sequentially insert atoms at random fractional positions.

    Candidates closer (minimum image) than ``min_dist_factor`` times the
    covalent-radius sum to any placed atom are rejected; the tolerance
    relaxes 5% per exhausted retry round so generation always terminates.
    """
    n = len(species)
    radii = np.array([element(int(z)).covalent_radius for z in species])
    frac = np.zeros((n, 3))
    factor = min_dist_factor
    placed = 0
    while placed < n:
        ok = False
        for _ in range(max_attempts):
            candidate = rng.random(3)
            if placed == 0:
                ok = True
            else:
                trial = np.vstack([frac[:placed], candidate])
                d = minimum_image_distances(lattice, trial)[-1, :placed]
                limits = factor * (radii[:placed] + radii[placed])
                ok = bool(np.all(d > limits))
            if ok:
                frac[placed] = candidate
                placed += 1
                break
        if not ok:
            factor *= 0.95  # relax and retry the same atom
    return frac


class MaterialsProjectSurrogate(Dataset[Structure]):
    """Lazy, deterministic generator of labelled bulk crystals."""

    #: Sampling weights over crystal families, biased the way curated
    #: databases are (cubic/orthorhombic-heavy).
    FAMILY_WEIGHTS = {
        "cubic": 0.22,
        "tetragonal": 0.15,
        "orthorhombic": 0.22,
        "hexagonal": 0.15,
        "trigonal": 0.10,
        "monoclinic": 0.11,
        "triclinic": 0.05,
    }

    def __init__(
        self,
        num_samples: int,
        seed: int = 0,
        max_atoms: int = 10,
        element_pool: Optional[Sequence[int]] = None,
        calculator: Optional[SurrogateDFT] = None,
    ):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.num_samples = num_samples
        self.seed = seed
        self.max_atoms = max_atoms
        self.element_pool = tuple(element_pool or DEFAULT_ELEMENT_POOL)
        self.calculator = calculator or SurrogateDFT()
        self.name = "materials_project"
        self._families = list(self.FAMILY_WEIGHTS)
        self._weights = np.array([self.FAMILY_WEIGHTS[f] for f in self._families])
        self._weights = self._weights / self._weights.sum()

    def __len__(self) -> int:
        return self.num_samples

    def _sample_composition(self, rng: np.random.Generator) -> np.ndarray:
        n_elements = int(rng.integers(1, 5))
        chosen = rng.choice(self.element_pool, size=n_elements, replace=False)
        n_atoms = int(rng.integers(max(2, n_elements), self.max_atoms + 1))
        # Every chosen element appears at least once.
        counts = np.ones(n_elements, dtype=np.int64)
        for _ in range(n_atoms - n_elements):
            counts[rng.integers(0, n_elements)] += 1
        return np.repeat(chosen, counts).astype(np.int64)

    def _build_structure(self, rng: np.random.Generator) -> Structure:
        species = self._sample_composition(rng)
        family = self._families[int(rng.choice(len(self._families), p=self._weights))]
        lattice = random_lattice(family, rng)
        # Target volume from atomic sizes: a close-packed sphere of radius r
        # occupies (4 pi/3) r^3 / 0.64 ~ 6.54 r^3 at random-close-packing
        # density; sample a band around it.  Radii are floored so hydrogen
        # does not collapse the cell.
        r_eff = np.array(
            [max(element(int(z)).covalent_radius, 0.75) for z in species]
        )
        volume = rng.uniform(1.05, 1.45) * float(np.sum(6.54 * r_eff**3))
        vpa = volume / len(species)
        scale = (vpa * len(species) / lattice.volume) ** (1.0 / 3.0)
        lattice = Lattice(lattice.matrix * scale)
        frac = place_atoms(lattice, species, rng, min_dist_factor=0.9)
        positions = fractional_to_cartesian(lattice, frac)
        calc = self.calculator
        targets = {
            "band_gap": np.float64(calc.band_gap(positions, species, lattice, frac)),
            "fermi_energy": np.float64(calc.fermi_energy(positions, species, lattice)),
            "formation_energy": np.float64(
                calc.formation_energy_per_atom(positions, species, lattice, frac)
            ),
            "is_stable": np.float64(calc.is_stable(positions, species, lattice, frac)),
        }
        return Structure(
            positions=positions,
            species=species,
            lattice=lattice,
            targets=targets,
            metadata={"dataset": self.name, "family": family},
        )

    def __getitem__(self, index: int) -> Structure:
        if not 0 <= index < self.num_samples:
            raise IndexError(index)
        rng = np.random.default_rng((self.seed, 1, index))
        return self._build_structure(rng)
