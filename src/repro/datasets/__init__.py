"""Datasets: the synthetic pretraining task and surrogate materials sources.

The five dataset interfaces mirror the ones the paper integrates (Sec. 3.1):
Materials Project, Carolina Materials Database, OC20, OC22, and LiPS — here
backed by procedural generators plus the deterministic surrogate-DFT label
engine (see DESIGN.md for the substitution argument) — and the synthetic
symmetry-group point-cloud dataset used for pretraining.
"""

from repro.datasets.periodic_table import Element, PERIODIC_TABLE, element, MAX_Z
from repro.datasets.surrogate_dft import SurrogateDFT
from repro.datasets.symmetry import SymmetryPointCloudDataset
from repro.datasets.materials_project import MaterialsProjectSurrogate
from repro.datasets.carolina import CarolinaSurrogate
from repro.datasets.ocp import OC20Surrogate, OC22Surrogate
from repro.datasets.lips import LiPSSurrogate
from repro.datasets.registry import DATASET_REGISTRY, available_datasets, build_dataset

__all__ = [
    "Element",
    "PERIODIC_TABLE",
    "element",
    "MAX_Z",
    "SurrogateDFT",
    "SymmetryPointCloudDataset",
    "MaterialsProjectSurrogate",
    "CarolinaSurrogate",
    "OC20Surrogate",
    "OC22Surrogate",
    "LiPSSurrogate",
    "DATASET_REGISTRY",
    "available_datasets",
    "build_dataset",
]
