"""Open-Catalyst-style surrogates (OC20 / OC22).

Samples are adsorbate-on-slab composites: an fcc metal slab (OC20) or a
rocksalt oxide slab (OC22) with a small molecule placed above the surface.
Targets are the surrogate adsorption energy and per-atom forces, matching
the energy/force labels of the real challenge datasets.  Structurally, both
surrogates share slab motifs — which is what drives their overlap in the
UMAP dataset-exploration figure (Fig. 4), just as the paper observes for
the real OC20/OC22.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.structures import Structure
from repro.datasets.periodic_table import element
from repro.datasets.surrogate_dft import SurrogateDFT

#: fcc transition / noble metals used for OC20 slabs.
FCC_METALS: Tuple[int, ...] = (13, 28, 29, 45, 46, 47, 77, 78, 79)  # Al Ni Cu Rh Pd Ag Ir Pt Au

#: Cations for OC22 oxide slabs.
OXIDE_CATIONS: Tuple[int, ...] = (22, 23, 24, 25, 26, 27, 28, 29, 30, 40)  # Ti..Zn, Zr

#: Small adsorbates: name -> (species, local coordinates).
ADSORBATES: Dict[str, Tuple[Tuple[int, ...], Tuple[Tuple[float, float, float], ...]]] = {
    "H": ((1,), ((0.0, 0.0, 0.0),)),
    "O": ((8,), ((0.0, 0.0, 0.0),)),
    "CO": ((6, 8), ((0.0, 0.0, 0.0), (0.0, 0.0, 1.13))),
    "OH": ((8, 1), ((0.0, 0.0, 0.0), (0.0, 0.0, 0.97))),
    "H2O": ((8, 1, 1), ((0.0, 0.0, 0.0), (0.76, 0.0, 0.59), (-0.76, 0.0, 0.59))),
    "N": ((7,), ((0.0, 0.0, 0.0),)),
}


def fcc_slab(z: int, nn_dist: float, nx: int = 3, ny: int = 3, layers: int = 3) -> np.ndarray:
    """Cartesian coordinates of an fcc(111)-like slab, one atom type.

    Hexagonal in-plane packing with ABC layer stacking; returns (n, 3)
    positions with the surface at the maximum z.
    """
    a1 = np.array([nn_dist, 0.0, 0.0])
    a2 = np.array([nn_dist / 2.0, nn_dist * np.sqrt(3.0) / 2.0, 0.0])
    dz = nn_dist * np.sqrt(2.0 / 3.0)
    shift = (a1 + a2) / 3.0
    rows = []
    for layer in range(layers):
        offset = shift * (layer % 3)
        for i in range(nx):
            for j in range(ny):
                pos = i * a1 + j * a2 + offset
                rows.append([pos[0], pos[1], layer * dz])
    return np.asarray(rows)


def rocksalt_slab(
    cation: int, anion: int, spacing: float, nx: int = 3, ny: int = 3, layers: int = 2
) -> Tuple[np.ndarray, np.ndarray]:
    """Checkerboard MO slab: alternating cation/anion on a square grid."""
    positions, species = [], []
    for layer in range(layers):
        for i in range(nx):
            for j in range(ny):
                positions.append([i * spacing, j * spacing, layer * spacing])
                species.append(cation if (i + j + layer) % 2 == 0 else anion)
    return np.asarray(positions, dtype=np.float64), np.asarray(species, dtype=np.int64)


class _OCPBase(Dataset[Structure]):
    """Shared machinery: adsorbate placement and energy/force labelling."""

    def __init__(
        self,
        num_samples: int,
        seed: int,
        stream: int,
        calculator: Optional[SurrogateDFT] = None,
    ):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.num_samples = num_samples
        self.seed = seed
        self._stream = stream
        self.calculator = calculator or SurrogateDFT()

    def __len__(self) -> int:
        return self.num_samples

    def _slab(self, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _compose(self, rng: np.random.Generator) -> Structure:
        slab_pos, slab_species = self._slab(rng)
        name = list(ADSORBATES)[int(rng.integers(0, len(ADSORBATES)))]
        ads_species, ads_local = ADSORBATES[name]
        ads_local = np.asarray(ads_local, dtype=np.float64)
        # Place above a random surface site with a small lateral jitter.
        top_z = slab_pos[:, 2].max()
        surface = slab_pos[slab_pos[:, 2] > top_z - 1e-6]
        site = surface[int(rng.integers(0, len(surface)))]
        height = rng.uniform(1.6, 2.4)
        anchor = site + np.array([0.0, 0.0, height])
        anchor[:2] += rng.normal(0.0, 0.25, size=2)
        ads_pos = ads_local + anchor

        positions = np.vstack([slab_pos, ads_pos])
        species = np.concatenate([slab_species, np.asarray(ads_species, dtype=np.int64)])

        calc = self.calculator
        e_total, forces = calc.energy_and_forces(positions, species)
        e_slab, _ = calc.energy_and_forces(slab_pos, slab_species)
        e_ads, _ = calc.energy_and_forces(ads_pos, np.asarray(ads_species, dtype=np.int64))
        adsorption_energy = e_total - e_slab - e_ads

        return Structure(
            positions=positions - positions.mean(axis=0, keepdims=True),
            species=species,
            targets={
                "energy": np.float64(e_total),
                "adsorption_energy": np.float64(adsorption_energy),
                "forces": forces,
            },
            metadata={
                "dataset": self.name,
                "adsorbate": name,
                "num_slab_atoms": len(slab_pos),
            },
        )

    def __getitem__(self, index: int) -> Structure:
        if not 0 <= index < self.num_samples:
            raise IndexError(index)
        rng = np.random.default_rng((self.seed, self._stream, index))
        return self._compose(rng)


class OC20Surrogate(_OCPBase):
    """Metal slab + adsorbate composites with energy/force labels."""

    def __init__(self, num_samples: int, seed: int = 0, calculator=None):
        super().__init__(num_samples, seed, stream=3, calculator=calculator)
        self.name = "oc20"

    def _slab(self, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        metal = int(FCC_METALS[int(rng.integers(0, len(FCC_METALS)))])
        nn = 2.0 * element(metal).covalent_radius
        nx, ny = int(rng.integers(2, 4)), int(rng.integers(2, 4))
        layers = int(rng.integers(2, 4))
        pos = fcc_slab(metal, nn, nx=nx, ny=ny, layers=layers)
        pos = pos + rng.normal(0.0, 0.03, size=pos.shape)  # thermal rattle
        return pos, np.full(len(pos), metal, dtype=np.int64)


class OC22Surrogate(_OCPBase):
    """Oxide slab + adsorbate composites (the OC22 analogue)."""

    def __init__(self, num_samples: int, seed: int = 0, calculator=None):
        super().__init__(num_samples, seed, stream=4, calculator=calculator)
        self.name = "oc22"

    def _slab(self, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        cation = int(OXIDE_CATIONS[int(rng.integers(0, len(OXIDE_CATIONS)))])
        spacing = element(cation).covalent_radius + element(8).covalent_radius
        nx, ny = int(rng.integers(2, 4)), int(rng.integers(2, 4))
        layers = int(rng.integers(2, 4))
        pos, species = rocksalt_slab(cation, 8, spacing, nx=nx, ny=ny, layers=layers)
        # Oxygen-vacancy defects, ubiquitous in real oxide surfaces, break
        # the perfect-checkerboard uniformity of the generated slabs.
        oxygens = np.nonzero(species == 8)[0]
        n_vac = int(rng.integers(0, max(1, len(oxygens) // 6) + 1))
        if n_vac:
            drop = rng.choice(oxygens, size=n_vac, replace=False)
            keep = np.setdiff1d(np.arange(len(species)), drop)
            pos, species = pos[keep], species[keep]
        pos = pos + rng.normal(0.0, 0.03, size=pos.shape)
        return pos, species
