"""Surrogate DFT: a deterministic, physics-inspired label engine.

The paper's datasets carry DFT-computed labels (band gap, Fermi energy,
formation energy, stability, energies/forces).  Those databases are not
available offline, so this module supplies the closest synthetic equivalent:
every label is a *deterministic, smooth function of the structure* computed
from an interatomic model — which is exactly the property the downstream
experiments need (a learnable structure->property mapping with realistic
units, ranges and inter-property correlations).

Components
----------
* **Pair potential** — a Morse form per element pair, parameterized from the
  periodic table: equilibrium length from covalent radii, well depth from
  electronegativities with an ionic-bonding bonus for dissimilar pairs.
* **Formation energy** — per-atom compound energy minus composition-weighted
  elemental references, where each reference is the same potential evaluated
  on the element's ideal FCC packing (self-consistent, so formation energies
  are centred near zero like real hull data).
* **Band gap** — ionicity/electronegativity heuristic with a volume term;
  metals clamp to zero, insulators reach several eV, matching the bimodal
  Materials Project distribution.
* **Fermi energy** — free-electron-gas estimate from the valence-electron
  density, (hbar^2 / 2m) (3 pi^2 n)^(2/3).
* **Stability** — formation energy measured against a composition-dependent
  synthetic convex-hull margin.
* **Forces** — analytic Morse gradients, for trajectory datasets (LiPS) and
  the OCP-style energy/force tasks.
"""

from __future__ import annotations

import functools
import math
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.spatial.distance import cdist

from repro.datasets.periodic_table import element
from repro.geometry.lattice import Lattice, minimum_image_distances

#: hbar^2 / (2 m_e) in eV * angstrom^2 — free-electron Fermi-energy prefactor.
_HBAR2_OVER_2M = 3.81


class SurrogateDFT:
    """Deterministic property calculator over :class:`Structure`-like data.

    Parameters
    ----------
    cutoff:
        Pair-interaction cutoff in angstrom.  The potential is shifted so
        V(cutoff) = 0, keeping energies continuous as atoms cross it.
    morse_a:
        Inverse-width of the Morse well.
    """

    #: Fraction of ideal-FCC cohesion an *unrelaxed* random packing recovers
    #: under this potential (measured ~0.2 over the generator's output).
    #: Elemental references are scaled by it so that formation energies of
    #: generated structures centre near zero, as hull-referenced database
    #: values do; without it every unrelaxed structure would sit far above
    #: its relaxed elemental references.
    REFERENCE_DISORDER = 0.21

    def __init__(self, cutoff: float = 6.0, morse_a: float = 1.8):
        self.cutoff = cutoff
        self.morse_a = morse_a

    # ------------------------------------------------------------------ #
    # Potential parameters
    # ------------------------------------------------------------------ #
    @functools.lru_cache(maxsize=None)
    def pair_params(self, z1: int, z2: int) -> Tuple[float, float]:
        """(well depth D_ij [eV], equilibrium distance r0_ij [A])."""
        e1, e2 = element(z1), element(z2)
        r0 = e1.covalent_radius + e2.covalent_radius
        # Covalent term grows with shared electronegativity; ionic term with
        # the difference.  Values land in ~0.3..2.5 eV, a realistic bond scale.
        depth = 0.35 * math.sqrt(e1.electronegativity * e2.electronegativity)
        depth += 0.45 * abs(e1.electronegativity - e2.electronegativity)
        return depth, r0

    def _pair_param_arrays(self, species: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized (depth, r0) matrices for a species vector."""
        en = np.array([element(int(z)).electronegativity for z in species])
        rad = np.array([element(int(z)).covalent_radius for z in species])
        depth = 0.35 * np.sqrt(np.outer(en, en)) + 0.45 * np.abs(en[:, None] - en[None, :])
        r0 = rad[:, None] + rad[None, :]
        return depth, r0

    def _pair_energy_matrix(self, dists: np.ndarray, species: np.ndarray) -> np.ndarray:
        """Morse energy per pair (upper triangle used by callers)."""
        depth, r0 = self._pair_param_arrays(species)
        a = self.morse_a
        x = np.exp(-a * (np.minimum(dists, 1e6) - r0))
        v = depth * ((1.0 - x) ** 2 - 1.0)
        # Shift so the potential vanishes at the cutoff (per pair type).
        xc = np.exp(-a * (self.cutoff - r0))
        vc = depth * ((1.0 - xc) ** 2 - 1.0)
        v = v - vc
        v[dists >= self.cutoff] = 0.0
        return v

    # ------------------------------------------------------------------ #
    # Energies
    # ------------------------------------------------------------------ #
    def total_energy(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        lattice: Optional[Lattice] = None,
        frac: Optional[np.ndarray] = None,
    ) -> float:
        """Total pair energy [eV].

        For periodic structures pass ``lattice`` and fractional coordinates;
        distances then use the minimum image.  Otherwise open boundaries.
        """
        species = np.asarray(species, dtype=np.int64)
        if lattice is not None:
            if frac is None:
                frac = positions @ np.linalg.inv(lattice.matrix)
            dists = minimum_image_distances(lattice, frac)
        else:
            dists = cdist(positions, positions)
        np.fill_diagonal(dists, np.inf)
        v = self._pair_energy_matrix(dists, species)
        return float(v.sum() / 2.0)

    @functools.lru_cache(maxsize=None)
    def reference_energy(self, z: int) -> float:
        """Per-atom energy of the element's ideal FCC packing.

        Serves as the elemental reference chemical potential so that
        formation energies are differences between a compound and its
        decomposed standard states, as in real hull constructions.
        """
        _, r0 = self.pair_params(z, z)
        nn = r0  # nearest-neighbour distance at the potential minimum
        a = nn * math.sqrt(2.0)  # fcc lattice constant
        lattice = Lattice.cubic(a)
        frac = np.array(
            [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
        )
        # A 2x2x2 supercell keeps every neighbour within the cutoff honest.
        from repro.geometry.lattice import supercell

        sc_lat, sc_frac, sc_species = supercell(
            lattice, frac, np.full(4, z, dtype=np.int64), (2, 2, 2)
        )
        e = self.total_energy(None, sc_species, lattice=sc_lat, frac=sc_frac)
        return e / len(sc_species)

    def formation_energy_per_atom(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        lattice: Optional[Lattice] = None,
        frac: Optional[np.ndarray] = None,
    ) -> float:
        """E_form [eV/atom] = (E_total - sum of disorder-scaled references) / n."""
        species = np.asarray(species, dtype=np.int64)
        e_total = self.total_energy(positions, species, lattice=lattice, frac=frac)
        e_ref = self.REFERENCE_DISORDER * sum(
            self.reference_energy(int(z)) for z in species
        )
        return (e_total - e_ref) / len(species)

    # ------------------------------------------------------------------ #
    # Electronic-structure heuristics
    # ------------------------------------------------------------------ #
    def _bond_statistics(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        lattice: Optional[Lattice],
        frac: Optional[np.ndarray],
    ) -> Dict[str, float]:
        species = np.asarray(species, dtype=np.int64)
        if lattice is not None:
            if frac is None:
                frac = positions @ np.linalg.inv(lattice.matrix)
            dists = minimum_image_distances(lattice, frac)
        else:
            dists = cdist(positions, positions)
        np.fill_diagonal(dists, np.inf)
        en = np.array([element(int(z)).electronegativity for z in species])
        bonded = dists < 1.25 * (
            np.add.outer(
                [element(int(z)).covalent_radius for z in species],
                [element(int(z)).covalent_radius for z in species],
            )
        )
        i_idx, j_idx = np.nonzero(np.triu(bonded, k=1))
        if len(i_idx) == 0:
            ionicity = 0.0
            coordination = 0.0
        else:
            ionicity = float(np.abs(en[i_idx] - en[j_idx]).mean())
            coordination = 2.0 * len(i_idx) / len(species)
        return {
            "ionicity": ionicity,
            "coordination": coordination,
            "mean_en": float(en.mean()),
            "en_spread": float(en.max() - en.min()),
        }

    def _volume_per_atom(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        lattice: Optional[Lattice],
    ) -> float:
        if lattice is not None:
            return lattice.volume / len(species)
        # Open systems: bounding-box estimate with a 1 A skin.
        span = positions.max(axis=0) - positions.min(axis=0) + 2.0
        return float(np.prod(span) / len(species))

    def band_gap(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        lattice: Optional[Lattice] = None,
        frac: Optional[np.ndarray] = None,
    ) -> float:
        """Band gap [eV]: ionicity-driven, clamped at zero for metals.

        Calibrated so that low-electronegativity metallic systems give 0
        while ionic insulators reach ~6-8 eV — the bimodal shape of the
        Materials Project gap distribution.
        """
        stats = self._bond_statistics(positions, species, lattice, frac)
        vpa = self._volume_per_atom(positions, species, lattice)
        # The volume term saturates so sparse open clusters (whose bounding
        # box overestimates volume) cannot fake an insulating gap.
        volume_term = float(np.clip(0.045 * (vpa - 15.0), -0.5, 0.5))
        raw = (
            2.1 * stats["ionicity"]
            + 1.0 * (stats["mean_en"] - 1.9)
            + volume_term
            - 0.16 * stats["coordination"]
            + 0.7
        )
        return float(np.clip(raw, 0.0, 9.0))

    def fermi_energy(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        lattice: Optional[Lattice] = None,
    ) -> float:
        """Free-electron Fermi energy [eV] from the valence-electron density.

        Uses an effective free-carrier count of a quarter of the (capped)
        valence electrons — not every valence electron is itinerant — which
        lands the distribution in the few-eV range materials databases report.
        """
        species = np.asarray(species, dtype=np.int64)
        n_electrons = sum(min(element(int(z)).valence_electrons, 8) for z in species) / 4.0
        vpa = self._volume_per_atom(positions, species, lattice)
        density = n_electrons / (vpa * len(species))
        return float(_HBAR2_OVER_2M * (3.0 * math.pi**2 * density) ** (2.0 / 3.0))

    def is_stable(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        lattice: Optional[Lattice] = None,
        frac: Optional[np.ndarray] = None,
    ) -> bool:
        """Synthetic hull test: E_form must beat a composition margin.

        The margin plays the role of competing phases: strongly ionic
        compositions have deeper competitors, so simply being negative is
        not enough — mirroring how real stability labels cut across the
        formation-energy axis.
        """
        e_form = self.formation_energy_per_atom(positions, species, lattice=lattice, frac=frac)
        stats = self._bond_statistics(positions, species, lattice, frac)
        margin = -0.55 * stats["ionicity"]
        return bool(e_form < margin)

    # ------------------------------------------------------------------ #
    # Forces (trajectory datasets, OCP-style tasks)
    # ------------------------------------------------------------------ #
    def energy_and_forces(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        cell: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        """Energy [eV] and forces [eV/A], open boundaries or orthorhombic PBC.

        The PBC path applies the minimum-image convention along each cell
        vector independently, which is exact for orthorhombic cells (the MD
        dataset uses a cubic cell).
        """
        positions = np.asarray(positions, dtype=np.float64)
        species = np.asarray(species, dtype=np.int64)
        n = len(positions)
        diff = positions[:, None, :] - positions[None, :, :]
        if cell is not None:
            cell = np.asarray(cell, dtype=np.float64)
            lengths = np.diag(cell).copy()
            if not np.allclose(cell, np.diag(lengths)):
                raise ValueError("energy_and_forces PBC path requires an orthorhombic cell")
            diff -= lengths * np.round(diff / lengths)
        dists = np.linalg.norm(diff, axis=-1)
        np.fill_diagonal(dists, np.inf)

        depth, r0 = self._pair_param_arrays(species)
        a = self.morse_a
        x = np.exp(-a * (np.minimum(dists, 1e6) - r0))
        inside = dists < self.cutoff
        v = depth * ((1.0 - x) ** 2 - 1.0)
        xc = np.exp(-a * (self.cutoff - r0))
        v -= depth * ((1.0 - xc) ** 2 - 1.0)
        v[~inside] = 0.0
        energy = float(v.sum() / 2.0)

        # dV/dd = 2 a D (1 - x) x ; force on i is -sum_j dV/dd * (r_i - r_j)/d.
        dvdd = 2.0 * a * depth * (1.0 - x) * x
        dvdd[~inside] = 0.0
        with np.errstate(invalid="ignore"):
            unit = diff / dists[:, :, None]
        unit = np.nan_to_num(unit)
        forces = -(dvdd[:, :, None] * unit).sum(axis=1)
        return energy, forces
