"""Carolina-Materials-Database-style surrogate.

The real CMD is a GAN-generated catalogue of *cubic* crystals with
formation-energy labels.  The surrogate mirrors both properties: cubic
cells only, ternary/quaternary compositions, and a single
``formation_energy`` target whose distribution is markedly narrower than
the Materials Project surrogate's — which is what makes its Table-1 MAE
small for both initializations.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.structures import Structure

#: CMD's chemistry is far less diverse than the Materials Project's; the
#: surrogate restricts compositions to a band of similar mid-range
#: electronegativity elements, which narrows the formation-energy
#: distribution the way the real catalogue's is narrow.
CAROLINA_ELEMENT_POOL = (
    3, 11, 12, 13, 14, 19, 20, 30, 31, 32, 38, 48, 49, 50, 56, 81, 82,
)
from repro.datasets.surrogate_dft import SurrogateDFT
from repro.geometry.lattice import Lattice, fractional_to_cartesian


class CarolinaSurrogate(Dataset[Structure]):
    """Cubic-only crystal generator with formation-energy labels."""

    def __init__(
        self,
        num_samples: int,
        seed: int = 0,
        max_atoms: int = 8,
        element_pool: Optional[Sequence[int]] = None,
        calculator: Optional[SurrogateDFT] = None,
    ):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.num_samples = num_samples
        self.seed = seed
        self.max_atoms = max_atoms
        self.element_pool = tuple(element_pool or CAROLINA_ELEMENT_POOL)
        self.calculator = calculator or SurrogateDFT()
        self.name = "carolina"

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> Structure:
        if not 0 <= index < self.num_samples:
            raise IndexError(index)
        rng = np.random.default_rng((self.seed, 2, index))
        n_elements = int(rng.integers(3, 5))  # ternary / quaternary, like CMD
        chosen = rng.choice(self.element_pool, size=n_elements, replace=False)
        n_atoms = int(rng.integers(n_elements, self.max_atoms + 1))
        counts = np.ones(n_elements, dtype=np.int64)
        for _ in range(n_atoms - n_elements):
            counts[rng.integers(0, n_elements)] += 1
        species = np.repeat(chosen, counts).astype(np.int64)
        # Cubic cell at a tight size-relative volume band -> narrow E_form
        # spread, mirroring the homogeneity of the GAN-generated catalogue.
        from repro.datasets.periodic_table import element

        r_eff = np.array([max(element(int(z)).covalent_radius, 0.75) for z in species])
        volume = rng.uniform(1.15, 1.30) * float(np.sum(6.54 * r_eff**3))
        a = volume ** (1.0 / 3.0)
        # The site grid must keep nearest sites outside the Morse wall of the
        # largest pair, or a random site assignment can create hard contacts.
        grid_n = int(np.ceil(len(species) ** (1.0 / 3.0)))
        a = max(a, grid_n * 0.95 * 2.0 * float(r_eff.max()))
        lattice = Lattice.cubic(a)
        # Atoms sit on a jittered cubic site grid rather than fully random
        # positions: generated cubic catalogues are *ordered* crystals, and
        # consistent coordination is what keeps the E_form spread narrow.
        grid = int(np.ceil(len(species) ** (1.0 / 3.0)))
        sites = np.array(
            [[i, j, k] for i in range(grid) for j in range(grid) for k in range(grid)],
            dtype=np.float64,
        )
        sites = (sites + 0.5) / grid
        order = rng.permutation(len(sites))[: len(species)]
        frac = sites[order] + rng.normal(0.0, 0.01, size=(len(species), 3))
        positions = fractional_to_cartesian(lattice, frac)
        e_form = self.calculator.formation_energy_per_atom(
            positions, species, lattice, frac
        )
        return Structure(
            positions=positions,
            species=species,
            lattice=lattice,
            targets={"formation_energy": np.float64(e_form)},
            metadata={"dataset": self.name, "family": "cubic"},
        )
