"""Dataset registry: string-keyed construction, as the toolkit's configs use."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.data.dataset import Dataset
from repro.datasets.carolina import CarolinaSurrogate
from repro.datasets.lips import LiPSSurrogate
from repro.datasets.materials_project import MaterialsProjectSurrogate
from repro.datasets.ocp import OC20Surrogate, OC22Surrogate
from repro.datasets.symmetry import SymmetryPointCloudDataset

DATASET_REGISTRY: Dict[str, Callable[..., Dataset]] = {
    "symmetry": SymmetryPointCloudDataset,
    "materials_project": MaterialsProjectSurrogate,
    "carolina": CarolinaSurrogate,
    "oc20": OC20Surrogate,
    "oc22": OC22Surrogate,
    "lips": LiPSSurrogate,
}


def available_datasets() -> List[str]:
    """Sorted names of every registered dataset."""
    return sorted(DATASET_REGISTRY)


def build_dataset(name: str, **kwargs) -> Dataset:
    """Instantiate a registered dataset by name."""
    try:
        factory = DATASET_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    return factory(**kwargs)
