"""Task base class and validation-result bookkeeping."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.autograd import Tensor
from repro.data.structures import GraphBatch
from repro.models.encoder import Encoder
from repro.nn.module import Module

#: metric name -> (sum, count); the trainer divides after aggregation so
#: unevenly sized batches average correctly.
ValResult = Dict[str, Tuple[float, int]]


def merge_val_results(a: ValResult, b: ValResult) -> ValResult:
    """Merge two (sum, count) accumulator maps."""
    out = dict(a)
    for key, (total, count) in b.items():
        prev_total, prev_count = out.get(key, (0.0, 0))
        out[key] = (prev_total + total, prev_count + count)
    return out


def finalize_val_results(acc: ValResult) -> Dict[str, float]:
    """Convert (sum, count) accumulators to means."""
    return {k: total / max(count, 1) for k, (total, count) in acc.items()}


class Task(Module):
    """Encoder + heads + objective.

    Subclasses implement:

    * ``training_step(batch) -> (loss Tensor, metrics dict)``
    * ``validation_step(batch) -> ValResult``

    The shared encoder is reachable as ``self.encoder`` so fine-tuning
    workflows can transplant pretrained weights across tasks.
    """

    def __init__(self, encoder: Encoder):
        super().__init__()
        self.encoder = encoder

    def training_step(self, batch: GraphBatch) -> Tuple[Tensor, dict]:
        raise NotImplementedError

    def validation_step(self, batch: GraphBatch) -> ValResult:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Tape-compiler hooks (repro.compiler)
    # ------------------------------------------------------------------ #
    def training_step_traced(
        self, batch: GraphBatch
    ) -> Tuple[Tensor, dict, Optional[Dict[str, Tensor]]]:
        """``training_step`` split for the tape compiler: additionally
        returns the named output tensors metrics derive from, so a cached
        plan can recompute metrics from a replay via
        :meth:`training_metrics_from_outputs`.  The default returns no
        outputs, which tells the compiler this task is not traceable and
        must run eagerly every step.
        """
        loss, metrics = self.training_step(batch)
        return loss, metrics, None

    def training_metrics_from_outputs(
        self, outputs: Dict[str, object], batch: GraphBatch
    ) -> dict:
        """Recompute ``training_step`` metrics from replayed output arrays
        (``{name: np.ndarray}``).  Required iff ``training_step_traced``
        returns outputs."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Encoder transplant — the pretrain -> fine-tune hinge
    # ------------------------------------------------------------------ #
    def load_encoder_state(self, state: dict) -> None:
        """Load pretrained encoder weights (head weights stay fresh)."""
        self.encoder.load_state_dict(state)

    def encoder_state(self) -> dict:
        return self.encoder.state_dict()
