"""Classification tasks: material stability (binary) and the symmetry
point-group pretraining objective (multiclass)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F
from repro.data.structures import GraphBatch
from repro.kernels import dispatch as K
from repro.models.encoder import Encoder
from repro.nn import OutputHead
from repro.tasks.base import Task, ValResult


class BinaryClassificationTask(Task):
    """Binary classification from the graph embedding (e.g. ``is_stable``).

    Reports the binary cross-entropy — the "stability" number in Table 1 —
    plus accuracy.
    """

    def __init__(
        self,
        encoder: Encoder,
        target: str,
        hidden_dim: int = 256,
        num_blocks: int = 3,
        dropout: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(encoder)
        self.target = target
        self.head = OutputHead(
            encoder.embed_dim, out_dim=1, hidden_dim=hidden_dim, num_blocks=num_blocks, dropout=dropout, rng=rng
        )

    def _targets(self, batch: GraphBatch) -> np.ndarray:
        return np.asarray(batch.targets[self.target], dtype=np.float64).reshape(-1)

    def logits(self, batch: GraphBatch) -> Tensor:
        return self.head(self.encoder(batch).graph_embedding).squeeze(-1)

    def training_step(self, batch: GraphBatch) -> Tuple[Tensor, dict]:
        logits = self.logits(batch)
        target = self._targets(batch)
        loss = F.binary_cross_entropy_with_logits(logits, target)
        acc = float(((logits.data > 0) == (target > 0.5)).mean())
        return loss, {f"train_{self.target}_acc": acc}

    def validation_step(self, batch: GraphBatch) -> ValResult:
        with no_grad():
            logits = self.logits(batch)
        target = self._targets(batch)
        n = len(target)
        z = logits.data
        bce = float(
            (np.maximum(z, 0) - z * target + np.logaddexp(0.0, -np.abs(z))).sum()
        )
        correct = float(((z > 0) == (target > 0.5)).sum())
        return {
            f"{self.target}_bce": (bce, n),
            f"{self.target}_acc": (correct, n),
        }


class MultiClassClassificationTask(Task):
    """Multiclass classification — the symmetry-group pretraining task.

    The validation metric is the multiclass cross-entropy, the quantity
    plotted in the paper's Figs. 3 and 6.
    """

    def __init__(
        self,
        encoder: Encoder,
        num_classes: int,
        target: str = "point_group",
        hidden_dim: int = 256,
        num_blocks: int = 3,
        dropout: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(encoder)
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        self.target = target
        self.num_classes = num_classes
        self.head = OutputHead(
            encoder.embed_dim,
            out_dim=num_classes,
            hidden_dim=hidden_dim,
            num_blocks=num_blocks,
            dropout=dropout,
            rng=rng,
        )

    def _labels(self, batch: GraphBatch) -> np.ndarray:
        labels = np.asarray(batch.targets[self.target]).astype(np.int64).reshape(-1)
        if labels.min() < 0 or labels.max() >= self.num_classes:
            raise ValueError(
                f"labels out of range [0, {self.num_classes}): "
                f"[{labels.min()}, {labels.max()}]"
            )
        return labels

    def logits(self, batch: GraphBatch) -> Tensor:
        return self.head(self.encoder(batch).graph_embedding)

    def training_step(self, batch: GraphBatch) -> Tuple[Tensor, dict]:
        loss, metrics, _ = self.training_step_traced(batch)
        return loss, metrics

    def training_step_traced(self, batch: GraphBatch):
        logits = self.logits(batch)
        labels = self._labels(batch)
        loss = K.softmax_cross_entropy(logits, labels)
        metrics = self.training_metrics_from_outputs({"logits": logits.data}, batch)
        return loss, metrics, {"logits": logits}

    def training_metrics_from_outputs(self, outputs, batch: GraphBatch) -> dict:
        labels = self._labels(batch)
        acc = float((outputs["logits"].argmax(axis=1) == labels).mean())
        return {"train_acc": acc}

    def validation_step(self, batch: GraphBatch) -> ValResult:
        with no_grad():
            logits = self.logits(batch)
        labels = self._labels(batch)
        n = len(labels)
        logp = logits.data - logits.data.max(axis=1, keepdims=True)
        logp = logp - np.log(np.exp(logp).sum(axis=1, keepdims=True))
        ce = float(-logp[np.arange(n), labels].sum())
        correct = float((logits.data.argmax(axis=1) == labels).sum())
        return {"ce": (ce, n), "acc": (correct, n)}
