"""Energy/force regression for trajectory datasets (LiPS, OCP surrogates).

Direct-force formulation: a graph-level head regresses the total energy;
per-atom force *vectors* are read out of the encoder's equivariant
coordinate channel, gated by an invariant per-node scalar head:

    F_i = phi(h_i) * (x_i^L - x_i^0)

Node embeddings are E(3)-invariant by construction, so an MLP on them can
never produce a direction — the coordinate updates of the E(n)-GNN are the
model's only equivariant vectors, and Satorras et al. designed them for
exactly this dynamics-style readout.  Encoders without a coordinate channel
fall back to a direct (non-equivariant) vector head, with the accuracy
caveat documented on ``force_mode``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F
from repro.data.structures import GraphBatch
from repro.models.encoder import Encoder
from repro.nn import OutputHead
from repro.tasks.base import Task, ValResult


class EnergyForceTask(Task):
    """Joint energy (per graph) + forces (per node) regression.

    ``force_weight`` balances the two losses; the paper's datasets weight
    forces heavily because dynamics fidelity depends on them.
    """

    def __init__(
        self,
        encoder: Encoder,
        energy_target: str = "energy",
        force_target: str = "forces",
        hidden_dim: int = 256,
        num_blocks: int = 3,
        dropout: float = 0.2,
        force_weight: float = 10.0,
        energy_scale: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(encoder)
        if force_weight < 0:
            raise ValueError("force_weight must be non-negative")
        self.energy_target = energy_target
        self.force_target = force_target
        self.force_weight = force_weight
        self.energy_scale = energy_scale
        self.energy_head = OutputHead(
            encoder.embed_dim, out_dim=1, hidden_dim=hidden_dim, num_blocks=num_blocks, dropout=dropout, rng=rng
        )
        # Scalar gate for the equivariant readout, plus the direct vector
        # head used as fallback for coordinate-free encoders.
        self.force_gate = OutputHead(
            encoder.embed_dim, out_dim=1, hidden_dim=hidden_dim, num_blocks=num_blocks, dropout=dropout, rng=rng
        )
        self.force_head = OutputHead(
            encoder.embed_dim, out_dim=3, hidden_dim=hidden_dim, num_blocks=num_blocks, dropout=dropout, rng=rng
        )
        #: "equivariant" when the last prediction used the coordinate
        #: channel, "direct" when it fell back to the vector head.
        self.force_mode = "unset"

    def predict(self, batch: GraphBatch) -> Tuple[Tensor, Tensor]:
        out = self.encoder(batch)
        energy = self.energy_head(out.graph_embedding).squeeze(-1)
        if out.coordinate_update is not None:
            gate = self.force_gate(out.node_embedding)
            forces = out.coordinate_update * gate
            self.force_mode = "equivariant"
        else:
            forces = self.force_head(out.node_embedding)
            self.force_mode = "direct"
        return energy, forces

    def _labels(self, batch: GraphBatch) -> Tuple[np.ndarray, np.ndarray]:
        energy = np.asarray(batch.targets[self.energy_target], dtype=np.float64).reshape(-1)
        forces = np.asarray(batch.targets[self.force_target], dtype=np.float64)
        forces = forces.reshape(-1, 3)
        return energy / self.energy_scale, forces

    def training_step(self, batch: GraphBatch) -> Tuple[Tensor, dict]:
        pred_e, pred_f = self.predict(batch)
        energy, forces = self._labels(batch)
        loss_e = F.mse_loss(pred_e, energy)
        loss_f = F.mse_loss(pred_f, forces)
        loss = loss_e + self.force_weight * loss_f
        return loss, {
            "train_energy_mae": float(np.abs(pred_e.data - energy).mean()) * self.energy_scale,
            "train_force_mae": float(np.abs(pred_f.data - forces).mean()),
        }

    def validation_step(self, batch: GraphBatch) -> ValResult:
        with no_grad():
            pred_e, pred_f = self.predict(batch)
        energy, forces = self._labels(batch)
        n_graphs = len(energy)
        n_comps = forces.size
        return {
            "energy_mae": (
                float(np.abs(pred_e.data - energy).sum()) * self.energy_scale,
                n_graphs,
            ),
            "force_mae": (float(np.abs(pred_f.data - forces).sum()), n_comps),
        }
