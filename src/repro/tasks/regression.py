"""Scalar property regression (band gap, Fermi energy, formation energy)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F
from repro.data.structures import GraphBatch
from repro.data.transforms.features import TargetNormalizer
from repro.models.encoder import Encoder
from repro.nn import OutputHead
from repro.tasks.base import Task, ValResult

_LOSSES = {"mse": F.mse_loss, "l1": F.l1_loss, "huber": F.huber_loss}


class ScalarRegressionTask(Task):
    """Regress one scalar target from the graph embedding.

    Training operates on normalized targets when a fitted
    :class:`TargetNormalizer` is supplied; validation MAE is reported in
    physical units either way, matching how the paper tabulates errors
    (eV, eV/atom).
    """

    def __init__(
        self,
        encoder: Encoder,
        target: str,
        hidden_dim: int = 256,
        num_blocks: int = 3,
        dropout: float = 0.2,
        loss: str = "mse",
        normalizer: Optional[TargetNormalizer] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(encoder)
        if loss not in _LOSSES:
            raise ValueError(f"unknown loss {loss!r}; choose from {sorted(_LOSSES)}")
        self.target = target
        self.loss_name = loss
        self.normalizer = normalizer
        self.head = OutputHead(
            encoder.embed_dim, out_dim=1, hidden_dim=hidden_dim, num_blocks=num_blocks, dropout=dropout, rng=rng
        )

    def _targets(self, batch: GraphBatch) -> np.ndarray:
        try:
            return np.asarray(batch.targets[self.target], dtype=np.float64).reshape(-1)
        except KeyError:
            raise KeyError(
                f"batch lacks target {self.target!r}; has {sorted(batch.targets)}"
            )

    def _normalized(self, values: np.ndarray) -> np.ndarray:
        if self.normalizer is None:
            return values
        mean, std = self.normalizer.stats[self.target]
        return (values - mean) / std

    def _scale(self) -> float:
        if self.normalizer is None:
            return 1.0
        return self.normalizer.scale_of(self.target)

    def predict(self, batch: GraphBatch) -> Tensor:
        embedding = self.encoder(batch).graph_embedding
        return self.head(embedding).squeeze(-1)

    def training_step(self, batch: GraphBatch) -> Tuple[Tensor, dict]:
        loss, metrics, _ = self.training_step_traced(batch)
        return loss, metrics

    def training_step_traced(self, batch: GraphBatch):
        pred = self.predict(batch)
        target = self._normalized(self._targets(batch))
        loss = _LOSSES[self.loss_name](pred, target)
        metrics = self.training_metrics_from_outputs({"pred": pred.data}, batch)
        return loss, metrics, {"pred": pred}

    def training_metrics_from_outputs(self, outputs, batch: GraphBatch) -> dict:
        target = self._normalized(self._targets(batch))
        mae_units = float(np.abs(outputs["pred"] - target).mean()) * self._scale()
        return {f"train_{self.target}_mae": mae_units}

    def validation_step(self, batch: GraphBatch) -> ValResult:
        with no_grad():
            pred = self.predict(batch)
        target = self._normalized(self._targets(batch))
        n = len(target)
        abs_err = float(np.abs(pred.data - target).sum()) * self._scale()
        sq_err = float(((pred.data - target) ** 2).sum()) * self._scale() ** 2
        return {
            f"{self.target}_mae": (abs_err, n),
            f"{self.target}_mse": (sq_err, n),
        }
