"""Multi-task, multi-dataset composition — the Table-1 setting.

One shared encoder feeds a head per (dataset, target) pair.  Batches are
drawn from the concatenation of all datasets; each head's loss is masked to
the samples that carry its target *and* come from its dataset, so the
encoder receives gradient from every objective while heads specialize.
This is the paper's "joint encoder updated separately to each task output
head" (Sec. 3.2) with six-block heads (Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F
from repro.data.structures import GraphBatch
from repro.data.transforms.features import TargetNormalizer
from repro.kernels import dispatch as K
from repro.models.encoder import Encoder
from repro.nn import ModuleDict, OutputHead
from repro.tasks.base import Task, ValResult


@dataclass(frozen=True)
class TaskSpec:
    """One objective inside the joint task.

    ``dataset=None`` matches samples from any dataset; set it when the same
    target name exists in several datasets (formation energy appears in both
    the Materials Project and Carolina surrogates and gets one head each,
    as in Table 1).
    """

    name: str
    target: str
    kind: str  # "regression" | "binary"
    dataset: Optional[str] = None
    weight: float = 1.0

    def __post_init__(self):
        if self.kind not in ("regression", "binary"):
            raise ValueError(f"unknown task kind {self.kind!r}")
        if self.weight <= 0:
            raise ValueError("task weight must be positive")


class MultiTaskModule(Task):
    """Shared-encoder joint training over arbitrary TaskSpecs."""

    def __init__(
        self,
        encoder: Encoder,
        specs: List[TaskSpec],
        hidden_dim: int = 256,
        num_blocks: int = 6,
        dropout: float = 0.2,
        normalizer: Optional[TargetNormalizer] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(encoder)
        if not specs:
            raise ValueError("MultiTaskModule needs at least one TaskSpec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate spec names: {names}")
        self.specs = list(specs)
        self.normalizer = normalizer
        heads = {}
        for spec in self.specs:
            heads[spec.name] = OutputHead(
                encoder.embed_dim,
                out_dim=1,
                hidden_dim=hidden_dim,
                num_blocks=num_blocks,
                dropout=dropout,
                rng=rng,
            )
        self.heads = ModuleDict(heads)

    # ------------------------------------------------------------------ #
    def _mask_for(self, spec: TaskSpec, batch: GraphBatch) -> np.ndarray:
        """Boolean mask over graphs this spec trains on."""
        if spec.target not in batch.targets:
            return np.zeros(batch.num_graphs, dtype=bool)
        values = np.asarray(batch.targets[spec.target], dtype=np.float64).reshape(-1)
        mask = ~np.isnan(values)
        if spec.dataset is not None:
            datasets = batch.metadata.get("dataset")
            if datasets is None:
                raise ValueError(
                    f"spec {spec.name!r} is dataset-scoped but the batch has no "
                    "per-sample dataset metadata"
                )
            mask &= np.asarray(datasets) == spec.dataset
        return mask

    def _normalized(self, spec: TaskSpec, values: np.ndarray) -> np.ndarray:
        if self.normalizer is None or spec.kind != "regression":
            return values
        key = self._norm_key(spec)
        if key not in self.normalizer.stats:
            return values
        mean, std = self.normalizer.stats[key]
        return (values - mean) / std

    def _scale(self, spec: TaskSpec) -> float:
        if self.normalizer is None or spec.kind != "regression":
            return 1.0
        key = self._norm_key(spec)
        if key not in self.normalizer.stats:
            return 1.0
        return self.normalizer.stats[key][1]

    @staticmethod
    def _norm_key(spec: TaskSpec) -> str:
        return spec.target

    # ------------------------------------------------------------------ #
    def training_step(self, batch: GraphBatch) -> Tuple[Tensor, dict]:
        embedding = self.encoder(batch).graph_embedding
        total: Optional[Tensor] = None
        metrics: Dict[str, float] = {}
        active = 0
        for spec in self.specs:
            mask = self._mask_for(spec, batch)
            if not mask.any():
                continue
            idx = np.nonzero(mask)[0]
            rows = K.index_select(embedding, idx)
            pred = self.heads[spec.name](rows).squeeze(-1)
            raw = np.asarray(batch.targets[spec.target], dtype=np.float64).reshape(-1)[idx]
            if spec.kind == "regression":
                target = self._normalized(spec, raw)
                loss = F.mse_loss(pred, target)
                metrics[f"train_{spec.name}_mae"] = (
                    float(np.abs(pred.data - target).mean()) * self._scale(spec)
                )
            else:
                loss = F.binary_cross_entropy_with_logits(pred, raw)
                metrics[f"train_{spec.name}_acc"] = float(
                    ((pred.data > 0) == (raw > 0.5)).mean()
                )
            weighted = loss * spec.weight
            total = weighted if total is None else total + weighted
            active += 1
        if total is None:
            raise ValueError("batch matched no task spec — check dataset routing")
        return total * (1.0 / active), metrics

    def validation_step(self, batch: GraphBatch) -> ValResult:
        with no_grad():
            embedding = self.encoder(batch).graph_embedding
        out: ValResult = {}
        for spec in self.specs:
            mask = self._mask_for(spec, batch)
            if not mask.any():
                continue
            idx = np.nonzero(mask)[0]
            with no_grad():
                pred = self.heads[spec.name](
                    K.index_select(embedding, idx)
                ).squeeze(-1)
            raw = np.asarray(batch.targets[spec.target], dtype=np.float64).reshape(-1)[idx]
            n = len(idx)
            if spec.kind == "regression":
                target = self._normalized(spec, raw)
                err = float(np.abs(pred.data - target).sum()) * self._scale(spec)
                out[f"{spec.name}_mae"] = (err, n)
            else:
                z = pred.data
                bce = float(
                    (np.maximum(z, 0) - z * raw + np.logaddexp(0.0, -np.abs(z))).sum()
                )
                out[f"{spec.name}_bce"] = (bce, n)
                out[f"{spec.name}_acc"] = (float(((z > 0) == (raw > 0.5)).sum()), n)
        return out
