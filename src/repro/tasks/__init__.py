"""Tasks: learning objectives pairing an encoder with output heads (Fig. 1).

A task is this reproduction's analogue of a LightningModule: it owns the
encoder and one or more output heads, defines ``training_step`` (returns a
loss tensor) and ``validation_step`` (returns metric accumulators), and can
be composed — :class:`MultiTaskModule` trains one shared encoder against
any number of per-dataset, per-target heads simultaneously, the setting the
paper identifies as where pretraining pays off.
"""

from repro.tasks.base import Task, ValResult
from repro.tasks.regression import ScalarRegressionTask
from repro.tasks.classification import BinaryClassificationTask, MultiClassClassificationTask
from repro.tasks.forces import EnergyForceTask
from repro.tasks.multitask import TaskSpec, MultiTaskModule

__all__ = [
    "Task",
    "ValResult",
    "ScalarRegressionTask",
    "BinaryClassificationTask",
    "MultiClassClassificationTask",
    "EnergyForceTask",
    "TaskSpec",
    "MultiTaskModule",
]
