"""Online inference serving: model registry, micro-batching, admission.

The serving layer closes the loop the ROADMAP's north star opens —
trained surrogate models answering "heavy traffic from millions of users"
— in the same simulated, deterministic style as the distributed layer:

* :class:`ModelRegistry` / :class:`Servable` — CRC-checked checkpoint
  archives rebuilt into eval-mode tasks (``servable.py``);
* :class:`MicroBatcher` — dynamic request coalescing with load shedding
  and deadlines on a simulated clock (``batcher.py``);
* :class:`InferenceServer` / :class:`ServeReport` — the bundled server
  with observability and latency/throughput reduction (``server.py``);
* :func:`poisson_arrivals` / :func:`make_requests` — seeded open-loop
  traffic (``traffic.py``);
* :class:`ReplicaPool` and friends — replicated serving with health
  checks, circuit breakers, hedging, failover, and seeded chaos
  (``resilience/``, DESIGN.md §13).

The core numerical guarantee: a request's prediction is bit-identical
whether it is served alone or coalesced into any micro-batch, because all
serving forwards run under
:func:`repro.autograd.batch_invariant_kernels` (DESIGN.md §12).
"""

from repro.serving.batcher import (
    AdmissionPolicy,
    BatchPolicy,
    MicroBatcher,
    Request,
    Response,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
)
from repro.serving.resilience import (
    BreakerPolicy,
    ChaosFault,
    CircuitBreaker,
    DegradationPolicy,
    HealthChecker,
    HealthPolicy,
    HedgePolicy,
    ReplicaPool,
    ServingChaosProfile,
    chaos_schedule,
)
from repro.serving.servable import (
    ModelRegistry,
    Servable,
    ServableSpec,
    load_servable,
    save_servable,
)
from repro.serving.server import (
    AffineServiceModel,
    InferenceServer,
    ServeReport,
    calibrate_service_model,
    summarize,
)
from repro.serving.traffic import make_requests, poisson_arrivals

__all__ = [
    "AdmissionPolicy",
    "AffineServiceModel",
    "BatchPolicy",
    "BreakerPolicy",
    "ChaosFault",
    "CircuitBreaker",
    "DegradationPolicy",
    "HealthChecker",
    "HealthPolicy",
    "HedgePolicy",
    "InferenceServer",
    "MicroBatcher",
    "ModelRegistry",
    "ReplicaPool",
    "Request",
    "Response",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "Servable",
    "ServableSpec",
    "ServeReport",
    "ServingChaosProfile",
    "calibrate_service_model",
    "chaos_schedule",
    "load_servable",
    "make_requests",
    "poisson_arrivals",
    "save_servable",
    "summarize",
]
