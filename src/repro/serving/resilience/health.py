"""Synthetic-probe health checking for serving replicas.

A :class:`HealthChecker` probes every replica at a fixed simulated
interval with a synthetic request (out-of-band: probes do not occupy the
replica's serving queue).  A probe fails when the replica is down
(crashed, corrupt servable — it cannot answer at all) or when its
simulated probe latency exceeds ``latency_threshold`` (a slow replica is
an unhealthy replica from the router's point of view).

Status changes are *hysteretic*: ``unhealthy_after`` consecutive probe
failures mark a replica unhealthy, ``healthy_after`` consecutive
successes mark it recovered — single blips in either direction do not
flap the routing table.  Transitions land in the shared
:class:`~repro.distributed.events.EventLog`
(``replica_unhealthy`` / ``replica_recovered``) and in the
``serve.replica.*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.distributed.events import (
    REPLICA_RECOVERED,
    REPLICA_UNHEALTHY,
    EventLog,
    SimClock,
)


@dataclass(frozen=True)
class HealthPolicy:
    """Probe cadence and hysteresis knobs."""

    #: Simulated seconds between probes of the same replica.
    interval: float = 0.02
    #: Probe latency above this counts as a failed probe.
    latency_threshold: float = 0.05
    #: Consecutive failures before a replica is marked unhealthy.
    unhealthy_after: int = 2
    #: Consecutive successes before an unhealthy replica recovers.
    healthy_after: int = 2

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.latency_threshold <= 0:
            raise ValueError(
                f"latency_threshold must be > 0, got {self.latency_threshold}"
            )
        if self.unhealthy_after < 1:
            raise ValueError(
                f"unhealthy_after must be >= 1, got {self.unhealthy_after}"
            )
        if self.healthy_after < 1:
            raise ValueError(f"healthy_after must be >= 1, got {self.healthy_after}")


class HealthChecker:
    """Tracks per-replica health from a stream of probe outcomes."""

    def __init__(
        self,
        policy: HealthPolicy,
        clock: SimClock,
        events: Optional[EventLog] = None,
        metrics=None,
    ):
        self.policy = policy
        self.clock = clock
        self.events = events
        self.metrics = metrics
        self._healthy: Dict[int, bool] = {}
        self._fail_streak: Dict[int, int] = {}
        self._ok_streak: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def healthy(self, replica: int) -> bool:
        """Current verdict; replicas start healthy until probed otherwise."""
        return self._healthy.get(replica, True)

    def observe(self, replica: int, ok: bool, latency: float = 0.0) -> bool:
        """Fold one probe outcome in; returns the (possibly new) verdict."""
        good = ok and latency <= self.policy.latency_threshold
        if self.metrics is not None:
            name = "serve.health.probe_ok" if good else "serve.health.probe_fail"
            self.metrics.counter(name).inc()
        if good:
            self._fail_streak[replica] = 0
            self._ok_streak[replica] = self._ok_streak.get(replica, 0) + 1
            if (
                not self.healthy(replica)
                and self._ok_streak[replica] >= self.policy.healthy_after
            ):
                self._healthy[replica] = True
                if self.events is not None:
                    self.events.record(REPLICA_RECOVERED, rank=replica)
                if self.metrics is not None:
                    self.metrics.counter("serve.replica.recovered").inc()
        else:
            self._ok_streak[replica] = 0
            self._fail_streak[replica] = self._fail_streak.get(replica, 0) + 1
            if (
                self.healthy(replica)
                and self._fail_streak[replica] >= self.policy.unhealthy_after
            ):
                self._healthy[replica] = False
                if self.events is not None:
                    self.events.record(REPLICA_UNHEALTHY, rank=replica)
                if self.metrics is not None:
                    self.metrics.counter("serve.replica.unhealthy").inc()
        return self.healthy(replica)
