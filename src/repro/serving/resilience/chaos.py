"""Serving-side chaos: seeded replica faults over a traffic trace.

The same :class:`~repro.distributed.faults.ChaosEngine` that schedules
training faults over the allreduce call stream schedules serving faults
over a trace: the engine plans ``(kind, slot, victim)`` triples on a
discrete ``[0, horizon)`` grid, and :func:`chaos_schedule` maps each slot
onto simulated time as a fraction of the trace duration.  One seed, one
schedule, bit-for-bit — the property the chaos-determinism suite pins.

Fault kinds (the serving vocabulary; DESIGN.md §13):

* ``replica_crash`` — the replica dies: queued and in-flight work fails
  over, the router never selects it again.
* ``replica_slow`` — a latency spike: for a window of the trace, the
  replica's service time is multiplied by ``slow_factor`` (health probes
  see the same slowdown and mark it unhealthy; it recovers after).
* ``predict_flaky`` — the replica's next dispatch raises instead of
  predicting; the batch fails over to siblings.
* ``servable_corrupt`` — the replica's model archive fails its integrity
  check: every subsequent dispatch and probe fails, it never mis-predicts.

A fault never alters delivered values — replicas either answer with the
true model output or fail loudly — which is what lets failover preserve
the serving layer's bit-identity guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.distributed.events import (
    PREDICT_FLAKY,
    REPLICA_CRASH,
    REPLICA_SLOW,
    SERVABLE_CORRUPT,
)
from repro.distributed.faults import ChaosEngine

#: Fault kinds a serving chaos profile may request.
SERVING_FAULT_KINDS = (REPLICA_CRASH, REPLICA_SLOW, PREDICT_FLAKY, SERVABLE_CORRUPT)


@dataclass(frozen=True)
class ServingChaosProfile:
    """How many serving faults of each kind to inject over a trace."""

    crashes: int = 0
    slowdowns: int = 0
    flaky: int = 0
    corruptions: int = 0
    #: Service-time multiplier while a ``replica_slow`` window is active.
    slow_factor: float = 8.0
    #: Slow-window length as a fraction of the trace duration.
    slow_window_frac: float = 0.2

    @classmethod
    def parse(cls, spec: Optional[str], **overrides) -> "ServingChaosProfile":
        """Parse ``"kind:count,kind:count"`` (empty/None = no faults)."""
        counts = {kind: 0 for kind in SERVING_FAULT_KINDS}
        if spec and spec.strip() not in ("", "none"):
            for token in spec.split(","):
                token = token.strip()
                if not token:
                    continue
                if ":" not in token:
                    raise ValueError(
                        f"bad chaos token {token!r}; expected kind:count"
                    )
                kind, _, num = token.partition(":")
                kind = kind.strip()
                if kind not in SERVING_FAULT_KINDS:
                    raise ValueError(
                        f"unknown chaos kind {kind!r}; expected one of "
                        f"{SERVING_FAULT_KINDS}"
                    )
                try:
                    n = int(num)
                except ValueError as exc:
                    raise ValueError(f"bad chaos count in {token!r}") from exc
                if n < 0:
                    raise ValueError(f"chaos count must be >= 0 in {token!r}")
                counts[kind] += n
        return cls(
            crashes=counts[REPLICA_CRASH],
            slowdowns=counts[REPLICA_SLOW],
            flaky=counts[PREDICT_FLAKY],
            corruptions=counts[SERVABLE_CORRUPT],
            **overrides,
        )

    def kinds(self) -> List[str]:
        """Ordered kind list fed to the chaos engine (order is seeded state)."""
        return (
            [REPLICA_CRASH] * self.crashes
            + [REPLICA_SLOW] * self.slowdowns
            + [PREDICT_FLAKY] * self.flaky
            + [SERVABLE_CORRUPT] * self.corruptions
        )

    @property
    def total(self) -> int:
        return self.crashes + self.slowdowns + self.flaky + self.corruptions


@dataclass
class ChaosFault:
    """One concrete serving fault in the time domain."""

    kind: str
    time: float
    replica: int
    #: Slow-window length in seconds (``replica_slow`` only).
    duration: float = 0.0
    #: Service-time multiplier while slow (``replica_slow`` only).
    factor: float = 1.0
    fired: bool = field(default=False, compare=False)


def chaos_schedule(
    profile: "ServingChaosProfile | str | None",
    num_replicas: int,
    duration: float,
    seed: int = 0,
    horizon: int = 16,
) -> List[ChaosFault]:
    """Plan a seeded serving-fault schedule over ``duration`` seconds.

    The engine draws distinct slots on ``[0, horizon)`` and a victim
    replica per fault; slot ``s`` fires at ``(s + 0.5) / horizon *
    duration`` so no fault lands exactly on the trace boundaries.  Same
    ``(profile, num_replicas, seed, horizon)`` — same schedule, always.
    """
    if isinstance(profile, str) or profile is None:
        profile = ServingChaosProfile.parse(profile)
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    engine = ChaosEngine(
        profile.kinds(),
        num_targets=num_replicas,
        seed=seed,
        horizon=max(horizon, max(profile.total, 1)),
        targeted=SERVING_FAULT_KINDS,
    )
    faults = []
    for planned in engine.schedule:
        slot_time = (planned.call_index + 0.5) / engine.horizon * duration
        fault = ChaosFault(kind=planned.kind, time=slot_time, replica=planned.rank)
        if planned.kind == REPLICA_SLOW:
            fault.duration = profile.slow_window_frac * duration
            fault.factor = profile.slow_factor
        faults.append(fault)
    faults.sort(key=lambda f: (f.time, f.replica, f.kind))
    return faults
