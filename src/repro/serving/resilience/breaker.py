"""Per-replica circuit breaker: closed -> open -> half-open -> closed.

The breaker watches the outcome stream of one replica (successes with
their service latency, failures) over a rolling window and cuts traffic
to the replica when it is evidently broken or evidently slow — the
standard pattern for keeping a sick backend from dragging the whole
endpoint's latency down while it recovers.

State machine (DESIGN.md §13):

* **closed** — traffic flows; every outcome lands in the rolling window.
  When the window holds at least ``min_events`` outcomes and the *bad*
  fraction (failures plus successes slower than ``latency_slo``) reaches
  ``error_threshold``, the breaker opens.
* **open** — traffic is rejected outright for ``cooldown`` simulated
  seconds, then the breaker moves to half-open on the next admission
  query.
* **half-open** — a seeded fraction (``probe_admission``) of requests is
  admitted as probes; ``probe_successes`` consecutive good outcomes close
  the breaker, any bad outcome re-opens it (and restarts the cooldown).

Everything is deterministic: time is the shared ``SimClock``, and the
half-open admission draw comes from a generator seeded per breaker, so
the same run always admits the same probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.distributed.events import (
    BREAKER_CLOSE,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    EventLog,
    SimClock,
)

#: Breaker state vocabulary.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/recovery knobs for one replica's circuit breaker."""

    #: Rolling outcome window length.
    window: int = 16
    #: Open when bad-outcome fraction in the window reaches this.
    error_threshold: float = 0.5
    #: Outcomes required in the window before the trip rule applies.
    min_events: int = 4
    #: Successes slower than this count as bad outcomes (None disables).
    latency_slo: Optional[float] = None
    #: Simulated seconds to stay open before probing.
    cooldown: float = 0.1
    #: Fraction of half-open requests admitted as probes.
    probe_admission: float = 0.25
    #: Consecutive good probe outcomes that close the breaker.
    probe_successes: int = 2

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.error_threshold <= 1.0:
            raise ValueError(
                f"error_threshold must be in (0, 1], got {self.error_threshold}"
            )
        if self.min_events < 1:
            raise ValueError(f"min_events must be >= 1, got {self.min_events}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if not 0.0 < self.probe_admission <= 1.0:
            raise ValueError(
                f"probe_admission must be in (0, 1], got {self.probe_admission}"
            )
        if self.probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )


class CircuitBreaker:
    """Deterministic per-replica breaker on the simulated clock."""

    def __init__(
        self,
        policy: BreakerPolicy,
        clock: SimClock,
        replica: int = 0,
        seed: int = 0,
        events: Optional[EventLog] = None,
        metrics=None,
    ):
        self.policy = policy
        self.clock = clock
        self.replica = replica
        self.events = events
        self.metrics = metrics
        self.state = CLOSED
        self.opened_at: Optional[float] = None
        self.transitions: List[Tuple[float, str]] = []
        self._window: List[bool] = []  # True = bad outcome
        self._probe_streak = 0
        self._rng = np.random.default_rng((seed, replica))

    # ------------------------------------------------------------------ #
    def _record_transition(self, state: str, event_kind: str) -> None:
        self.state = state
        self.transitions.append((self.clock.now(), state))
        if self.events is not None:
            self.events.record(event_kind, rank=self.replica)
        if self.metrics is not None:
            self.metrics.counter(f"serve.breaker.{state}").inc()

    def _open(self) -> None:
        self.opened_at = self.clock.now()
        self._window.clear()
        self._probe_streak = 0
        self._record_transition(OPEN, BREAKER_OPEN)

    def _close(self) -> None:
        self.opened_at = None
        self._window.clear()
        self._probe_streak = 0
        self._record_transition(CLOSED, BREAKER_CLOSE)

    # ------------------------------------------------------------------ #
    def allow(self) -> bool:
        """Whether a request may be routed to this replica right now.

        Half-open admission consumes one seeded draw per query, so the
        sequence of admitted probes is a deterministic function of the
        breaker's seed and the (deterministic) query stream.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock.now() - self.opened_at >= self.policy.cooldown:
                self._record_transition(HALF_OPEN, BREAKER_HALF_OPEN)
            else:
                return False
        # Half-open: admit a seeded fraction as probes.
        return bool(self._rng.random() < self.policy.probe_admission)

    # ------------------------------------------------------------------ #
    def _observe(self, bad: bool) -> None:
        if self.state == HALF_OPEN:
            if bad:
                self._open()
            else:
                self._probe_streak += 1
                if self._probe_streak >= self.policy.probe_successes:
                    self._close()
            return
        if self.state == OPEN:
            # Outcome of a request dispatched before the trip; the window
            # was cleared at open time, nothing more to learn from it.
            return
        self._window.append(bad)
        if len(self._window) > self.policy.window:
            del self._window[0]
        if len(self._window) >= self.policy.min_events:
            bad_fraction = sum(self._window) / len(self._window)
            if bad_fraction >= self.policy.error_threshold:
                self._open()

    def record_success(self, latency: float) -> None:
        """A dispatch completed; slow completions count against the SLO."""
        slo = self.policy.latency_slo
        self._observe(bad=slo is not None and latency > slo)

    def record_error(self) -> None:
        """A dispatch failed outright (crash, flaky predict, corrupt load)."""
        self._observe(bad=True)
