"""Resilient replicated serving: health, breakers, hedging, chaos.

See DESIGN.md §13.  The subpackage adds the failure story to the serving
layer: a :class:`ReplicaPool` fronts N replicas of one servable behind a
deterministic router with health checking (:class:`HealthChecker`),
per-replica circuit breakers (:class:`CircuitBreaker`), hedged requests
and failover retries (:class:`HedgePolicy` +
:class:`~repro.distributed.faults.RetryPolicy`), and a graceful
degradation ladder (:class:`DegradationPolicy`) — all on the shared
simulated clock, all seeded, all bit-reproducible.  Chaos is planned by
:func:`chaos_schedule` on the same engine that drives training faults.
"""

from repro.serving.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.serving.resilience.chaos import (
    SERVING_FAULT_KINDS,
    ChaosFault,
    ServingChaosProfile,
    chaos_schedule,
)
from repro.serving.resilience.health import HealthChecker, HealthPolicy
from repro.serving.resilience.pool import (
    DegradationPolicy,
    HedgePolicy,
    ReplicaPool,
)

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerPolicy",
    "CircuitBreaker",
    "SERVING_FAULT_KINDS",
    "ChaosFault",
    "ServingChaosProfile",
    "chaos_schedule",
    "HealthChecker",
    "HealthPolicy",
    "DegradationPolicy",
    "HedgePolicy",
    "ReplicaPool",
]
