"""ReplicaPool: replicated serving with failover, hedging, and brownout.

The pool fronts N replicas of one servable behind a deterministic router
and drives a traffic trace on the shared
:class:`~repro.distributed.events.SimClock` as a discrete-event
simulation — the multi-replica generalization of
:class:`~repro.serving.MicroBatcher`, with the failure story the single
replica lacks:

* **routing** — each request goes to the least-loaded replica (ties to
  the lowest index) among those that are alive, health-checked, and
  whose :class:`~repro.serving.resilience.CircuitBreaker` admits traffic;
* **health checking** — a :class:`~repro.serving.resilience.HealthChecker`
  probes every replica on a fixed simulated cadence;
* **hedged requests** — a request still unanswered ``hedge.delay``
  seconds after arrival is duplicated onto a sibling replica;
  first-response-wins, the loser is suppressed (and counted);
* **failover retries** — a failed dispatch (crash, flaky predict,
  corrupt servable) re-routes to a sibling after a seeded-jitter
  :class:`~repro.distributed.faults.RetryPolicy` backoff;
* **graceful degradation** — as replicas drop out or queues fill, the
  admission policy tightens (shallower queues, shorter max-wait) instead
  of letting the pool collapse (the brownout ladder, DESIGN.md §13).

Chaos comes in as a pre-planned, seeded schedule
(:func:`~repro.serving.resilience.chaos_schedule`); every incident lands
in the shared :class:`~repro.distributed.events.EventLog` and the
``serve.replica.* / serve.breaker.* / serve.hedge.*`` metrics.

Bit-identity under failure: replicas serve the same servable and faults
only ever make a replica *fail loudly*, never mis-predict, so any
delivered response — whichever replica, hedge, or retry produced it — is
``np.array_equal`` to the fault-free answer.  The failover bit-identity
suite pins exactly this.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set

import numpy as np

from repro.distributed.events import (
    BROWNOUT,
    FAILOVER,
    HEDGE,
    PREDICT_FLAKY,
    REPLICA_CRASH,
    REPLICA_SLOW,
    SERVABLE_CORRUPT,
    EventLog,
    SimClock,
)
from repro.distributed.faults import RetryPolicy
from repro.serving.batcher import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    AdmissionPolicy,
    BatchPolicy,
    Request,
    Response,
)
from repro.serving.resilience.breaker import OPEN, BreakerPolicy, CircuitBreaker
from repro.serving.resilience.chaos import ChaosFault
from repro.serving.resilience.health import HealthChecker, HealthPolicy
from repro.serving.server import ServeReport, summarize


@dataclass(frozen=True)
class HedgePolicy:
    """When and how often to duplicate a waiting request."""

    #: Simulated seconds after arrival before the hedge fires.
    delay: float = 0.005
    #: Hedges per request (1 = at most one duplicate).
    max_hedges: int = 1

    def __post_init__(self):
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.max_hedges < 1:
            raise ValueError(f"max_hedges must be >= 1, got {self.max_hedges}")


@dataclass(frozen=True)
class DegradationPolicy:
    """The brownout ladder: how admission tightens per degradation level.

    The level is the number of unavailable replicas (dead, unhealthy, or
    breaker-open), plus one when total queued work exceeds
    ``overload_queue_frac`` of the pool's aggregate queue capacity.  At
    level ``L`` the effective queue depth is ``depth * queue_depth_factor
    ** L`` and the effective batching max-wait is ``max_wait *
    max_wait_factor ** L`` — shed earlier, dispatch sooner, stay up.
    """

    queue_depth_factor: float = 0.5
    max_wait_factor: float = 0.5
    overload_queue_frac: float = 0.75

    def __post_init__(self):
        for name in ("queue_depth_factor", "max_wait_factor"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if not 0.0 < self.overload_queue_frac <= 1.0:
            raise ValueError(
                f"overload_queue_frac must be in (0, 1], got "
                f"{self.overload_queue_frac}"
            )


class _Pending:
    """Router-side bookkeeping for one logical request."""

    __slots__ = ("req", "done", "live", "tried", "hedges", "failovers")

    def __init__(self, req: Request):
        self.req = req
        self.done = False
        self.live = 0  # attempts queued, in flight, or awaiting re-dispatch
        self.tried: Set[int] = set()
        self.hedges = 0
        self.failovers = 0


class _Attempt:
    """One copy of a request sitting in (or flying through) a replica."""

    __slots__ = ("pending", "enqueued_at", "fire_deadline", "kind")

    def __init__(self, pending: _Pending, enqueued_at: float, fire_deadline: float, kind: str):
        self.pending = pending
        self.enqueued_at = enqueued_at
        self.fire_deadline = fire_deadline
        self.kind = kind  # "primary" | "hedge" | "failover"


class _Replica:
    """Simulated state of one servable replica."""

    __slots__ = (
        "index", "queue", "inflight", "busy_until", "alive", "corrupt",
        "flaky", "slow_from", "slow_until", "slow_factor", "epoch",
        "next_check", "breaker",
    )

    def __init__(self, index: int, breaker: Optional[CircuitBreaker]):
        self.index = index
        self.queue: List[_Attempt] = []
        self.inflight: List[_Attempt] = []
        self.busy_until = 0.0
        self.alive = True
        self.corrupt = False
        self.flaky = 0
        self.slow_from = 0.0
        self.slow_until = 0.0
        self.slow_factor = 1.0
        self.epoch = 0
        self.next_check: Optional[float] = None
        self.breaker = breaker

    def speed_factor(self, now: float) -> float:
        if self.slow_from <= now < self.slow_until:
            return self.slow_factor
        return 1.0

    @property
    def load(self) -> int:
        return len(self.queue) + len(self.inflight)


_EPS = 1e-12


class ReplicaPool:
    """Deterministic replicated serving loop with a failure story.

    ``model_fn(samples) -> array`` is shared by every replica (they serve
    the same servable); ``service_model(n) -> seconds`` is scaled by a
    replica's chaos slow-factor.  Passing ``health=None``, ``hedge=None``,
    ``breaker=None`` and ``retry=RetryPolicy(max_retries=0)`` yields a
    no-resilience pool — the baseline arm the resilience bench compares
    against.
    """

    def __init__(
        self,
        model_fn: Callable[[List[object]], np.ndarray],
        num_replicas: int = 3,
        batch: Optional[BatchPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        service_model: Optional[Callable[[int], float]] = None,
        hedge: Optional[HedgePolicy] = HedgePolicy(),
        breaker: Optional[BreakerPolicy] = BreakerPolicy(),
        health: Optional[HealthPolicy] = HealthPolicy(),
        degradation: Optional[DegradationPolicy] = DegradationPolicy(),
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[Sequence[ChaosFault]] = None,
        clock: Optional[SimClock] = None,
        events: Optional[EventLog] = None,
        observer=None,
        seed: int = 0,
    ):
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        self.model_fn = model_fn
        self.batch = batch if batch is not None else BatchPolicy()
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.service_model = service_model if service_model is not None else (lambda n: 0.0)
        self.hedge = hedge
        self.degradation = degradation
        self.retry = retry if retry is not None else RetryPolicy(
            max_retries=2, backoff_base_s=0.002, backoff_factor=2.0,
            jitter=0.5, jitter_seed=seed,
        )
        self.clock = clock if clock is not None else SimClock()
        self.events = events if events is not None else EventLog(self.clock)
        self.observer = observer
        self.chaos = sorted(chaos, key=lambda f: (f.time, f.replica, f.kind)) if chaos else []
        metrics = observer.metrics if observer is not None else None
        self.replicas = [
            _Replica(
                i,
                CircuitBreaker(
                    breaker, self.clock, replica=i, seed=seed,
                    events=self.events, metrics=metrics,
                )
                if breaker is not None
                else None,
            )
            for i in range(num_replicas)
        ]
        self.health = (
            HealthChecker(health, self.clock, events=self.events, metrics=metrics)
            if health is not None
            else None
        )
        self._health_policy = health
        # Event-loop state (reset per run).
        self._heap: List = []
        self._seq = 0
        self._responses: List[Response] = []
        self._arrivals_left = 0
        self._open_requests = 0
        self._level = 0
        self._peak_level = 0
        self._peak_depth = 0

    # ------------------------------------------------------------------ #
    # Observability helpers
    # ------------------------------------------------------------------ #
    def _counter(self, name: str, amount: float = 1) -> None:
        if self.observer is not None:
            self.observer.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self.observer is not None:
            self.observer.metrics.histogram(name).observe(value)

    def _span(self, name: str, start: float, end: float, **attrs) -> None:
        if self.observer is not None:
            self.observer.span_at(name, start, end, **attrs)

    # ------------------------------------------------------------------ #
    # Event queue
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: str, payload) -> None:
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def _advance_to(self, time: float) -> None:
        if self.clock.now() < time:
            self.clock.advance(time - self.clock.now())

    # ------------------------------------------------------------------ #
    # Routing and degradation
    # ------------------------------------------------------------------ #
    def _available(self, replica: _Replica) -> bool:
        """Router-visible availability (chaos the router has *detected*)."""
        if not replica.alive:
            return False
        if self.health is not None and not self.health.healthy(replica.index):
            return False
        return True

    def _degrade_level(self) -> int:
        if self.degradation is None:
            return 0
        level = sum(
            1
            for r in self.replicas
            if not self._available(r) or (r.breaker is not None and r.breaker.state == OPEN)
        )
        depth = self.admission.max_queue_depth
        if depth is not None:
            queued = sum(len(r.queue) for r in self.replicas)
            cap = depth * len(self.replicas)
            if queued >= self.degradation.overload_queue_frac * cap:
                level += 1
        return level

    def _refresh_level(self) -> int:
        level = self._degrade_level()
        if level != self._level:
            self.events.record(BROWNOUT, level=level)
            self._counter("serve.degrade.transitions")
            self._level = level
            self._peak_level = max(self._peak_level, level)
        return level

    def _effective_depth(self, level: int) -> Optional[int]:
        depth = self.admission.max_queue_depth
        if depth is None or self.degradation is None or level == 0:
            return depth
        return max(1, int(np.ceil(depth * self.degradation.queue_depth_factor**level)))

    def _effective_max_wait(self, level: int) -> float:
        wait = self.batch.max_wait
        if self.degradation is None or level == 0:
            return wait
        return wait * self.degradation.max_wait_factor**level

    def _candidates(self, exclude: Set[int] = frozenset()) -> List[_Replica]:
        """Admissible replicas in routing order (least load, lowest index).

        The breaker is consulted per candidate — a half-open breaker
        consumes one seeded admission draw per query, deterministically.
        """
        ranked = sorted(
            (r for r in self.replicas if self._available(r) and r.index not in exclude),
            key=lambda r: (r.load, r.index),
        )
        return [
            r for r in ranked if r.breaker is None or r.breaker.allow()
        ]

    # ------------------------------------------------------------------ #
    # Terminal responses
    # ------------------------------------------------------------------ #
    def _deliver(
        self,
        pending: _Pending,
        status: str,
        now: float,
        value: Optional[float] = None,
        dispatched_at: Optional[float] = None,
        batch_size: int = 0,
        replica: Optional[int] = None,
    ) -> None:
        pending.done = True
        self._open_requests -= 1
        req = pending.req
        self._responses.append(
            Response(
                request_id=req.request_id,
                client_id=req.client_id,
                status=status,
                value=value,
                arrival=req.arrival,
                dispatched_at=dispatched_at,
                completed_at=now,
                batch_size=batch_size,
                replica=replica,
            )
        )
        self._span(
            "serve.request", req.arrival, now,
            request_id=req.request_id, status=status, replica=replica,
        )

    # ------------------------------------------------------------------ #
    # Enqueueing and dispatch
    # ------------------------------------------------------------------ #
    def _schedule_check(self, replica: _Replica, at: float) -> None:
        at = max(at, self.clock.now())
        if replica.next_check is not None and replica.next_check <= at + _EPS:
            return
        replica.next_check = at
        self._push(at, "check", replica.index)

    def _enqueue(self, replica: _Replica, pending: _Pending, now: float, kind: str) -> None:
        level = self._refresh_level()
        pending.tried.add(replica.index)
        fire_deadline = now + self._effective_max_wait(level)
        replica.queue.append(_Attempt(pending, now, fire_deadline, kind))
        self._peak_depth = max(self._peak_depth, len(replica.queue))
        self._counter("serve.queue.admitted")
        self._schedule_check(replica, now)

    def _launch_failover(self, pending: _Pending, now: float, reason: str) -> bool:
        """Try to re-dispatch a failed attempt; returns False if given up.

        The caller still owns the attempt's live slot: on success the slot
        transfers to the scheduled re-dispatch, on failure the caller
        releases it.
        """
        if pending.done:
            return False
        if pending.failovers >= self.retry.max_retries or len(self.replicas) < 2:
            return False
        backoff = self.retry.backoff(pending.failovers, key=pending.req.request_id)
        pending.failovers += 1
        self.events.record(
            FAILOVER, request_id=pending.req.request_id, reason=reason
        )
        self._counter("serve.failover.launched")
        self._push(now + backoff, "enqueue", pending)
        return True

    def _attempt_failed(self, attempt: _Attempt, now: float, reason: str) -> None:
        pending = attempt.pending
        self._counter("serve.replica.attempt_failures")
        if pending.done:
            pending.live -= 1
            return
        if self._launch_failover(pending, now, reason):
            return  # live slot carried over to the scheduled re-dispatch
        pending.live -= 1
        if pending.live == 0:
            self._counter("serve.failed")
            self._deliver(pending, STATUS_FAILED, now)

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _handle_arrival(self, now: float, req: Request) -> None:
        self._arrivals_left -= 1
        pending = _Pending(req)
        self._open_requests += 1
        level = self._refresh_level()
        depth = self._effective_depth(level)
        if self.admission.deadline is not None and req.deadline is None:
            req.deadline = req.arrival + self.admission.deadline
        candidates = self._candidates()
        target = None
        for replica in candidates:
            if depth is None or len(replica.queue) < depth:
                target = replica
                break
        if target is None:
            name = "serve.shed.no_replica" if not candidates else "serve.shed.queue_full"
            self._counter(name)
            self._deliver(pending, STATUS_SHED, now)
            return
        pending.live = 1
        self._enqueue(target, pending, now, "primary")
        if (
            self.hedge is not None
            and len(self.replicas) > 1
            and self.hedge.max_hedges > 0
        ):
            self._push(now + self.hedge.delay, "hedge", pending)

    def _handle_enqueue(self, now: float, pending: _Pending) -> None:
        """A failover re-dispatch whose backoff just elapsed."""
        if pending.done:
            pending.live -= 1
            return
        candidates = self._candidates(exclude=pending.tried)
        if not candidates:
            candidates = self._candidates()  # all siblings tried: retry anywhere
        if not candidates:
            pending.live -= 1
            if pending.live == 0:
                self._counter("serve.failed")
                self._deliver(pending, STATUS_FAILED, now)
            return
        self._enqueue(candidates[0], pending, now, "failover")

    def _handle_hedge(self, now: float, pending: _Pending) -> None:
        if pending.done or pending.hedges >= self.hedge.max_hedges:
            return
        candidates = self._candidates(exclude=pending.tried)
        if not candidates:
            return
        pending.hedges += 1
        pending.live += 1
        self.events.record(
            HEDGE, rank=candidates[0].index,
            request_id=pending.req.request_id,
        )
        self._counter("serve.hedge.launched")
        self._enqueue(candidates[0], pending, now, "hedge")
        if pending.hedges < self.hedge.max_hedges:
            self._push(now + self.hedge.delay, "hedge", pending)

    def _handle_check(self, now: float, index: int) -> None:
        replica = self.replicas[index]
        if replica.next_check is not None and abs(replica.next_check - now) <= _EPS:
            replica.next_check = None
        if not replica.alive or not replica.queue:
            return
        max_batch = self.batch.max_batch_size
        if len(replica.queue) >= max_batch:
            trigger = now
        else:
            trigger = replica.queue[0].fire_deadline
        fire_at = max(trigger, replica.busy_until)
        if fire_at > now + _EPS:
            self._schedule_check(replica, fire_at)
            return
        self._dispatch(replica, now)
        if replica.queue:
            self._schedule_check(replica, now)

    def _dispatch(self, replica: _Replica, now: float) -> None:
        max_batch = self.batch.max_batch_size
        batch = replica.queue[:max_batch]
        del replica.queue[:max_batch]

        # Drop attempts whose logical request already finished elsewhere
        # (a hedge or failover won) before spending a forward on them.
        live_batch: List[_Attempt] = []
        for attempt in batch:
            if attempt.pending.done:
                attempt.pending.live -= 1
                self._counter("serve.hedge.cancelled")
            else:
                live_batch.append(attempt)
        if not live_batch:
            return

        duration = float(self.service_model(len(live_batch))) * replica.speed_factor(now)
        completed_at = now + duration

        # Conservative deadline check, as in MicroBatcher: the duration is
        # computed before timeouts are removed, so removal only shrinks
        # the batch and the verdict stays deterministic.
        kept: List[_Attempt] = []
        for attempt in live_batch:
            deadline = attempt.pending.req.deadline
            if deadline is not None and completed_at > deadline:
                self._counter("serve.shed.deadline")
                attempt.pending.live -= 1
                if attempt.pending.live == 0:
                    self._deliver(
                        attempt.pending, STATUS_TIMEOUT, now,
                        dispatched_at=now, batch_size=len(live_batch),
                        replica=replica.index,
                    )
            else:
                kept.append(attempt)
        if not kept:
            return

        # Fault modes fail the whole dispatch loudly — never a wrong value.
        if replica.corrupt or replica.flaky > 0:
            reason = SERVABLE_CORRUPT if replica.corrupt else PREDICT_FLAKY
            if replica.flaky > 0 and not replica.corrupt:
                replica.flaky -= 1
            if replica.breaker is not None:
                replica.breaker.record_error()
            self._counter("serve.replica.dispatch_errors")
            for attempt in kept:
                self._attempt_failed(attempt, now, reason)
            return

        replica.inflight = kept
        replica.busy_until = completed_at
        self._counter("serve.batch.dispatched")
        self._counter("serve.batch.requests", len(kept))
        self._observe("serve.batch.size", len(kept))
        self._push(
            completed_at,
            "complete",
            {
                "replica": replica.index,
                "batch": kept,
                "fired_at": now,
                "completed_at": completed_at,
                "duration": duration,
                "epoch": replica.epoch,
            },
        )

    def _handle_complete(self, now: float, payload: dict) -> None:
        replica = self.replicas[payload["replica"]]
        if payload["epoch"] != replica.epoch:
            return  # the replica crashed mid-flight; attempts already failed over
        batch: List[_Attempt] = payload["batch"]
        replica.inflight = []
        values = np.atleast_1d(
            np.asarray(self.model_fn([a.pending.req.sample for a in batch]))
        )
        if len(values) != len(batch):
            raise RuntimeError(
                f"model_fn returned {len(values)} values for {len(batch)} requests"
            )
        if replica.breaker is not None:
            replica.breaker.record_success(latency=payload["duration"])
        fired_at = payload["fired_at"]
        self._span(
            "serve.batch", fired_at, now,
            batch_size=len(batch), replica=replica.index,
        )
        for attempt, value in zip(batch, values):
            pending = attempt.pending
            pending.live -= 1
            if pending.done:
                self._counter("serve.hedge.wasted")
                continue
            if attempt.kind == "hedge":
                self._counter("serve.hedge.won")
            self._observe("serve.queue.wait_seconds", fired_at - attempt.enqueued_at)
            self._deliver(
                pending, STATUS_OK, now, value=float(value),
                dispatched_at=fired_at, batch_size=len(batch),
                replica=replica.index,
            )
        if replica.queue:
            self._schedule_check(replica, now)

    def _handle_probe(self, now: float, index: int) -> None:
        replica = self.replicas[index]
        up = replica.alive and not replica.corrupt
        latency = (
            float(self.service_model(1)) * replica.speed_factor(now) if up else 0.0
        )
        self.health.observe(index, ok=up, latency=latency)
        self._refresh_level()
        if self._arrivals_left > 0 or self._open_requests > 0:
            self._push(now + self._health_policy.interval, "probe", index)

    def _handle_chaos(self, now: float, fault: ChaosFault) -> None:
        replica = self.replicas[fault.replica % len(self.replicas)]
        fault.fired = True
        if fault.kind == REPLICA_CRASH:
            replica.alive = False
            replica.epoch += 1
            self.events.record(REPLICA_CRASH, rank=replica.index)
            self._counter("serve.replica.crashes")
            affected = replica.inflight + replica.queue
            replica.inflight = []
            replica.queue = []
            for attempt in affected:
                self._attempt_failed(attempt, now, REPLICA_CRASH)
        elif fault.kind == REPLICA_SLOW:
            replica.slow_from = now
            replica.slow_until = now + fault.duration
            replica.slow_factor = fault.factor
            self.events.record(
                REPLICA_SLOW, rank=replica.index,
                factor=fault.factor, duration=fault.duration,
            )
            self._counter("serve.replica.slowdowns")
        elif fault.kind == SERVABLE_CORRUPT:
            replica.corrupt = True
            self.events.record(SERVABLE_CORRUPT, rank=replica.index)
            self._counter("serve.replica.corruptions")
        elif fault.kind == PREDICT_FLAKY:
            replica.flaky += 1
            self.events.record(PREDICT_FLAKY, rank=replica.index)
            self._counter("serve.replica.flaky")
        else:
            raise ValueError(f"unknown chaos fault kind {fault.kind!r}")
        self._refresh_level()

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    _HANDLERS = {
        "arrival": "_handle_arrival",
        "enqueue": "_handle_enqueue",
        "hedge": "_handle_hedge",
        "check": "_handle_check",
        "complete": "_handle_complete",
        "probe": "_handle_probe",
        "chaos": "_handle_chaos",
    }

    def run(self, requests: Sequence[Request]) -> List[Response]:
        """Drive every request to exactly one terminal response."""
        self._heap = []
        self._seq = 0
        self._responses = []
        self._open_requests = 0
        self._level = 0
        ordered = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        self._arrivals_left = len(ordered)
        for req in ordered:
            self._push(req.arrival, "arrival", req)
        for fault in self.chaos:
            self._push(fault.time, "chaos", fault)
        if self.health is not None:
            for replica in self.replicas:
                self._push(self._health_policy.interval, "probe", replica.index)

        while self._heap:
            time, _, kind, payload = heapq.heappop(self._heap)
            self._advance_to(time)
            getattr(self, self._HANDLERS[kind])(time, payload)

        if self.observer is not None:
            self.observer.metrics.gauge("serve.queue.peak_depth").set(self._peak_depth)
            self.observer.metrics.gauge("serve.degrade.peak_level").set(self._peak_level)
            self.observer.metrics.gauge("serve.replica.count").set(len(self.replicas))
            self.observer.metrics.gauge(
                "serve.replica.available"
            ).set(sum(1 for r in self.replicas if self._available(r)))
        self._responses.sort(key=lambda r: (r.completed_at, r.arrival, r.request_id))
        return self._responses

    def serve(self, requests: Sequence[Request]) -> ServeReport:
        responses = self.run(requests)
        return summarize(responses, self.observer)
