"""Servable model archives and the registry that loads them.

A *servable* is a directory pairing a CRC-checked weight archive
(``model.npz``, written by :mod:`repro.training.checkpoint_io`) with a
``servable.json`` spec describing how to rebuild the module around those
weights: encoder family and geometry, head shape, the regression target,
the graph-construction cutoff, and the target-normalizer statistics the
training run fitted.  Everything needed to serve a prediction travels in
the archive — the serving process never needs the training config.

:class:`Servable` is the loaded form: an eval-mode
:class:`~repro.tasks.regression.ScalarRegressionTask` plus the spec.  Its
``predict`` runs under ``no_grad`` *and*
:func:`~repro.autograd.batch_invariant_kernels`, which is what makes a
sample's prediction bit-identical whether it is served alone or coalesced
into a micro-batch (see DESIGN.md §12), and returns values in physical
units (the spec's normalizer statistics undo the z-scoring).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import batch_invariant_kernels, no_grad
from repro.core.config import EncoderConfig
from repro.data.batching import collate_graphs
from repro.data.structures import GraphBatch, GraphSample
from repro.data.transforms import StructureToGraph
from repro.models.registry import build_encoder
from repro.tasks import ScalarRegressionTask
from repro.training.checkpoint_io import (
    CheckpointIntegrityError,
    load_module,
    save_module,
    verify_archive,
)

SPEC_FILENAME = "servable.json"
WEIGHTS_FILENAME = "model.npz"
SPEC_VERSION = 1


@dataclass
class ServableSpec:
    """Everything needed to rebuild a property-prediction model for serving."""

    target: str
    encoder_name: str = "egnn"
    hidden_dim: int = 48
    num_layers: int = 3
    position_dim: int = 16
    num_species: int = 100
    head_hidden_dim: int = 48
    head_blocks: int = 3
    dropout: float = 0.2
    cutoff: float = 4.5
    #: ``(mean, std)`` fitted by training; ``None`` serves raw model output.
    normalizer: Optional[List[float]] = None
    version: int = SPEC_VERSION
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def encoder_config(self) -> EncoderConfig:
        return EncoderConfig(
            name=self.encoder_name,
            hidden_dim=self.hidden_dim,
            num_layers=self.num_layers,
            position_dim=self.position_dim,
            num_species=self.num_species,
        )

    def build_task(self) -> ScalarRegressionTask:
        """Instantiate the module skeleton the weight archive restores into.

        The init RNG is fixed: every draw is overwritten by the checkpoint,
        but a deterministic skeleton keeps construction reproducible even
        if a future module samples shapes from its generator.
        """
        cfg = self.encoder_config()
        encoder = build_encoder(
            self.encoder_name,
            rng=np.random.default_rng(0),
            **cfg.build_kwargs(),
        )
        task = ScalarRegressionTask(
            encoder,
            target=self.target,
            hidden_dim=self.head_hidden_dim,
            num_blocks=self.head_blocks,
            dropout=self.dropout,
            rng=np.random.default_rng(1),
        )
        task.eval()
        return task

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServableSpec":
        payload = json.loads(text)
        version = payload.get("version", 0)
        if version != SPEC_VERSION:
            raise CheckpointIntegrityError(
                f"servable spec version {version} != supported {SPEC_VERSION}"
            )
        return cls(**payload)


class Servable:
    """A loaded model ready to serve: eval-mode task + spec."""

    def __init__(self, task: ScalarRegressionTask, spec: ServableSpec):
        self.task = task.eval()
        self.spec = spec
        self._transform = StructureToGraph(cutoff=spec.cutoff)

    # ------------------------------------------------------------------ #
    def prepare(self, sample) -> GraphSample:
        """Raw structure sample -> the graph representation the model eats."""
        return self._transform(sample)

    def predict(self, samples: Sequence[GraphSample]) -> np.ndarray:
        """Physical-unit predictions for a batch of graph samples.

        Runs without gradients and under batch-invariant kernels: the value
        returned for each sample does not depend on which other samples
        share the batch, bit for bit.  This is the contract the serving
        bit-identity suite pins (``tests/test_serving_determinism.py``).
        """
        return self.predict_batch(collate_graphs(list(samples)))

    def predict_batch(self, batch: GraphBatch) -> np.ndarray:
        with no_grad(), batch_invariant_kernels():
            raw = np.atleast_1d(self.task.predict(batch).data)
        if self.spec.normalizer is not None:
            mean, std = self.spec.normalizer
            raw = raw * std + mean
        return raw

    def predict_one(self, sample: GraphSample) -> float:
        return float(self.predict([sample])[0])


# --------------------------------------------------------------------------- #
# Disk format
# --------------------------------------------------------------------------- #
def save_servable(task: ScalarRegressionTask, spec: ServableSpec, directory: str) -> str:
    """Write ``model.npz`` (CRC-checked) + ``servable.json`` under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    save_module(task, os.path.join(directory, WEIGHTS_FILENAME))
    spec_path = os.path.join(directory, SPEC_FILENAME)
    tmp_path = spec_path + ".tmp"
    with open(tmp_path, "w") as fh:
        fh.write(spec.to_json())
        fh.write("\n")
    os.replace(tmp_path, spec_path)
    return directory


def load_servable(directory: str) -> Servable:
    """Rebuild and restore a servable written by :func:`save_servable`.

    Raises :class:`CheckpointIntegrityError` when the spec is unreadable or
    the weight archive fails its CRC — a serving process must refuse to
    come up on corrupted weights rather than quietly mis-predict.
    """
    spec_path = os.path.join(directory, SPEC_FILENAME)
    try:
        with open(spec_path) as fh:
            spec = ServableSpec.from_json(fh.read())
    except (OSError, json.JSONDecodeError, TypeError) as exc:
        raise CheckpointIntegrityError(
            f"servable spec {spec_path!r} is unreadable: {exc}"
        ) from exc
    task = spec.build_task()
    load_module(task, os.path.join(directory, WEIGHTS_FILENAME))
    return Servable(task, spec)


class ModelRegistry:
    """Name -> servable-directory mapping with lazy, cached loading.

    The registry root holds one subdirectory per model name; ``load``
    caches the rebuilt :class:`Servable` so a server process pays the
    checkpoint restore once per model.
    """

    def __init__(self, root: str):
        self.root = root
        self._cache: Dict[str, Servable] = {}

    def path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def names(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if os.path.isfile(os.path.join(self.root, entry, SPEC_FILENAME))
        )

    def save(self, name: str, task: ScalarRegressionTask, spec: ServableSpec) -> str:
        directory = save_servable(task, spec, self.path(name))
        self._cache.pop(name, None)
        return directory

    def load(self, name: str) -> Servable:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        if name not in self.names():
            raise KeyError(
                f"unknown model {name!r} in registry {self.root!r}; "
                f"available: {self.names()}"
            )
        servable = load_servable(self.path(name))
        self._cache[name] = servable
        return servable

    def verify(self) -> Dict[str, Dict[str, object]]:
        """Integrity-check every servable; never raises.

        For each registered name, parses the spec and CRC-verifies the
        weight archive (:func:`~repro.training.checkpoint_io.verify_archive`
        — the same check loading performs, without building the module).
        Returns ``{name: {"ok": bool, ...}}`` with array/byte counts on
        success and the failure reason otherwise; ``repro registry
        verify`` prints exactly this.
        """
        results: Dict[str, Dict[str, object]] = {}
        for name in self.names():
            directory = self.path(name)
            try:
                with open(os.path.join(directory, SPEC_FILENAME)) as fh:
                    spec = ServableSpec.from_json(fh.read())
                info = verify_archive(os.path.join(directory, WEIGHTS_FILENAME))
            except (CheckpointIntegrityError, OSError, json.JSONDecodeError, TypeError) as exc:
                results[name] = {"ok": False, "error": str(exc)}
                continue
            results[name] = {
                "ok": True,
                "target": spec.target,
                "encoder": spec.encoder_name,
                "arrays": info["arrays"],
                "bytes": info["bytes"],
            }
        return results
