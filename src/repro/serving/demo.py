"""Tiny fixed-seed train -> servable pipeline used by the CLI, smoke
lane, serving bench, and the golden round-trip test.

``fit_demo_servable`` runs the same miniature band-gap fine-tune the
golden-metrics suite pins (48/16 samples, 3 epochs, seed 13 by default)
and archives the trained task as a servable, so every consumer exercises
the full train -> checkpoint -> registry -> serve path rather than a
hand-built model.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import numpy as np

from repro.core import EncoderConfig, FinetuneConfig, OptimizerConfig, train_band_gap
from repro.data.structures import GraphSample
from repro.data.transforms import StructureToGraph
from repro.datasets import MaterialsProjectSurrogate
from repro.serving.servable import ModelRegistry, Servable, ServableSpec

#: Registry entry name every demo consumer uses.
DEMO_MODEL_NAME = "band_gap_demo"
#: Graph cutoff matching the training workflow (core.workflows.MATERIALS_CUTOFF).
DEMO_CUTOFF = 4.5


def demo_finetune_config(seed: int = 13) -> FinetuneConfig:
    """The golden finetune config (test_golden_metrics.py), shared so the
    demo servable's training MAE stays pinned to the finetune golden."""
    return FinetuneConfig(
        encoder=EncoderConfig(hidden_dim=16, num_layers=2, position_dim=4),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=1, gamma=0.9),
        train_samples=48,
        val_samples=16,
        batch_size=8,
        max_epochs=3,
        world_size=1,
        head_hidden_dim=16,
        head_blocks=1,
        seed=seed,
    )


def fit_demo_servable(registry_root: str, seed: int = 13) -> Tuple[str, float]:
    """Train the demo model and archive it; returns (directory, final MAE)."""
    config = demo_finetune_config(seed)
    result = train_band_gap(config)
    task = result.task
    mean, std = task.normalizer.stats[config.target]
    spec = ServableSpec(
        target=config.target,
        encoder_name=config.encoder.name,
        hidden_dim=config.encoder.hidden_dim,
        num_layers=config.encoder.num_layers,
        position_dim=config.encoder.position_dim,
        num_species=config.encoder.num_species,
        head_hidden_dim=config.head_hidden_dim,
        head_blocks=config.head_blocks,
        cutoff=DEMO_CUTOFF,
        normalizer=[mean, std],
        metadata={"seed": seed, "final_mae": result.final_mae},
    )
    registry = ModelRegistry(registry_root)
    directory = registry.save(DEMO_MODEL_NAME, task, spec)
    return directory, result.final_mae


def ensure_demo_servable(registry_root: str, seed: int = 13) -> Servable:
    """Load the demo model, training and archiving it first if absent."""
    registry = ModelRegistry(registry_root)
    if DEMO_MODEL_NAME not in registry.names():
        fit_demo_servable(registry_root, seed=seed)
    return registry.load(DEMO_MODEL_NAME)


def demo_request_samples(
    count: int, seed: int = 99, cutoff: float = DEMO_CUTOFF
) -> List[GraphSample]:
    """Deterministic Materials Project query structures, graph-transformed."""
    dataset = MaterialsProjectSurrogate(num_samples=count, seed=seed)
    transform = StructureToGraph(cutoff=cutoff)
    return [transform(dataset[i]) for i in range(count)]


__all__ = [
    "DEMO_MODEL_NAME",
    "DEMO_CUTOFF",
    "demo_finetune_config",
    "demo_request_samples",
    "ensure_demo_servable",
    "fit_demo_servable",
]
