"""The inference server: servable + policies + observability, one handle.

:class:`InferenceServer` wires a loaded :class:`~repro.serving.Servable`
into a :class:`~repro.serving.MicroBatcher` with an
:class:`~repro.observability.Observer` on the shared simulated clock, and
reduces a traffic trace to a :class:`ServeReport` — the p50/p99 latency,
throughput, and shed/timeout accounting the benchmarks and the ``repro
serve`` CLI print.

Service time is modelled affinely (``a + b * batch_size``), calibrated
from real timed forwards by :func:`calibrate_service_model`: ``a`` is the
per-dispatch overhead micro-batching amortizes, ``b`` the per-sample
compute it cannot.  The model keeps the event loop deterministic while
staying anchored to measured compute on the current machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.distributed.events import SimClock
from repro.observability import Observer
from repro.serving.batcher import (
    AdmissionPolicy,
    BatchPolicy,
    MicroBatcher,
    Request,
    Response,
)
from repro.serving.servable import Servable


@dataclass
class AffineServiceModel:
    """``duration(n) = base + per_sample * n`` seconds."""

    base: float
    per_sample: float

    def __post_init__(self):
        if self.base < 0 or self.per_sample <= 0:
            raise ValueError(
                f"need base >= 0 and per_sample > 0, got {self.base}, {self.per_sample}"
            )

    def __call__(self, batch_size: int) -> float:
        return self.base + self.per_sample * batch_size

    def capacity(self, batch_size: int) -> float:
        """Sustainable throughput (req/s) at a fixed dispatch size."""
        return batch_size / self(batch_size)


def calibrate_service_model(
    servable: Servable,
    samples: Sequence[object],
    max_batch_size: int = 8,
    rounds: int = 3,
) -> AffineServiceModel:
    """Fit the affine model from real timed forwards at two batch sizes.

    Times ``predict`` at batch size 1 and ``max_batch_size`` (median of
    ``rounds``, one warmup each) and solves the two-point system for
    ``base``/``per_sample``.  Degenerate fits (non-positive slope on a
    noisy host) fall back to a flat per-sample cost.
    """
    from benchmarks.common import time_callable

    if max_batch_size < 2:
        raise ValueError("max_batch_size must be >= 2 to calibrate a slope")
    one = [samples[0]]
    many = [samples[i % len(samples)] for i in range(max_batch_size)]
    t1 = time_callable(lambda: servable.predict(one), rounds=rounds, warmup=1)
    tn = time_callable(lambda: servable.predict(many), rounds=rounds, warmup=1)
    per_sample = (tn - t1) / (max_batch_size - 1)
    if per_sample <= 0:
        per_sample = tn / max_batch_size
    base = max(t1 - per_sample, 0.0)
    return AffineServiceModel(base=base, per_sample=per_sample)


@dataclass
class ServeReport:
    """Reduced view of one serving run over a traffic trace."""

    responses: List[Response]
    p50_latency: float
    p99_latency: float
    throughput: float  # completed requests per simulated second
    mean_batch_size: float
    ok: int
    shed: int
    timeout: int
    #: Requests whose every attempt (including failovers) failed.
    failed: int = 0
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.ok + self.shed + self.timeout + self.failed

    @property
    def availability(self) -> float:
        """Fraction of offered requests answered OK (0.0 on an empty trace)."""
        if self.total == 0:
            return 0.0
        return self.ok / self.total

    def goodput(self, slo: float) -> float:
        """Completed-within-SLO requests per simulated second."""
        good = [r for r in self.responses if r.ok and r.latency <= slo]
        if not good:
            return 0.0
        span = max(r.completed_at for r in good) - min(r.arrival for r in self.responses)
        if span <= 0:
            return 0.0
        return len(good) / span

    def summary(self) -> str:
        return (
            f"{self.ok}/{self.total} ok ({self.shed} shed, {self.timeout} timeout, "
            f"{self.failed} failed), availability {self.availability:.3f}, "
            f"p50 {self.p50_latency * 1e3:.2f} ms, p99 {self.p99_latency * 1e3:.2f} ms, "
            f"{self.throughput:.1f} req/s, mean batch {self.mean_batch_size:.2f}"
        )


class InferenceServer:
    """Micro-batched serving over a servable, fully observable."""

    def __init__(
        self,
        servable: Servable,
        batch: Optional[BatchPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        service_model=None,
        observer: Optional[Observer] = None,
        clock: Optional[SimClock] = None,
    ):
        self.servable = servable
        self.clock = clock if clock is not None else SimClock()
        self.observer = observer if observer is not None else Observer(clock=self.clock)
        self.batcher = MicroBatcher(
            servable.predict,
            batch=batch,
            admission=admission,
            service_model=service_model,
            clock=self.clock,
            observer=self.observer,
        )

    def serve(self, requests: Sequence[Request]) -> ServeReport:
        responses = self.batcher.run(requests)
        return summarize(responses, self.observer)


def summarize(
    responses: Sequence[Response], observer: Optional[Observer] = None
) -> ServeReport:
    """Reduce raw responses to the report the benches and CLI print.

    Degenerate traces reduce without raising: an empty response list, a
    trace where nothing completed, or a single instantaneous completion
    (zero observation span) all yield a report with 0.0 throughput rather
    than a division error — chaos runs can and do produce all three.
    """
    completed = [r for r in responses if r.ok]
    latencies = np.array([r.latency for r in completed], dtype=np.float64)
    if len(completed) >= 1:
        span = max(r.completed_at for r in completed) - min(
            r.arrival for r in responses
        )
        throughput = len(completed) / span if span > 0 else 0.0
        p50 = float(np.percentile(latencies, 50))
        p99 = float(np.percentile(latencies, 99))
        mean_batch = float(np.mean([r.batch_size for r in completed]))
    else:
        throughput = p50 = p99 = mean_batch = 0.0
    return ServeReport(
        responses=list(responses),
        p50_latency=p50,
        p99_latency=p99,
        throughput=throughput,
        mean_batch_size=mean_batch,
        ok=len(completed),
        shed=sum(r.status == "shed" for r in responses),
        timeout=sum(r.status == "timeout" for r in responses),
        failed=sum(r.status == "failed" for r in responses),
        metrics=observer.metrics.snapshot() if observer is not None else {},
    )
