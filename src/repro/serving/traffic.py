"""Open-loop traffic generation for serving experiments.

Open-loop means arrivals do not wait for responses: requests land on the
server at times drawn from a Poisson process regardless of how far behind
it is — the standard model for "heavy traffic from many independent
users", and the one that actually exposes queueing collapse (a closed
loop self-throttles and hides it).  Seeded generators keep every traffic
trace reproducible.
"""

from __future__ import annotations

from itertools import cycle
from typing import List, Optional, Sequence

import numpy as np

from repro.serving.batcher import Request


def poisson_arrivals(
    rate: float, count: int, seed: int = 0, start: float = 0.0
) -> np.ndarray:
    """``count`` arrival times from a Poisson process of ``rate`` req/s."""
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=count)
    return start + np.cumsum(gaps)


def make_requests(
    samples: Sequence[object],
    arrivals: Sequence[float],
    num_clients: int = 4,
    deadline: Optional[float] = None,
) -> List[Request]:
    """Pair arrival times with payloads (cycled) and round-robin clients."""
    if not samples:
        raise ValueError("samples must be non-empty")
    sample_cycle = cycle(samples)
    return [
        Request(
            request_id=i,
            sample=next(sample_cycle),
            arrival=float(t),
            client_id=f"client-{i % num_clients}",
            deadline=None if deadline is None else float(t) + deadline,
        )
        for i, t in enumerate(arrivals)
    ]
