"""Dynamic micro-batching on a simulated-clock event loop.

Concurrent property-prediction requests are coalesced into batches under a
``(max_batch_size, max_wait)`` policy: a batch dispatches as soon as it is
full, or when its oldest member has waited ``max_wait``, whichever comes
first — the standard dynamic-batching rule serving systems use to trade a
bounded latency cost for batched throughput.

Time is a :class:`~repro.distributed.events.SimClock`, exactly like the
fault-tolerance and backoff machinery: the loop is a discrete-event
simulation, so every run is deterministic and finishes in milliseconds
regardless of the traffic it models.  The dispatch rule is::

    trigger = queue[max_batch-1].arrival          # if the batch is full
            | queue[0].arrival + max_wait         # otherwise
    fire_at = max(trigger, busy_until)            # one server, FIFO

Arrivals strictly before ``fire_at`` join the queue first (an arrival at
exactly ``fire_at`` rides the *next* batch), which makes the coalescing
deterministic: the same arrival sequence always produces the same batches,
the same sheds, and — through batch-invariant kernels — the same bits.

Admission control happens at arrival time: a request that finds the queue
at ``max_queue_depth`` is shed immediately (load shedding), and a request
whose deadline would expire before its batch completes is timed out at
dispatch instead of wasting a forward pass.  The deadline check uses the
batch duration *before* timeouts are removed — removal only shrinks the
batch, so the check is conservative and stays deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.distributed.events import SimClock

#: Response status vocabulary.
STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_TIMEOUT = "timeout"
#: Every attempt (including failovers) failed — replicated serving only.
STATUS_FAILED = "failed"


@dataclass
class Request:
    """One inference request: a payload plus its arrival on the sim clock."""

    request_id: int
    sample: object
    arrival: float
    client_id: str = "client-0"
    #: Absolute completion deadline on the sim clock (None = no deadline).
    deadline: Optional[float] = None


@dataclass
class Response:
    """The terminal record for one request."""

    request_id: int
    client_id: str
    status: str
    value: Optional[float]
    arrival: float
    dispatched_at: Optional[float]
    completed_at: float
    batch_size: int = 0
    #: Which replica answered (None for the single-server MicroBatcher).
    replica: Optional[int] = None

    @property
    def latency(self) -> float:
        return self.completed_at - self.arrival

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class BatchPolicy:
    """Coalescing knobs: batch cap and the oldest-request wait bound."""

    max_batch_size: int = 8
    max_wait: float = 0.01

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")


@dataclass
class AdmissionPolicy:
    """Load shedding and deadline knobs (None disables either)."""

    max_queue_depth: Optional[int] = None
    deadline: Optional[float] = None

    def __post_init__(self):
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")


class MicroBatcher:
    """Deterministic single-server micro-batching loop.

    ``model_fn(samples) -> array`` scores a batch; ``service_model(n) ->
    seconds`` is how long an ``n``-sample forward occupies the simulated
    server (default: instantaneous, which unit tests use to isolate the
    queueing behaviour).  An :class:`~repro.observability.Observer` sharing
    the loop's clock picks up ``serve.*`` counters and per-batch /
    per-request trace spans.
    """

    def __init__(
        self,
        model_fn: Callable[[List[object]], np.ndarray],
        batch: Optional[BatchPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        service_model: Optional[Callable[[int], float]] = None,
        clock: Optional[SimClock] = None,
        observer=None,
    ):
        self.model_fn = model_fn
        self.batch = batch if batch is not None else BatchPolicy()
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.service_model = service_model if service_model is not None else (lambda n: 0.0)
        self.clock = clock if clock is not None else SimClock()
        self.observer = observer

    # ------------------------------------------------------------------ #
    def _counter(self, name: str, amount: float = 1) -> None:
        if self.observer is not None:
            self.observer.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self.observer is not None:
            self.observer.metrics.histogram(name).observe(value)

    def _span(self, name: str, start: float, end: float, **attrs) -> None:
        """Record a span stretched onto simulated [start, end]."""
        if self.observer is None:
            return
        self.observer.span_at(name, start, end, **attrs)

    # ------------------------------------------------------------------ #
    def run(self, requests: Sequence[Request]) -> List[Response]:
        """Drive every request to a terminal response; returns them sorted
        by completion time (ties broken by arrival, then request id)."""
        pending = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        max_batch = self.batch.max_batch_size
        depth_cap = self.admission.max_queue_depth
        rel_deadline = self.admission.deadline

        queue: List[Request] = []
        responses: List[Response] = []
        busy_until = 0.0
        peak_depth = 0
        i = 0

        def admit(req: Request) -> None:
            nonlocal peak_depth
            if self.clock.now() < req.arrival:
                self.clock.advance(req.arrival - self.clock.now())
            if depth_cap is not None and len(queue) >= depth_cap:
                self._counter("serve.shed.queue_full")
                responses.append(
                    Response(
                        request_id=req.request_id,
                        client_id=req.client_id,
                        status=STATUS_SHED,
                        value=None,
                        arrival=req.arrival,
                        dispatched_at=None,
                        completed_at=req.arrival,
                    )
                )
                self._span(
                    "serve.request",
                    req.arrival,
                    req.arrival,
                    request_id=req.request_id,
                    status=STATUS_SHED,
                )
                return
            if rel_deadline is not None and req.deadline is None:
                req.deadline = req.arrival + rel_deadline
            queue.append(req)
            peak_depth = max(peak_depth, len(queue))
            self._counter("serve.queue.admitted")

        while i < len(pending) or queue:
            if not queue:
                admit(pending[i])
                i += 1
                continue
            if len(queue) >= max_batch:
                trigger = queue[max_batch - 1].arrival
            else:
                trigger = queue[0].arrival + self.batch.max_wait
            fire_at = max(trigger, busy_until)
            if i < len(pending) and pending[i].arrival < fire_at:
                admit(pending[i])
                i += 1
                continue

            batch = queue[:max_batch]
            del queue[:max_batch]
            if self.clock.now() < fire_at:
                self.clock.advance(fire_at - self.clock.now())
            duration = float(self.service_model(len(batch)))
            completed_at = fire_at + duration

            kept: List[Request] = []
            for req in batch:
                if req.deadline is not None and completed_at > req.deadline:
                    self._counter("serve.shed.deadline")
                    responses.append(
                        Response(
                            request_id=req.request_id,
                            client_id=req.client_id,
                            status=STATUS_TIMEOUT,
                            value=None,
                            arrival=req.arrival,
                            dispatched_at=fire_at,
                            completed_at=fire_at,
                            batch_size=len(batch),
                        )
                    )
                    self._span(
                        "serve.request",
                        req.arrival,
                        fire_at,
                        request_id=req.request_id,
                        status=STATUS_TIMEOUT,
                    )
                else:
                    kept.append(req)
            if not kept:
                continue

            self.clock.advance(completed_at - self.clock.now())
            busy_until = completed_at
            values = np.atleast_1d(
                np.asarray(self.model_fn([req.sample for req in kept]))
            )
            if len(values) != len(kept):
                raise RuntimeError(
                    f"model_fn returned {len(values)} values for {len(kept)} requests"
                )
            self._counter("serve.batch.dispatched")
            self._counter("serve.batch.requests", len(kept))
            self._observe("serve.batch.size", len(kept))
            self._span("serve.batch", fire_at, completed_at, batch_size=len(kept))
            for req, value in zip(kept, values):
                self._observe("serve.queue.wait_seconds", fire_at - req.arrival)
                responses.append(
                    Response(
                        request_id=req.request_id,
                        client_id=req.client_id,
                        status=STATUS_OK,
                        value=float(value),
                        arrival=req.arrival,
                        dispatched_at=fire_at,
                        completed_at=completed_at,
                        batch_size=len(kept),
                    )
                )
                self._span(
                    "serve.request",
                    req.arrival,
                    completed_at,
                    request_id=req.request_id,
                    status=STATUS_OK,
                )

        if self.observer is not None:
            self.observer.metrics.gauge("serve.queue.peak_depth").set(peak_depth)
        responses.sort(key=lambda r: (r.completed_at, r.arrival, r.request_id))
        return responses
