#!/usr/bin/env python
"""Semantic dataset exploration (the paper's Fig. 4) with an ASCII UMAP.

Embeds samples from every supported dataset with an E(n)-GNN, projects to
2-D with the from-scratch UMAP implementation, renders the map as ASCII,
and prints the quantitative versions of the paper's three observations.

Run:  python examples/dataset_explorer.py
"""

import numpy as np

from repro.core import EncoderConfig, explore_datasets, transfer_pretrain_recipe
from repro.core import cached_pretrained_encoder
from repro.core.pipeline import build_encoder_from_config

WIDTH, HEIGHT = 72, 24
GLYPHS = {"oc20": "o", "oc22": "x", "materials_project": "M", "carolina": "c", "lips": "L"}


def ascii_scatter(points: np.ndarray, labels: np.ndarray, names) -> str:
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.maximum(hi - lo, 1e-9)
    canvas = [[" "] * WIDTH for _ in range(HEIGHT)]
    for (x, y), lbl in zip(points, labels):
        col = int((x - lo[0]) / span[0] * (WIDTH - 1))
        row = int((y - lo[1]) / span[1] * (HEIGHT - 1))
        canvas[HEIGHT - 1 - row][col] = GLYPHS[names[lbl]]
    border = "+" + "-" * WIDTH + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in canvas)
    return f"{border}\n{body}\n{border}"


def main() -> None:
    recipe = transfer_pretrain_recipe()
    print("loading / training the pretrained encoder (cached after first run) ...")
    state = cached_pretrained_encoder(recipe)
    encoder = build_encoder_from_config(recipe.encoder, rng=np.random.default_rng(0))
    encoder.load_state_dict(state)

    print("embedding 40 structures from each of the five datasets ...")
    result = explore_datasets(encoder, samples_per_dataset=40, umap_epochs=150)

    legend = "  ".join(f"{g} = {name}" for name, g in GLYPHS.items())
    print(f"\nUMAP projection ({legend}):\n")
    print(ascii_scatter(result.projection, result.labels, result.names))

    sil = result.by_name(result.silhouettes)
    spread = result.by_name(result.spreads)
    print(f"\n{'dataset':>18} {'silhouette':>11} {'spread':>8} {'self-cohesion':>14}")
    for i, name in enumerate(result.names):
        print(
            f"{name:>18} {sil[name]:>11.3f} {spread[name]:>8.3f} "
            f"{result.overlap[i, i]:>14.3f}"
        )
    print(
        "\nobservations (cf. paper Sec. 5.3): LiPS forms the clearest "
        "independent cluster; the OCP datasets share slab motifs; the "
        "Materials Project surrogate spans the broadest structural variety "
        "among the bulk datasets."
    )


if __name__ == "__main__":
    main()
