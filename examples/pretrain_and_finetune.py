#!/usr/bin/env python
"""The paper's full workflow at mini scale: symmetry pretraining,
fine-tuning, and the pretrained-vs-scratch comparison.

Reproduces Sec. 5.2 + 5.4 in miniature:

1. pretrain an E(n)-GNN to classify crystallographic point groups from
   synthetic point clouds (simulated 8-rank DDP, lr = eta_base * N);
2. transplant the encoder into a Materials-Project band-gap task
   (encoder at lr/10 per the anti-forgetting rule);
3. train an identically-seeded model from scratch and compare.

Run:  python examples/pretrain_and_finetune.py
"""

from repro.core import (
    EncoderConfig,
    FinetuneConfig,
    OptimizerConfig,
    PretrainConfig,
    pretrain_symmetry,
    train_band_gap,
)

ENCODER = EncoderConfig(hidden_dim=24, num_layers=2, position_dim=8)


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. Pretraining on symmetry point clouds (Sec. 5.2)
    # ----------------------------------------------------------------- #
    pretrain_cfg = PretrainConfig(
        encoder=ENCODER,
        optimizer=OptimizerConfig(base_lr=4e-4, warmup_epochs=3, gamma=0.95),
        group_names=["C1", "Ci", "C2v", "C4", "D2h", "Td", "Oh", "C6"],
        train_samples=256,
        val_samples=64,
        world_size=8,           # simulated DDP ranks
        batch_per_worker=2,     # B_eff = 16
        max_epochs=10,
        radius_range=(1.5, 4.0),
        head_hidden_dim=24,
        head_blocks=2,
        seed=7,
    )
    print(
        f"pretraining: {pretrain_cfg.world_size} simulated ranks, "
        f"B_eff={pretrain_cfg.effective_batch}, "
        f"lr={pretrain_cfg.optimizer.base_lr * pretrain_cfg.world_size:g}"
    )
    pretrain = pretrain_symmetry(pretrain_cfg)
    _, ce = pretrain.history.series("val", "ce")
    _, acc = pretrain.history.series("val", "acc")
    print(f"  val CE  {ce[0]:.2f} -> {ce[-1]:.2f}")
    print(f"  val acc {acc[0]:.2f} -> {acc[-1]:.2f} (chance 0.125)")
    print(f"  throughput {pretrain.throughput.samples_per_second:.0f} samples/s, "
          f"spikes detected: {pretrain.spikes.spike_count}")

    # ----------------------------------------------------------------- #
    # 2 & 3. Fine-tune from the pretrained encoder and from scratch
    # ----------------------------------------------------------------- #
    finetune_cfg = FinetuneConfig(
        encoder=ENCODER,
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=4, gamma=0.9),
        train_samples=128,
        val_samples=40,
        batch_size=16,
        max_epochs=15,
        world_size=8,
        head_hidden_dim=24,
        head_blocks=2,
        seed=11,
    )
    print("\nfine-tuning on Materials Project band gap ...")
    scratch = train_band_gap(finetune_cfg)
    pretrained = train_band_gap(
        finetune_cfg, pretrained_state=pretrain.task.encoder_state()
    )

    print("\nvalidation MAE (eV):   scratch   pretrained")
    for epoch, (s, p) in enumerate(
        zip(scratch.curve_mae, pretrained.curve_mae), start=1
    ):
        print(f"  epoch {epoch:2d}:        {s:8.3f} {p:10.3f}")
    print(
        f"\nearly (20%): scratch {scratch.mae_at_fraction(0.2):.3f} vs "
        f"pretrained {pretrained.mae_at_fraction(0.2):.3f}"
    )
    print(f"final:        scratch {scratch.final_mae:.3f} vs "
          f"pretrained {pretrained.final_mae:.3f}")
    print(
        "\n(the paper's Fig. 5: pretraining buys early convergence; at long "
        "horizons the from-scratch model catches up — see the Fig. 5 bench "
        "for the calibrated multi-seed version)"
    )


if __name__ == "__main__":
    main()
