#!/usr/bin/env python
"""Quickstart: train an E(n)-GNN band-gap regressor in ~1 minute on CPU.

Walks the toolkit's Fig.-1 pipeline end to end:

    dataset  ->  transform  ->  task (encoder + head)  ->  trainer

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import seed_everything
from repro.data import DataLoader, train_val_split
from repro.data.transforms import StructureToGraph
from repro.data.transforms.features import TargetNormalizer
from repro.datasets import MaterialsProjectSurrogate
from repro.models import EGNN
from repro.optim import AdamW, WarmupExponential
from repro.tasks import ScalarRegressionTask
from repro.training import Trainer, TrainerConfig


def main() -> None:
    rng = seed_everything(42)

    # 1. Dataset: a procedurally generated Materials-Project-style source
    #    with surrogate-DFT labels.  Samples are lazy & deterministic;
    #    materialize() caches them for repeated epochs.
    dataset = MaterialsProjectSurrogate(num_samples=220, seed=1).materialize()
    train_ds, val_ds = train_val_split(dataset, val_fraction=0.2, rng=rng)
    print(f"dataset: {len(train_ds)} train / {len(val_ds)} val structures")

    # 2. Transform: structures -> radius graphs (5 A cutoff).
    transform = StructureToGraph(cutoff=4.5)

    # 3. Task: E(n)-GNN encoder + a residual-MLP output head regressing the
    #    band gap against z-scored targets (metrics report physical eV).
    normalizer = TargetNormalizer(["band_gap"]).fit(
        train_ds[i] for i in range(len(train_ds))
    )
    encoder = EGNN(hidden_dim=32, num_layers=3, position_dim=12, rng=rng)
    task = ScalarRegressionTask(
        encoder, target="band_gap", hidden_dim=32, num_blocks=2,
        normalizer=normalizer, rng=rng,
    )
    print(f"model: {task.num_parameters():,} parameters")

    # 4. Train.  Loaders yield lists of samples; the trainer's strategy
    #    collates (this is what lets the same loop drive simulated DDP).
    train_loader = DataLoader(
        train_ds, batch_size=16, shuffle=True, rng=np.random.default_rng(7),
        collate_fn=list, transform=transform,
    )
    val_loader = DataLoader(val_ds, batch_size=32, collate_fn=list, transform=transform)

    optimizer = AdamW(task.parameters(), lr=3e-3, weight_decay=1e-4)
    scheduler = WarmupExponential(optimizer, warmup_epochs=3, gamma=0.9, target_lr=3e-3)
    trainer = Trainer(TrainerConfig(max_epochs=12, log_every_n_steps=5))
    history = trainer.fit(task, train_loader, val_loader, optimizer, scheduler)

    steps, curve = history.series("val", "band_gap_mae")
    print("\nvalidation MAE (eV) by epoch:")
    for epoch, mae in enumerate(curve, start=1):
        print(f"  epoch {epoch:2d}: {mae:.3f}")
    baseline = normalizer.scale_of("band_gap") * 0.8  # ~MAE of a mean predictor
    print(f"\nfinal MAE {curve[-1]:.3f} eV vs mean-predictor baseline ~{baseline:.3f} eV")
    assert curve[-1] < curve[0], "training should improve validation MAE"


if __name__ == "__main__":
    main()
