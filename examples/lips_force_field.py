#!/usr/bin/env python
"""Learned force field on the LiPS trajectory surrogate.

The LiPS dataset (Batzner et al.) drives energy/force learning for solid
electrolytes.  This example trains the toolkit's joint energy+force task
(graph-level energy head, node-level force head) on Langevin-dynamics
snapshots of a Li/P/S cell and reports errors against the surrogate
reference potential.

Run:  python examples/lips_force_field.py
"""

import numpy as np

from repro import seed_everything
from repro.data import DataLoader
from repro.data.dataset import Subset
from repro.data.transforms import StructureToGraph
from repro.datasets import LiPSSurrogate
from repro.models import EGNN
from repro.optim import AdamW, WarmupExponential
from repro.tasks import EnergyForceTask
from repro.training import ModelCheckpoint, Trainer, TrainerConfig


def main() -> None:
    rng = seed_everything(3)

    # Trajectory dataset: 96 MD snapshots of one Li6-P-S5 cell.
    dataset = LiPSSurrogate(num_samples=96, seed=5)
    train_ds = Subset(dataset, list(range(72)))
    val_ds = Subset(dataset, list(range(72, 96)))
    energies = [float(dataset[i].targets["energy"]) for i in range(len(dataset))]
    print(
        f"LiPS trajectory: {len(dataset)} frames, {dataset[0].num_atoms} atoms, "
        f"energy range [{min(energies):.2f}, {max(energies):.2f}] eV"
    )

    transform = StructureToGraph(cutoff=4.5)
    encoder = EGNN(hidden_dim=32, num_layers=3, position_dim=12, rng=rng)
    task = EnergyForceTask(
        encoder,
        hidden_dim=32,
        num_blocks=2,
        force_weight=5.0,
        energy_scale=10.0,  # bring the ~-20 eV totals to head-friendly range
        rng=rng,
    )

    train_loader = DataLoader(
        train_ds, batch_size=8, shuffle=True, rng=np.random.default_rng(4),
        collate_fn=list, transform=transform,
    )
    val_loader = DataLoader(val_ds, batch_size=8, collate_fn=list, transform=transform)

    optimizer = AdamW(task.parameters(), lr=2e-3, weight_decay=1e-5)
    scheduler = WarmupExponential(optimizer, warmup_epochs=3, gamma=0.9, target_lr=2e-3)
    checkpoint = ModelCheckpoint(monitor="force_mae")
    trainer = Trainer(TrainerConfig(max_epochs=20, log_every_n_steps=10),
                      callbacks=[checkpoint])
    history = trainer.fit(task, train_loader, val_loader, optimizer, scheduler)

    _, e_curve = history.series("val", "energy_mae")
    _, f_curve = history.series("val", "force_mae")
    print("\nvalidation errors by epoch:")
    print("  energy MAE (eV):  " + " ".join(f"{v:6.2f}" for v in e_curve))
    print("  force MAE (eV/A): " + " ".join(f"{v:6.3f}" for v in f_curve))
    checkpoint.restore_best(task)

    # Baselines: a zero-force predictor scores the mean |F| component; a
    # mean-energy predictor scores the energy std.
    forces = np.concatenate(
        [dataset[i].targets["forces"] for i in range(len(dataset))]
    )
    zero_force_mae = float(np.abs(forces).mean())
    energy_std = float(np.std([dataset[i].targets["energy"] for i in range(len(dataset))]))
    print(f"\nforce readout mode: {task.force_mode} (equivariant coordinate channel)")
    print(f"best force MAE:  {checkpoint.best_value:.3f} eV/A "
          f"vs zero-force baseline {zero_force_mae:.3f} eV/A")
    print(f"best energy MAE: {min(e_curve):.2f} eV "
          f"vs mean-energy baseline {energy_std:.2f} eV")
    assert checkpoint.best_value < zero_force_mae, "forces should beat the zero baseline"
    assert min(e_curve) < energy_std, "energies should beat the mean baseline"


if __name__ == "__main__":
    main()
