#!/usr/bin/env python
"""Scale-out planning: throughput projection and NUMA-aware placement.

Demonstrates the distributed substrate behind the paper's Fig. 2 and
Sec. 4.1: measure the live single-worker training rate, project cluster
throughput through the analytic performance model, and print the worker
placement a pinned MPI launch would use on the Endeavour-class nodes.

Run:  python examples/scaling_study.py
"""

from repro.core import EncoderConfig, OptimizerConfig, PretrainConfig, pretrain_symmetry
from repro.distributed import AffinityPlanner, ENDEAVOUR, ThroughputModel
from repro.distributed.perf_model import linear_fit_r2
from repro.utils import human_count


def main() -> None:
    # 1. Measure the single-worker rate live (short symmetry-task run).
    cfg = PretrainConfig(
        encoder=EncoderConfig(hidden_dim=32, num_layers=3, position_dim=12),
        optimizer=OptimizerConfig(base_lr=1e-3, warmup_epochs=2),
        train_samples=96, val_samples=16, world_size=1, batch_per_worker=16,
        max_epochs=2, head_hidden_dim=32, head_blocks=2, seed=2,
    )
    result = pretrain_symmetry(cfg)
    rate = result.throughput.samples_per_second
    params = result.task.num_parameters()
    print(f"measured single-worker rate: {rate:.1f} samples/s "
          f"({human_count(params)} parameters)")

    # 2. Project scale-out on the paper's platform.
    model = ThroughputModel(
        per_worker_samples_per_s=rate,
        batch_per_worker=32,
        gradient_bytes=params * 8,
        cluster=ENDEAVOUR,
    )
    sizes = [16, 32, 64, 128, 256, 512]
    rows = model.sweep(sizes, dataset_size=2_000_000)
    print(f"\n{'workers':>8} {'nodes':>6} {'samples/s':>12} {'epoch (min)':>12} {'eff':>7}")
    for r in rows:
        print(f"{r['workers']:>8d} {r['nodes']:>6d} {r['samples_per_s']:>12.0f} "
              f"{r['epoch_minutes']:>12.2f} {r['efficiency']:>7.4f}")
    r2 = linear_fit_r2(sizes, [r["samples_per_s"] for r in rows])
    print(f"linear-fit R^2 = {r2:.6f}")

    # 3. The Sec. 4.1 placement: 16 workers/node, map-by-NUMA, pin-to-core.
    planner = AffinityPlanner(ENDEAVOUR.node)
    placements = planner.plan_node(ENDEAVOUR.node.workers)
    print(f"\nper-node placement ({ENDEAVOUR.node.workers} workers, "
          f"OMP_NUM_THREADS={planner.omp_num_threads()}):")
    for p in placements[:6]:
        cores = f"{p.cores[0]}-{p.cores[-1]}"
        print(f"  rank {p.rank:2d} -> NUMA {p.numa_domain}, cores {cores}")
    print(f"  ... ({len(placements) - 6} more ranks)")


if __name__ == "__main__":
    main()
