"""MEGNet encoder: global-state stream, Set2Set readout, invariances."""

import copy

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.tensor import batch_invariant_kernels
from repro.data import collate_graphs
from repro.data.transforms import PermuteNodes, StructureToGraph
from repro.data.transforms.graph import GLOBAL_FEATURE_DIM, global_state_features
from repro.datasets import SymmetryPointCloudDataset
from repro.geometry.operations import random_rotation
from repro.models import MEGNet, Set2Set, build_encoder

pytestmark = pytest.mark.megnet


def make_batch(seed=0, n_samples=3, global_features=False):
    ds = SymmetryPointCloudDataset(
        n_samples, seed=seed, group_names=["C2", "C4", "D2"], max_points=14
    )
    tf = StructureToGraph(cutoff=2.5, global_features=global_features)
    return collate_graphs([tf(ds[i]) for i in range(n_samples)])


class TestSet2Set:
    def test_output_shape(self, rng):
        pool = Set2Set(4, processing_steps=2, rng=rng)
        x = Tensor(rng.normal(size=(6, 4)))
        out = pool(x, np.array([0, 0, 1, 1, 1, 2]), 3)
        assert out.shape == (3, 8)

    def test_permutation_invariance(self, rng):
        # The attention readout is a weighted *sum* over each segment, so
        # reordering elements within a segment must not change the output
        # (up to summation-order rounding — np.add.at accumulates in index
        # order, so this is allclose, not bitwise).
        pool = Set2Set(3, processing_steps=3, rng=rng)
        x = rng.normal(size=(7, 3))
        ids = np.array([0, 0, 0, 0, 1, 1, 1])
        perm = np.array([3, 1, 0, 2, 6, 4, 5])  # permutes within segments
        out = pool(Tensor(x), ids, 2)
        out_perm = pool(Tensor(x[perm]), ids[perm], 2)
        assert np.allclose(out.data, out_perm.data, atol=1e-12)

    def test_empty_segment_gets_query_only(self, rng):
        pool = Set2Set(3, processing_steps=2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)))
        out = pool(x, np.array([0, 0, 2, 2]), 3)
        # Segment 1 is empty: its readout half is zero (softmax over an
        # empty set), its query half is the pure LSTM rollout; all finite.
        assert np.all(np.isfinite(out.data))
        assert np.allclose(out.data[1, 3:], 0.0)

    def test_validates_steps(self, rng):
        with pytest.raises(ValueError):
            Set2Set(4, processing_steps=0, rng=rng)


class TestGlobalStateFeatures:
    def test_canonical_descriptor(self):
        z = np.array([3, 16, 16, 3])
        feats = global_state_features(z)
        assert feats.shape == (GLOBAL_FEATURE_DIM,)
        assert feats[0] == pytest.approx(np.log1p(4.0))
        assert feats[3] == pytest.approx(0.2)  # two distinct species

    def test_empty_species(self):
        assert np.array_equal(
            global_state_features(np.zeros(0, dtype=np.int64)),
            np.zeros(GLOBAL_FEATURE_DIM),
        )

    def test_transform_attaches_and_collates(self):
        batch = make_batch(global_features=True)
        assert batch.global_attr is not None
        assert batch.global_attr.shape == (batch.num_graphs, GLOBAL_FEATURE_DIM)

    def test_pipeline_and_fallback_agree(self, rng):
        # The encoder must produce the same bits whether u comes from the
        # data pipeline (global_features=True) or its in-model fallback.
        model = MEGNet(hidden_dim=8, num_layers=2, num_species=4, rng=rng)
        with_attr = model(make_batch(seed=5, global_features=True))
        without = model(make_batch(seed=5, global_features=False))
        assert np.array_equal(
            with_attr.graph_embedding.data, without.graph_embedding.data
        )


class TestMEGNet:
    def test_shapes(self, rng):
        model = MEGNet(hidden_dim=10, num_layers=2, num_species=4, rng=rng)
        batch = make_batch()
        out = model(batch)
        assert out.graph_embedding.shape == (batch.num_graphs, 10)
        assert out.node_embedding.shape == (batch.num_nodes, 10)
        assert out.coordinate_update is None  # invariant encoder

    def test_rotation_translation_invariance(self, rng):
        model = MEGNet(hidden_dim=8, num_layers=2, num_species=4, rng=rng)
        batch = make_batch(seed=1)
        moved = copy.deepcopy(batch)
        moved.positions = batch.positions @ random_rotation(rng).T + 3.0
        assert np.allclose(
            model(batch).graph_embedding.data,
            model(moved).graph_embedding.data,
            atol=1e-9,
        )

    def test_permutation_invariance(self, rng):
        model = MEGNet(hidden_dim=8, num_layers=1, num_species=4, rng=rng)
        ds = SymmetryPointCloudDataset(1, seed=4, group_names=["C4"], max_points=12)
        tf = StructureToGraph(cutoff=2.5)
        sample = tf(ds[0])
        permuted = PermuteNodes(rng)(sample)
        assert np.allclose(
            model(collate_graphs([sample])).graph_embedding.data,
            model(collate_graphs([permuted])).graph_embedding.data,
            atol=1e-9,
        )

    def test_edgeless_batch(self, rng):
        # The SchNet PR-6 bug class: a graph with no edges must still run
        # every block update (no early exit) and stay finite.
        model = MEGNet(hidden_dim=8, num_layers=2, num_species=4, rng=rng)
        batch = make_batch()
        batch.edge_src = np.zeros(0, dtype=np.int64)
        batch.edge_dst = np.zeros(0, dtype=np.int64)
        out = model(batch)
        assert np.all(np.isfinite(out.graph_embedding.data))

    def test_zero_edge_graph_batched_equals_single(self, rng):
        # A single-atom (edgeless) graph must embed bit-identically alone
        # and inside a batch with edge-carrying neighbours.  Bitwise parity
        # across batch compositions is the serving contract and holds
        # under batch_invariant_kernels (plain BLAS picks different GEMM
        # reduction orders for different row counts).
        model = MEGNet(hidden_dim=8, num_layers=2, num_species=4, rng=rng)
        ds = SymmetryPointCloudDataset(
            3, seed=6, group_names=["C2", "C4", "D2"], max_points=14
        )
        tf = StructureToGraph(cutoff=2.5)
        samples = [tf(ds[i]) for i in range(3)]
        lone = copy.deepcopy(samples[1])
        lone.positions = lone.positions[:1]
        lone.species = lone.species[:1]
        lone.edge_src = np.zeros(0, dtype=np.int64)
        lone.edge_dst = np.zeros(0, dtype=np.int64)
        with batch_invariant_kernels():
            single = model(collate_graphs([lone])).graph_embedding.data
            batched = model(
                collate_graphs([samples[0], lone, samples[2]])
            ).graph_embedding.data
        assert np.array_equal(batched[1], single[0])

    def test_gradients_flow_including_global_stream(self, rng):
        model = MEGNet(hidden_dim=8, num_layers=2, num_species=4, rng=rng)
        out = model(make_batch(seed=2))
        (out.graph_embedding * out.graph_embedding).sum().backward()
        grads = {name: p.grad for name, p in model.named_parameters()}
        assert all(g is not None for g in grads.values())
        # The global stream is live, not decorative: its embedding and
        # every block's global MLP receive nonzero gradient.
        for name, g in grads.items():
            if "global" in name:
                assert np.any(g != 0.0), f"dead global-stream parameter {name}"

    def test_registry(self, rng):
        assert isinstance(build_encoder("megnet", hidden_dim=8, rng=rng), MEGNet)

    def test_validates_layers(self, rng):
        with pytest.raises(ValueError):
            MEGNet(num_layers=0, rng=rng)

    def test_trains_on_regression(self, rng):
        from repro import nn
        from repro.autograd import functional as F
        from repro.optim import AdamW

        model = MEGNet(hidden_dim=12, num_layers=2, num_species=4, rng=rng)
        head = nn.Linear(12, 1, rng=rng)
        batch = make_batch(seed=3, n_samples=6)
        target = np.linspace(-1, 1, 6)
        opt = AdamW(
            list(model.parameters()) + list(head.parameters()),
            lr=5e-3,
            weight_decay=0.0,
        )
        losses = []
        for _ in range(60):
            pred = head(model(batch).graph_embedding).squeeze(-1)
            loss = F.mse_loss(pred, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.3 * losses[0]
